//! Integration of the wire and NIC layers: frames produced by the
//! workload client must steer, queue and parse correctly through the NIC
//! device model — the exact path request packets take in the systems.

use mindgap::nic::{NicDevice, QueueSteering, Rss};
use mindgap::sim::{Rng, SimDuration, SimTime};
use mindgap::systems::common::{AddressPlan, Client};
use mindgap::wire::{MsgKind, ParsedFrame};
use mindgap::workload::{ServiceDist, WorkloadSpec};

fn client() -> Client {
    let spec = WorkloadSpec::new(100_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
    let mut master = Rng::new(11);
    Client::new(spec, &mut master)
}

#[test]
fn client_requests_steer_to_the_dispatcher_interface() {
    let mut c = client();
    let mut nic = NicDevice::new(SimDuration::from_nanos(900));
    let disp = nic.add_iface(AddressPlan::dispatcher_mac(), 1, 64, QueueSteering::Single);
    let _vf = nic.add_iface(AddressPlan::worker_mac(0), 1, 64, QueueSteering::Single);

    for i in 0..50 {
        let frame = c.make_request(SimTime::from_micros(i));
        let parsed = ParsedFrame::parse(&frame.build()).unwrap();
        let d = nic.steer(&parsed).expect("request must steer");
        assert_eq!(d.iface, disp, "client requests target the service MAC");
    }
    assert_eq!(nic.unmatched_drops, 0);
}

#[test]
fn rss_spreads_client_flows_across_worker_queues() {
    let mut c = client();
    let mut nic = NicDevice::new(SimDuration::ZERO);
    nic.add_iface(
        AddressPlan::dispatcher_mac(),
        8,
        256,
        QueueSteering::Rss(Rss::new(8)),
    );

    let mut hit = [0usize; 8];
    for i in 0..2048 {
        let frame = c.make_request(SimTime::from_micros(i));
        let parsed = ParsedFrame::parse(&frame.build()).unwrap();
        let d = nic.steer(&parsed).unwrap();
        hit[d.queue] += 1;
    }
    for (q, &n) in hit.iter().enumerate() {
        assert!(
            n > 64,
            "queue {q} starved with {n} of 2048 (imbalance too extreme)"
        );
    }
    assert_eq!(
        hit.iter().sum::<usize>(),
        2048,
        "every frame steered somewhere"
    );

    // Steering is per-flow stable: the same 4-tuple always lands on the
    // same queue (the client cycles through 1024 source ports, so request
    // i and request i+1024 share a flow).
    let mut c2 = client();
    let first: Vec<usize> = (0..1024)
        .map(|i| {
            let f = ParsedFrame::parse(&c2.make_request(SimTime::from_micros(i)).build()).unwrap();
            nic.steer(&f).unwrap().queue
        })
        .collect();
    for i in 0..1024 {
        let f =
            ParsedFrame::parse(&c2.make_request(SimTime::from_micros(9999 + i)).build()).unwrap();
        assert_eq!(
            nic.steer(&f).unwrap().queue,
            first[i as usize],
            "flow {i} moved queues"
        );
    }
}

#[test]
fn frames_survive_ring_transit_byte_for_byte() {
    let mut c = client();
    let mut nic = NicDevice::new(SimDuration::ZERO);
    let disp = nic.add_iface(AddressPlan::dispatcher_mac(), 1, 64, QueueSteering::Single);

    let spec = c.make_request(SimTime::from_micros(1));
    let bytes = spec.build();
    let parsed = ParsedFrame::parse(&bytes).unwrap();
    nic.steer(&parsed).unwrap();
    assert!(nic.iface_mut(disp).rx[0].push(SimTime::from_micros(1), bytes.clone()));

    let out = nic.iface_mut(disp).rx[0].pop().unwrap();
    assert_eq!(&out.data[..], &bytes[..], "ring must not mutate frames");
    let reparsed = ParsedFrame::parse(&out.data).unwrap();
    assert_eq!(reparsed.msg.kind, MsgKind::Request);
    assert_eq!(reparsed.msg.req_id, spec.msg.req_id);
}

#[test]
fn response_frames_carry_latency_provenance() {
    // The sojourn measurement depends on sent_at_ns surviving the full
    // request -> assign -> response chain.
    let mut c = client();
    let req = c.make_request(SimTime::from_micros(123));
    let assign = mindgap::wire::FrameSpec {
        src_mac: AddressPlan::dispatcher_mac(),
        dst_mac: AddressPlan::worker_mac(2),
        src: AddressPlan::dispatcher_ep(),
        dst: AddressPlan::worker_ep(2),
        msg: req.msg.with_kind(MsgKind::Assign),
    };
    let assign_parsed = ParsedFrame::parse(&assign.build()).unwrap();
    let resp = mindgap::wire::FrameSpec {
        src_mac: AddressPlan::worker_mac(2),
        dst_mac: AddressPlan::client_mac(),
        src: AddressPlan::worker_ep(2),
        dst: AddressPlan::client_ep(),
        msg: assign_parsed.msg.response(),
    };
    let resp_parsed = ParsedFrame::parse(&resp.build()).unwrap();
    assert_eq!(resp_parsed.msg.sent_at_ns, 123_000);
    assert_eq!(resp_parsed.msg.req_id, req.msg.req_id);
    assert_eq!(resp_parsed.msg.kind, MsgKind::Response);
}
