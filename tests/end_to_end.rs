//! Cross-crate integration: every system assembly driven end-to-end
//! through real wire frames, checked for conservation, ordering and
//! determinism invariants.

use mindgap::sim::SimDuration;
use mindgap::systems::baseline::{BaselineConfig, BaselineKind};
use mindgap::systems::offload::OffloadConfig;
use mindgap::systems::rpcvalet::RpcValetConfig;
use mindgap::systems::shinjuku::ShinjukuConfig;
use mindgap::systems::{ProbeConfig, ServerSystem};
use mindgap::workload::{RunMetrics, ServiceDist, WorkloadSpec};

fn spec(rps: f64, dist: ServiceDist, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        offered_rps: rps,
        dist,
        body_len: 64,
        warmup: SimDuration::from_millis(2),
        measure: SimDuration::from_millis(15),
        seed,
    }
}

fn all_systems(s: WorkloadSpec) -> Vec<(&'static str, RunMetrics)> {
    vec![
        (
            "shinjuku",
            ShinjukuConfig::paper(3).run(s, ProbeConfig::disabled()),
        ),
        (
            "offload",
            OffloadConfig::paper(4, 4).run(s, ProbeConfig::disabled()),
        ),
        (
            "rss",
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::Rss,
            }
            .run(s, ProbeConfig::disabled()),
        ),
        (
            "stealing",
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::RssStealing,
            }
            .run(s, ProbeConfig::disabled()),
        ),
        (
            "flowdir",
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::FlowDirector,
            }
            .run(s, ProbeConfig::disabled()),
        ),
        (
            "erss",
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::ElasticRss,
            }
            .run(s, ProbeConfig::disabled()),
        ),
        (
            "rpcvalet",
            RpcValetConfig { workers: 4 }.run(s, ProbeConfig::disabled()),
        ),
    ]
}

#[test]
fn every_system_completes_work_at_light_load() {
    for (name, m) in all_systems(spec(
        100_000.0,
        ServiceDist::Fixed(SimDuration::from_micros(5)),
        1,
    )) {
        assert!(m.completed > 800, "{name}: completed {}", m.completed);
        assert!(!m.saturated(0.05), "{name}: {}", m.row());
        assert_eq!(m.dropped, 0, "{name}: no drops at light load");
        assert!(m.p99 > SimDuration::ZERO, "{name}: p99 recorded");
    }
}

#[test]
fn percentiles_are_ordered_everywhere() {
    for (name, m) in all_systems(spec(250_000.0, ServiceDist::paper_bimodal(), 2)) {
        assert!(m.p50 <= m.p99, "{name}: p50 {} <= p99 {}", m.p50, m.p99);
        assert!(m.p99 <= m.p999, "{name}: p99 {} <= p999 {}", m.p99, m.p999);
        assert!(m.mean >= m.p50 / 10, "{name}: mean sane");
    }
}

#[test]
fn latency_grows_with_load_for_every_system() {
    let dist = ServiceDist::Fixed(SimDuration::from_micros(5));
    for (light, heavy) in all_systems(spec(50_000.0, dist, 3))
        .into_iter()
        .zip(all_systems(spec(600_000.0, dist, 3)))
    {
        let (name, l) = light;
        let (_, h) = heavy;
        assert!(
            h.p99 >= l.p99,
            "{name}: p99 must not shrink with load ({} -> {})",
            l.p99,
            h.p99
        );
    }
}

#[test]
fn all_systems_are_deterministic() {
    let s = spec(200_000.0, ServiceDist::paper_bimodal(), 7);
    let a = all_systems(s);
    let b = all_systems(s);
    for ((name, ma), (_, mb)) in a.iter().zip(&b) {
        assert_eq!(ma.completed, mb.completed, "{name}");
        assert_eq!(ma.p99, mb.p99, "{name}");
        assert_eq!(ma.preemptions, mb.preemptions, "{name}");
    }
}

#[test]
fn seeds_change_the_sample_path_but_not_the_regime() {
    let a = OffloadConfig::paper(4, 4).run(
        spec(300_000.0, ServiceDist::paper_bimodal(), 1),
        ProbeConfig::disabled(),
    );
    let b = OffloadConfig::paper(4, 4).run(
        spec(300_000.0, ServiceDist::paper_bimodal(), 99),
        ProbeConfig::disabled(),
    );
    assert_ne!(a.completed, b.completed, "different seeds, different paths");
    // Same regime: achieved within 5%, neither saturated.
    assert!((a.achieved_rps - b.achieved_rps).abs() / a.achieved_rps < 0.05);
    assert!(!a.saturated(0.05) && !b.saturated(0.05));
}

#[test]
fn conservation_no_phantom_completions() {
    // Completions measured can never exceed requests offered during the
    // horizon; utilization is a fraction.
    for (name, m) in all_systems(spec(400_000.0, ServiceDist::paper_bimodal(), 5)) {
        let horizon_secs =
            (SimDuration::from_millis(2) + SimDuration::from_millis(15)).as_secs_f64();
        let max_possible = (m.offered_rps * horizon_secs * 1.3) as u64;
        assert!(
            m.completed < max_possible,
            "{name}: {} completions vs {} possible",
            m.completed,
            max_possible
        );
        assert!((0.0..=1.0).contains(&m.worker_utilization), "{name}");
    }
}

#[test]
fn preemptions_happen_only_where_enabled() {
    let s = spec(300_000.0, ServiceDist::paper_bimodal(), 6);
    let shin = ShinjukuConfig::paper(3).run(s, ProbeConfig::disabled());
    let off = OffloadConfig::paper(4, 4).run(s, ProbeConfig::disabled());
    let rss = BaselineConfig {
        workers: 4,
        kind: BaselineKind::Rss,
    }
    .run(s, ProbeConfig::disabled());
    assert!(shin.preemptions > 0, "shinjuku preempts 100us requests");
    assert!(off.preemptions > 0, "offload preempts 100us requests");
    assert_eq!(rss.preemptions, 0, "run-to-completion never preempts");
}

#[test]
fn offload_with_one_extra_worker_beats_shinjuku_on_moderate_work() {
    // The Figure 4 claim at a single point: 4 offloaded workers sustain a
    // load that saturates 3 host workers.
    let s = spec(
        620_000.0,
        ServiceDist::Fixed(SimDuration::from_micros(5)),
        8,
    );
    let shin = ShinjukuConfig {
        workers: 3,
        time_slice: None,
        ..ShinjukuConfig::paper(3)
    }
    .run(s, ProbeConfig::disabled());
    let off = OffloadConfig {
        time_slice: None,
        ..OffloadConfig::paper(4, 4)
    }
    .run(s, ProbeConfig::disabled());
    assert!(
        shin.saturated(0.05),
        "3 workers cannot do 620k x 5us: {}",
        shin.row()
    );
    assert!(!off.saturated(0.05), "4 workers can: {}", off.row());
}

#[test]
fn shinjuku_dispatcher_outscales_arm_dispatcher_on_tiny_work() {
    // The Figure 6 claim at a single point.
    let s = spec(
        2_500_000.0,
        ServiceDist::Fixed(SimDuration::from_micros(1)),
        9,
    );
    let shin = ShinjukuConfig {
        workers: 15,
        time_slice: None,
        ..ShinjukuConfig::paper(15)
    }
    .run(s, ProbeConfig::disabled());
    let off = OffloadConfig {
        time_slice: None,
        ..OffloadConfig::paper(16, 5)
    }
    .run(s, ProbeConfig::disabled());
    assert!(
        shin.achieved_rps > off.achieved_rps * 1.5,
        "host dispatcher {} vs ARM dispatcher {}",
        shin.achieved_rps,
        off.achieved_rps
    );
}
