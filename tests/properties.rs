//! Property-based integration tests: random workload points must uphold
//! system invariants — no panics, ordered percentiles, conservation,
//! determinism — across every assembly.

use mindgap::sim::SimDuration;
use mindgap::systems::baseline::{BaselineConfig, BaselineKind};
use mindgap::systems::offload::OffloadConfig;
use mindgap::systems::shinjuku::ShinjukuConfig;
use mindgap::systems::{ProbeConfig, ServerSystem};
use mindgap::workload::{RunMetrics, ServiceDist, WorkloadSpec};
use proptest::prelude::*;

fn arb_dist() -> impl Strategy<Value = ServiceDist> {
    prop_oneof![
        (1u64..50).prop_map(|us| ServiceDist::Fixed(SimDuration::from_micros(us))),
        ((0.001f64..0.05), (1u64..10), (20u64..200)).prop_map(|(p, s, l)| {
            ServiceDist::Bimodal {
                p_long: p,
                short: SimDuration::from_micros(s),
                long: SimDuration::from_micros(l),
            }
        }),
        (2u64..40).prop_map(|us| ServiceDist::Exponential {
            mean: SimDuration::from_micros(us)
        }),
    ]
}

fn tiny_spec(rps: f64, dist: ServiceDist, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        offered_rps: rps,
        dist,
        body_len: 64,
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(6),
        seed,
    }
}

fn check_invariants(name: &str, m: &RunMetrics, spec: &WorkloadSpec) {
    assert!(m.p50 <= m.p99, "{name}: p50 {} > p99 {}", m.p50, m.p99);
    assert!(m.p99 <= m.p999, "{name}: p99 {} > p999 {}", m.p99, m.p999);
    assert!(
        (0.0..=1.0).contains(&m.worker_utilization),
        "{name}: utilization {}",
        m.worker_utilization
    );
    // Sojourn can never be below the minimum service time possible.
    if m.completed > 0 {
        let floor = match spec.dist {
            ServiceDist::Fixed(d) => d,
            ServiceDist::Bimodal { short, .. } => short,
            _ => SimDuration::ZERO,
        };
        assert!(
            m.p50 >= floor,
            "{name}: p50 {} below service floor {floor}",
            m.p50
        );
    }
    let horizon = (spec.warmup + spec.measure).as_secs_f64();
    assert!(
        m.completed <= (spec.offered_rps * horizon * 1.5) as u64 + 10,
        "{name}: phantom completions"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn offload_invariants_hold(rps in 20_000f64..900_000.0, dist in arb_dist(),
                               seed in 0u64..1000,
                               workers in 2usize..8, cap in 1u32..6) {
        let spec = tiny_spec(rps, dist, seed);
        let m = OffloadConfig::paper(workers, cap).run(spec, ProbeConfig::disabled());
        check_invariants("offload", &m, &spec);
    }

    #[test]
    fn shinjuku_invariants_hold(rps in 20_000f64..900_000.0, dist in arb_dist(),
                                seed in 0u64..1000, workers in 2usize..8) {
        let spec = tiny_spec(rps, dist, seed);
        let m = ShinjukuConfig::paper(workers).run(spec, ProbeConfig::disabled());
        check_invariants("shinjuku", &m, &spec);
    }

    #[test]
    fn baseline_invariants_hold(rps in 20_000f64..900_000.0, dist in arb_dist(),
                                seed in 0u64..1000, workers in 2usize..8,
                                kind_sel in 0usize..3) {
        let kind = [BaselineKind::Rss, BaselineKind::RssStealing, BaselineKind::FlowDirector][kind_sel];
        let spec = tiny_spec(rps, dist, seed);
        let m = BaselineConfig { workers, kind }.run(spec, ProbeConfig::disabled());
        check_invariants("baseline", &m, &spec);
    }

    #[test]
    fn offload_determinism_under_random_configs(rps in 50_000f64..500_000.0,
                                                dist in arb_dist(), seed in 0u64..1000) {
        let spec = tiny_spec(rps, dist, seed);
        let a = OffloadConfig::paper(4, 3).run(spec, ProbeConfig::disabled());
        let b = OffloadConfig::paper(4, 3).run(spec, ProbeConfig::disabled());
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.p99, b.p99);
        prop_assert_eq!(a.preemptions, b.preemptions);
    }

    #[test]
    fn more_workers_never_reduce_offload_capacity(dist in arb_dist(), seed in 0u64..1000) {
        // Offered load far above the small config's capacity.
        let mean_us = dist.mean().as_micros_f64().max(1.0);
        let rps = (2.5e6 / mean_us).min(1_200_000.0);
        let spec = tiny_spec(rps, dist, seed);
        let small = OffloadConfig { time_slice: None, ..OffloadConfig::paper(2, 4) }.run(spec, ProbeConfig::disabled());
        let large = OffloadConfig { time_slice: None, ..OffloadConfig::paper(6, 4) }.run(spec, ProbeConfig::disabled());
        prop_assert!(
            large.achieved_rps >= small.achieved_rps * 0.98,
            "6 workers ({:.0}) should not lose to 2 workers ({:.0})",
            large.achieved_rps, small.achieved_rps
        );
    }
}
