//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace vendors the
//! small slice of the `bytes` API it actually uses: an immutable,
//! cheaply-cloneable byte buffer. Cloning a [`Bytes`] bumps a refcount (or
//! copies a pointer for static data) rather than copying the payload, which is
//! the property the frame-queuing code relies on.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn static_buffers() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b, Bytes::from(b"hello".to_vec()));
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
