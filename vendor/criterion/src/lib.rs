//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors the
//! slice of criterion's API its benches use. Statistical sampling is out of
//! scope; by default benchmark bodies are *registered but not executed*, so
//! `cargo bench` compiles and exits instantly. Set `MINDGAP_BENCH_RUN=1` to
//! execute each benchmark body once and print a single wall-clock timing —
//! coarse, but enough to catch order-of-magnitude regressions by hand.

use std::fmt::{self, Display};
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement backends; only wall-clock time exists here.
pub mod measurement {
    /// Wall-clock measurement marker.
    pub struct WallTime;
}

/// Declared throughput for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Compose `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Use the parameter alone as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

fn run_enabled() -> bool {
    std::env::var("MINDGAP_BENCH_RUN")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Passed to benchmark closures; `iter` runs the body (at most once here).
pub struct Bencher {
    run: bool,
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Time one pass of `f` when running is enabled; otherwise a no-op.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.run {
            let start = Instant::now();
            black_box(f());
            self.elapsed = Some(start.elapsed());
        }
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            _parent: PhantomData,
            _measurement: PhantomData,
        }
    }

    /// Register a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, mut f: F) {
    let mut b = Bencher {
        run: run_enabled(),
        elapsed: None,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match b.elapsed {
        Some(d) => println!("bench {label}: {d:?} (single pass)"),
        None if b.run => println!("bench {label}: body never called iter()"),
        None => println!("bench {label}: registered (set MINDGAP_BENCH_RUN=1 to execute)"),
    }
}

/// A named group of benchmarks with shared settings (all ignored).
pub struct BenchmarkGroup<'a, M> {
    name: String,
    _parent: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Declare per-iteration throughput (ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Set the statistical sample size (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement time budget (ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the warm-up time budget (ignored).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Register a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), f);
        self
    }

    /// Register a benchmark parameterized by `input`.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
