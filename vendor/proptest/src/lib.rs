//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! deterministic mini-proptest covering the API subset its tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, ranges, tuples, [`strategy::Just`],
//!   [`prop_oneof!`], and [`collection::vec`],
//! * [`arbitrary::any`] for primitive ints and small byte arrays,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` returning
//!   [`test_runner::TestCaseError`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! generated inputs' case index. Generation is fully deterministic (seeded per
//! test name), so failures reproduce exactly across runs — which matters more
//! here than shrinking, because the simulation models under test are
//! themselves deterministic.

pub mod test_runner {
    //! Config, error type, and the deterministic RNG driving generation.

    use std::fmt;

    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The case asked to be discarded (unused here, kept for parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// SplitMix64: tiny, fast, and deterministic from its seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction; the same seed yields the same stream.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    /// Stable 64-bit FNV-1a over a test name, used to seed its RNG stream.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001B3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies: ranges, tuples, `Just`, map, union.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value from the RNG stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy; what [`Strategy::boxed`] returns.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between several strategies; what [`prop_oneof!`] builds.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty set of arms.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u128) - (self.start as u128);
                    let off = (rng.next_u64() as u128) % width;
                    (self.start as u128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as u128) - (lo as u128) + 1;
                    let off = (rng.next_u64() as u128) % width;
                    (lo as u128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(width);
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            // next_f64 is half-open; stretch slightly so the top is reachable.
            (lo + rng.next_f64() * (hi - lo) * (1.0 + f64::EPSILON)).min(hi)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies: currently just `vec`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for a generated collection (`hi` exclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace tests use.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range generation strategy.
    pub trait Arbitrary {
        /// Produce an unconstrained random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {:?} != {:?}",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: {:?} == {:?}", lhs, rhs);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the `#![proptest_config(ProptestConfig { .. })]` header and one or
/// more `fn name(pat in strategy, ..) { body }` items. Each body runs once per
/// case with freshly generated inputs; `prop_assert*` failures abort the test
/// with the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::test_runner::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(
                    base ^ (case as u64).wrapping_mul(0xA24BAED4963EE407),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err(err) => panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        err
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0.25f64..=0.75, n in 1usize..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn oneof_and_map_compose(k in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
                                 d in (1u64..50).prop_map(|n| n * 2)) {
            prop_assert!((1..5).contains(&k));
            prop_assert!(d % 2 == 0 && d < 100);
            prop_assert_eq!(d / 2 * 2, d);
        }
    }
}
