//! Use the scheduling framework directly: implement a custom queue policy
//! (deadline-aware EDF) and drive the placement-independent
//! [`Dispatcher`] by hand — the "libraries and tools to specify scheduling
//! functions for the SmartNIC" the paper calls for in §5.1(4).
//!
//! Run with:
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use std::collections::BinaryHeap;

use mindgap::nicsched::{Dispatcher, LeastOutstanding, SchedPolicy, Task};
use mindgap::sim::{SimDuration, SimTime};

/// Earliest-deadline-first: each request's deadline is its arrival plus a
/// class-dependent budget (tight for short requests, loose for long).
struct Edf {
    heap: BinaryHeap<Entry>,
    seq: u64,
    peak: usize,
}

struct Entry {
    deadline: SimTime,
    seq: u64,
    task: Task,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (deadline, seq).
        (other.deadline, other.seq).cmp(&(self.deadline, self.seq))
    }
}

impl Edf {
    fn new() -> Edf {
        Edf {
            heap: BinaryHeap::new(),
            seq: 0,
            peak: 0,
        }
    }

    fn deadline_of(task: &Task) -> SimTime {
        // Budget: 10x the intrinsic service time.
        task.arrived_at + task.service * 10
    }

    fn push(&mut self, task: Task) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            deadline: Self::deadline_of(&task),
            seq,
            task,
        });
        self.peak = self.peak.max(self.heap.len());
    }
}

impl SchedPolicy for Edf {
    fn enqueue(&mut self, _now: SimTime, task: Task) {
        self.push(task);
    }
    fn requeue(&mut self, _now: SimTime, task: Task) {
        self.push(task);
    }
    fn dequeue(&mut self, _now: SimTime) -> Option<Task> {
        self.heap.pop().map(|e| e.task)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
    fn label(&self) -> String {
        "edf:budget=10x".to_string()
    }
    fn mean_depth(&self, _now: SimTime) -> f64 {
        f64::NAN // not tracked in this example
    }
    fn peak_depth(&self) -> usize {
        self.peak
    }
}

fn main() {
    let us = |n| SimDuration::from_micros(n);
    let at = |n| SimTime::from_micros(n);

    // One worker, one outstanding request: everything else queues, so the
    // policy alone decides the dispatch order.
    let mut dispatcher = Dispatcher::new(1, 1, Edf::new(), LeastOutstanding);

    let mut order = Vec::new();
    // A 100us request arrives first and grabs the worker.
    for a in dispatcher.on_request(at(0), Task::new(1, 0, us(100), at(0), at(0), 64)) {
        order.push(a.task.req_id);
    }
    // Another long request queues behind it...
    for a in dispatcher.on_request(at(1), Task::new(2, 0, us(100), at(1), at(1), 64)) {
        order.push(a.task.req_id);
    }
    // ...then three short requests arrive. FCFS would run them last; EDF
    // ranks them first (deadline = arrival + 10 x service = +50us vs +1ms).
    for id in 3..=5 {
        for a in dispatcher.on_request(at(2), Task::new(id, 0, us(5), at(2), at(2), 64)) {
            order.push(a.task.req_id);
        }
    }
    assert_eq!(order, vec![1], "only the first request dispatched so far");
    assert_eq!(dispatcher.queue_len(), 4);

    // Drain: each completion triggers the next EDF decision.
    let mut finished = order[0];
    let mut t = 100;
    while let Some(a) = dispatcher.on_done(at(t), 0, finished).first().copied() {
        order.push(a.task.req_id);
        finished = a.task.req_id;
        t += 100;
    }

    println!("dispatch order under EDF: {order:?}");
    println!("queue peak depth: {}", dispatcher.policy().peak_depth());

    // The shorts (ids 3-5, tight deadlines) jump the queued long (id 2).
    assert_eq!(order, vec![1, 3, 4, 5, 2]);
    println!("short requests jumped the queued 100us request — EDF at work");
}
