//! The Figure 2 scenario as a program: sweep the bimodal workload over
//! offered load and watch the tail of vanilla Shinjuku (3 workers + a
//! dispatcher core) against Shinjuku-Offload (4 workers, dispatcher on
//! the NIC).
//!
//! Run with:
//! ```sh
//! cargo run --release --example bimodal_tail
//! ```

use mindgap::sim::SimDuration;
use mindgap::systems::offload::OffloadConfig;
use mindgap::systems::shinjuku::ShinjukuConfig;
use mindgap::systems::{ProbeConfig, ServerSystem};
use mindgap::workload::{ServiceDist, WorkloadSpec};

fn main() {
    let dist = ServiceDist::paper_bimodal();
    println!("workload: {dist_label}", dist_label = dist.label());
    println!(
        "{:>12} | {:>22} | {:>22}",
        "offered", "Shinjuku p99 (3w)", "Offload p99 (4w)"
    );

    for offered in (1..=6).map(|i| i as f64 * 100_000.0) {
        let spec = WorkloadSpec {
            offered_rps: offered,
            dist,
            body_len: 64,
            warmup: SimDuration::from_millis(5),
            measure: SimDuration::from_millis(40),
            seed: 2,
        };
        let host = ShinjukuConfig::paper(3).run(spec, ProbeConfig::disabled());
        let nic = OffloadConfig::paper(4, 4).run(spec, ProbeConfig::disabled());
        let fmt = |m: &mindgap::workload::RunMetrics| {
            if m.saturated(0.05) {
                format!("saturated ({:.0}/s)", m.achieved_rps)
            } else {
                format!("{}", m.p99)
            }
        };
        println!("{:>12.0} | {:>22} | {:>22}", offered, fmt(&host), fmt(&nic));
    }

    println!();
    println!("Both systems keep short-request tails bounded via preemption;");
    println!("the offload rides further because its dispatcher consumes no");
    println!("host core — the paper's Figure 2 story.");
}
