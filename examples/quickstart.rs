//! Quickstart: simulate Shinjuku-Offload on the paper's bimodal workload
//! and print the latency profile.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mindgap::sim::SimDuration;
use mindgap::systems::offload::OffloadConfig;
use mindgap::systems::{ProbeConfig, ServerSystem};
use mindgap::workload::{ServiceDist, WorkloadSpec};

fn main() {
    // The headline workload of the paper (§4.1 / Figure 2): 99.5% of
    // requests take 5us, 0.5% take 100us — the dispersion that breaks
    // run-to-completion systems.
    let workload = WorkloadSpec {
        offered_rps: 300_000.0,
        dist: ServiceDist::paper_bimodal(),
        body_len: 64,
        warmup: SimDuration::from_millis(5),
        measure: SimDuration::from_millis(50),
        seed: 1,
    };

    // Shinjuku-Offload as prototyped on the Broadcom Stingray: 4 host
    // workers, up to 4 outstanding requests per worker, 10us slice.
    let config = OffloadConfig::paper(4, 4);

    println!(
        "workload: {} at {:.0} req/s",
        workload.dist.label(),
        workload.offered_rps
    );
    println!(
        "system:   Shinjuku-Offload ({} workers, cap {})",
        config.workers, config.outstanding_cap
    );
    println!();

    let m = config.run(workload, ProbeConfig::disabled());

    println!("completed            {:>12}", m.completed);
    println!("achieved throughput  {:>12.0} req/s", m.achieved_rps);
    println!("median latency       {:>12}", m.p50);
    println!("p99 latency          {:>12}", m.p99);
    println!("p99.9 latency        {:>12}", m.p999);
    println!("preemptions          {:>12}", m.preemptions);
    println!(
        "worker utilization   {:>11.1}%",
        m.worker_utilization * 100.0
    );

    assert!(!m.saturated(0.05), "300k req/s is well inside capacity");
}
