//! Compare every scheduling design in the repository on the dispersion
//! workload the paper opens with: RSS run-to-completion (IX), work
//! stealing (ZygOS), Flow Director (MICA), host Shinjuku, and
//! Shinjuku-Offload — all on the same four host cores.
//!
//! Run with:
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use mindgap::sim::SimDuration;
use mindgap::systems::baseline::{BaselineConfig, BaselineKind};
use mindgap::systems::offload::OffloadConfig;
use mindgap::systems::rpcvalet::RpcValetConfig;
use mindgap::systems::shinjuku::ShinjukuConfig;
use mindgap::systems::{ProbeConfig, ServerSystem};
use mindgap::workload::{RunMetrics, ServiceDist, WorkloadSpec};

fn spec(offered: f64) -> WorkloadSpec {
    WorkloadSpec {
        offered_rps: offered,
        dist: ServiceDist::paper_bimodal(),
        body_len: 64,
        warmup: SimDuration::from_millis(5),
        measure: SimDuration::from_millis(40),
        seed: 3,
    }
}

fn main() {
    let offered = 300_000.0;
    println!("bimodal 99.5%@5us / 0.5%@100us at {offered:.0} req/s, 4 host cores\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>12}",
        "system", "p50", "p99", "p99.9", "achieved"
    );

    let mut rows: Vec<(&str, RunMetrics)> = Vec::new();
    for (name, kind) in [
        ("RSS (IX)", BaselineKind::Rss),
        ("Stealing (ZygOS)", BaselineKind::RssStealing),
        ("FlowDir (MICA)", BaselineKind::FlowDirector),
    ] {
        rows.push((
            name,
            BaselineConfig { workers: 4, kind }.run(spec(offered), ProbeConfig::disabled()),
        ));
    }
    rows.push((
        "RPCValet",
        RpcValetConfig { workers: 4 }.run(spec(offered), ProbeConfig::disabled()),
    ));
    // Shinjuku spends one core on networking+dispatch: 3 workers.
    rows.push((
        "Shinjuku",
        ShinjukuConfig::paper(3).run(spec(offered), ProbeConfig::disabled()),
    ));
    rows.push((
        "Shinjuku-Offload",
        OffloadConfig::paper(4, 4).run(spec(offered), ProbeConfig::disabled()),
    ));

    for (name, m) in &rows {
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>11.0}/s",
            name,
            m.p50.to_string(),
            m.p99.to_string(),
            m.p999.to_string(),
            m.achieved_rps
        );
    }

    println!();
    println!("Run-to-completion designs let 100us requests block 5us ones —");
    println!("their p99 explodes. Centralized preemptive scheduling (host or");
    println!("NIC) keeps the tail near the slice length (§2.2).");
}
