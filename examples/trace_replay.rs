//! Trace-driven workloads: quantize a recorded service-time trace into an
//! empirical distribution and replay it against the scheduling systems.
//!
//! Production traces cannot ship with this repository, so we synthesize a
//! RocksDB-like trace (point lookups, range scans, the occasional
//! compaction stall — the §1/§2.2 "databases" motivation) and feed it
//! through `ServiceDist::from_trace`.
//!
//! Run with:
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use mindgap::sim::{Rng, SimDuration};
use mindgap::systems::baseline::{BaselineConfig, BaselineKind};
use mindgap::systems::offload::OffloadConfig;
use mindgap::systems::{ProbeConfig, ServerSystem};
use mindgap::workload::{ServiceDist, WorkloadSpec};

/// Synthesize a RocksDB-flavoured service-time trace: 85% point GETs
/// (~1.5us), 14% short scans (~15us), 1% compaction-impacted ops (~250us).
fn synthesize_trace(n: usize, seed: u64) -> Vec<SimDuration> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            let r = rng.next_f64();
            let us = if r < 0.85 {
                1.0 + rng.exponential(0.5)
            } else if r < 0.99 {
                8.0 + rng.exponential(7.0)
            } else {
                150.0 + rng.exponential(100.0)
            };
            SimDuration::from_micros_f64(us)
        })
        .collect()
}

fn main() {
    let trace = synthesize_trace(100_000, 42);
    let dist = ServiceDist::from_trace(&trace);
    println!("trace: {} samples -> {}", trace.len(), dist.label());
    println!("quantized mean service time: {}\n", dist.mean());

    let spec = WorkloadSpec {
        offered_rps: 250_000.0,
        dist,
        body_len: 64,
        warmup: SimDuration::from_millis(5),
        measure: SimDuration::from_millis(40),
        seed: 7,
    };

    println!(
        "{:<18} {:>10} {:>10} {:>12}",
        "system", "p50", "p99", "achieved"
    );
    let rss = BaselineConfig {
        workers: 4,
        kind: BaselineKind::Rss,
    }
    .run(spec, ProbeConfig::disabled());
    let off = OffloadConfig::paper(4, 4).run(spec, ProbeConfig::disabled());
    for (name, m) in [("RSS (IX)", rss), ("Shinjuku-Offload", off)] {
        println!(
            "{:<18} {:>10} {:>10} {:>11.0}/s",
            name,
            m.p50.to_string(),
            m.p99.to_string(),
            m.achieved_rps
        );
    }
    println!();
    println!("Even a 1% compaction tail wrecks run-to-completion scheduling;");
    println!("preemptive NIC-side scheduling keeps the p99 near the scan cost.");
}
