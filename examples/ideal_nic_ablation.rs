//! Walk the §5.1 hardware design space: how far does each proposed fix —
//! a CXL-class link, then a line-rate ASIC scheduler with coherent
//! feedback and direct interrupts — push the Figure 6 bottleneck?
//!
//! Run with:
//! ```sh
//! cargo run --release --example ideal_nic_ablation
//! ```

use mindgap::nicsched::NicProfile;
use mindgap::sim::SimDuration;
use mindgap::systems::offload::OffloadConfig;
use mindgap::systems::{ProbeConfig, ServerSystem};
use mindgap::workload::{ServiceDist, WorkloadSpec};

fn main() {
    // The worst case for the prototype: tiny 1us requests on 16 workers,
    // where the ARM dispatcher is the bottleneck (Figure 6).
    let spec = |offered| WorkloadSpec {
        offered_rps: offered,
        dist: ServiceDist::Fixed(SimDuration::from_micros(1)),
        body_len: 64,
        warmup: SimDuration::from_millis(5),
        measure: SimDuration::from_millis(40),
        seed: 4,
    };

    println!("fixed 1us requests, 16 workers, outstanding cap 5\n");
    println!(
        "{:<22} {:>16} {:>12}",
        "NIC design point", "max throughput", "p99 @ 1M/s"
    );

    for profile in [
        NicProfile::stingray(),
        NicProfile::stingray_cxl(),
        NicProfile::ideal(),
    ] {
        let cfg = OffloadConfig {
            time_slice: None,
            profile,
            ..OffloadConfig::paper(16, 5)
        };
        // Saturated throughput: offer far beyond any plateau.
        let sat = cfg.run(spec(8_000_000.0), ProbeConfig::disabled());
        // Tail at a comfortable load.
        let light = cfg.run(spec(1_000_000.0), ProbeConfig::disabled());
        println!(
            "{:<22} {:>13.2}M/s {:>12}",
            profile.name,
            sat.achieved_rps / 1e6,
            light.p99.to_string()
        );
    }

    println!();
    println!("CXL shortens the round trip (better tails) but the ARM TX");
    println!("stage still caps throughput; only line-rate scheduling");
    println!("hardware removes the ceiling — the paper's §5.1 conclusion.");
}
