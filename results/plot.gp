# Render the experiment CSVs with gnuplot:
#
#   gnuplot -e "csv='fig6.csv'" plot.gp
#
# produces <csv>.png with one p99-vs-throughput line per curve. The CSVs
# are written by `cargo run --release -p experiments --bin all`.

if (!exists("csv")) csv = "fig2.csv"

set datafile separator ","
set terminal pngcairo size 900,600 font ",11"
set output csv.".png"
set key top left
set xlabel "achieved throughput (requests/second)"
set ylabel "p99 latency (us)"
set logscale y
set grid

curves = system("awk -F, 'NR>1 {print $1}' ".csv." | sort -u | tr '\n' ' '")

plot for [curve in curves] csv \
    using (strcol(1) eq curve ? column(3) : NaN):5 \
    with linespoints lw 2 title curve
