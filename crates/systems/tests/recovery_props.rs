//! Seeded property tests for NIC-side failure recovery: under any
//! crash/stall schedule, re-dispatching orphaned requests must never
//! manufacture a duplicate completion, and the three ledgers — the
//! client's request ledger, the attempt ledger, and the dispatcher's
//! recovery ledger — must reconcile exactly.

use proptest::prelude::*;
use sim_core::{FaultConfig, ProbeConfig, SimDuration, SimTime};
use systems::offload::OffloadConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ResilienceConfig, ServerSystem, SystemConfig};
use workload::{FaultMetrics, RetryPolicy, ServiceDist, WorkloadSpec};

fn spec(seed: u64, rps: f64) -> WorkloadSpec {
    WorkloadSpec {
        offered_rps: rps,
        dist: ServiceDist::paper_bimodal(),
        body_len: 64,
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(5),
        seed,
    }
}

/// Build a fault schedule from proptest-drawn crash/stall descriptors.
/// Times land inside the 6ms horizon so every fault can actually fire.
fn schedule(crashes: &[(usize, u64)], stalls: &[(usize, u64, u64)]) -> FaultConfig {
    let mut faults = FaultConfig::default();
    for &(worker, at_us) in crashes {
        faults = faults.with_crash(worker, SimTime::from_micros(at_us));
    }
    for &(worker, start_us, len_us) in stalls {
        faults = faults.with_stall(
            worker,
            SimTime::from_micros(start_us),
            SimTime::from_micros(start_us + len_us.max(1)),
        );
    }
    faults
}

/// The invariants every recovery-enabled run must satisfy, whatever the
/// fault schedule did.
fn check_ledgers(f: &FaultMetrics, completed_in_window: u64) -> Result<(), TestCaseError> {
    // Exactly-once: `completed_all` counts distinct requests, so the
    // measure-window histogram can never exceed it, and distinct
    // completions can never exceed launches.
    prop_assert!(
        completed_in_window <= f.completed_all,
        "duplicate completion recorded: {f:?}"
    );
    prop_assert!(f.completed_all <= f.launched, "{f:?}");
    // Client request ledger closes exactly.
    prop_assert_eq!(f.unaccounted(), 0, "request ledger leaks: {:?}", f);
    // Attempt ledger stays non-negative after crediting zombie terminals.
    prop_assert!(f.in_pipe() >= 0, "attempt ledger over-accounts: {f:?}");
    // Recovery ledger: every absorbed zombie traces back to exactly one
    // reclaim marker, and every readmission to a prior suspicion.
    prop_assert!(
        f.recovery_duplicates <= f.recovered,
        "more zombies absorbed than requests reclaimed: {f:?}"
    );
    prop_assert!(
        f.readmissions <= f.suspicions,
        "readmitted a worker that was never suspected: {f:?}"
    );
    Ok(())
}

fn recovery_res(faults: FaultConfig) -> ResilienceConfig {
    ResilienceConfig {
        faults,
        retry: Some(RetryPolicy::paper_default()),
        ..ResilienceConfig::default()
    }
    .with_recovery(nicsched::RecoveryPolicy::paper_default())
}

proptest! {
    // Whole-system simulations are the test body, so keep the case count
    // small; each case still exercises thousands of requests.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn recovery_never_double_completes_offload(
        seed in 1u64..10_000,
        rps in 150_000.0f64..300_000.0,
        crashes in proptest::collection::vec((0usize..4, 1_500u64..5_500), 0..=2),
        stalls in proptest::collection::vec((0usize..4, 1_000u64..5_000, 30u64..400), 0..=3),
    ) {
        let res = recovery_res(schedule(&crashes, &stalls));
        let sys = SystemConfig::Offload(OffloadConfig::paper(4, 4));
        let m = sys.run_resilient(spec(seed, rps), ProbeConfig::disabled(), res);
        check_ledgers(&m.faults, m.completed)?;
    }

    #[test]
    fn recovery_never_double_completes_shinjuku(
        seed in 1u64..10_000,
        rps in 150_000.0f64..300_000.0,
        crashes in proptest::collection::vec((0usize..4, 1_500u64..5_500), 0..=1),
        stalls in proptest::collection::vec((0usize..4, 1_000u64..5_000, 30u64..400), 0..=3),
    ) {
        let res = recovery_res(schedule(&crashes, &stalls));
        let sys = SystemConfig::Shinjuku(ShinjukuConfig::paper(4));
        let m = sys.run_resilient(spec(seed, rps), ProbeConfig::disabled(), res);
        check_ledgers(&m.faults, m.completed)?;
    }
}

/// Deterministic end-to-end check: a mid-run crash with recovery enabled
/// must actually trip the detector and reclaim the orphans — otherwise
/// the properties above are vacuous.
#[test]
fn crash_trips_the_detector_and_reclaims_orphans() {
    let faults = FaultConfig::default().with_crash(1, SimTime::from_micros(2_000));
    let res = recovery_res(faults);
    let sys = SystemConfig::Offload(OffloadConfig::paper(4, 4));
    let m = sys.run_resilient(spec(7, 250_000.0), ProbeConfig::disabled(), res);
    let f = &m.faults;
    assert!(f.suspicions > 0, "crashed worker never suspected: {f:?}");
    assert!(f.recovered > 0, "no orphans reclaimed: {f:?}");
    assert_eq!(f.unaccounted(), 0, "{f:?}");
}

/// A transient stall is the false-positive path: the worker is suspected,
/// its lease reclaimed, and when it wakes its zombie completions must be
/// absorbed exactly once while the worker is readmitted.
#[test]
fn stall_exercises_the_false_positive_path() {
    let faults = FaultConfig::default().with_stall(
        2,
        SimTime::from_micros(2_000),
        SimTime::from_micros(2_400),
    );
    let res = recovery_res(faults);
    let sys = SystemConfig::Offload(OffloadConfig::paper(4, 4));
    let m = sys.run_resilient(spec(11, 250_000.0), ProbeConfig::disabled(), res);
    let f = &m.faults;
    assert!(f.suspicions > 0, "stalled worker never suspected: {f:?}");
    assert!(f.readmissions > 0, "woken worker never readmitted: {f:?}");
    assert_eq!(f.unaccounted(), 0, "{f:?}");
    assert!(f.in_pipe() >= 0, "{f:?}");
}
