//! Seeded property test for the client retry machinery: whatever the
//! seed, loss rate, or load, retransmissions must never manufacture a
//! duplicate completion — every request completes at most once, and the
//! request ledger closes exactly. (The companion property — backoff never
//! exceeds its cap — lives next to `RetryPolicy` in the workload crate.)

use proptest::prelude::*;
use sim_core::{FaultConfig, ProbeConfig, SimDuration};
use systems::offload::OffloadConfig;
use systems::{ResilienceConfig, ServerSystem, StalenessPolicy, SystemConfig};
use workload::{RetryPolicy, ServiceDist, WorkloadSpec};

fn spec(seed: u64, rps: f64) -> WorkloadSpec {
    WorkloadSpec {
        offered_rps: rps,
        dist: ServiceDist::paper_bimodal(),
        body_len: 64,
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(5),
        seed,
    }
}

proptest! {
    // Whole-system simulations are the test body, so keep the case count
    // small; each case still exercises thousands of requests.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn retries_never_produce_duplicate_completions(
        seed in 1u64..10_000,
        loss in 0.001f64..0.08,
        rps in 150_000.0f64..350_000.0,
    ) {
        let res = ResilienceConfig {
            faults: FaultConfig::default().with_wire_loss(loss),
            retry: Some(RetryPolicy::paper_default()),
            admission: nicsched::AdmissionPolicy::Open,
            fallback: Some(StalenessPolicy::paper_default()),
            ..ResilienceConfig::default()
        };
        let sys = SystemConfig::Offload(OffloadConfig::paper(4, 4));
        let m = sys.run_resilient(spec(seed, rps), ProbeConfig::disabled(), res);
        let f = &m.faults;

        // At these loss rates some attempt must have been retransmitted,
        // otherwise the property is vacuous.
        prop_assert!(f.retries > 0, "no retries at loss={loss}: {f:?}");
        // Each request completes at most once: `completed_all` counts
        // *distinct* requests ever finished, so the latency histogram
        // (measure window only) can never exceed it, and distinct
        // completions can never exceed launches — a duplicate recording
        // would break one of the two.
        prop_assert!(m.completed <= f.completed_all, "duplicate completion recorded: {:?}", f);
        prop_assert!(f.completed_all <= f.launched, "{:?}", f);
        // And the ledger closes exactly: every launched request is a
        // first completion, an abandonment, or still open — duplicates
        // and orphans are suppressed outside that equation.
        prop_assert_eq!(f.unaccounted(), 0, "request ledger leaks: {:?}", f);
        prop_assert!(f.in_pipe() >= 0, "attempt ledger over-accounts: {:?}", f);
    }
}
