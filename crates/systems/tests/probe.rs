//! Observability-layer guarantees:
//!
//! 1. The per-hop stage breakdown telescopes to the client-observed
//!    sojourn time — the report is an *accounting* of latency, not a
//!    separate estimate.
//! 2. Probing never perturbs the simulation: metrics with the probe
//!    enabled equal metrics with it disabled, and the disabled path is
//!    bit-identical to the direct free-function API.

use nicsched::PolicySpec;
use sim_core::{ProbeConfig, SimDuration};
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::multi_shinjuku::MultiShinjukuConfig;
use systems::offload::OffloadConfig;
use systems::rpcvalet::RpcValetConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ServerSystem, SystemConfig};
use workload::{ServiceDist, WorkloadSpec};

/// A workload where every request traverses the identical stage chain:
/// fixed 5 µs service (far below the 10 µs slice, so no preemption ever
/// re-enters the dispatch path), moderate load, no warmup so the client
/// records every completion the probe also saw.
fn uniform_chain_spec() -> WorkloadSpec {
    WorkloadSpec {
        offered_rps: 150_000.0,
        dist: ServiceDist::Fixed(SimDuration::from_micros(5)),
        body_len: 64,
        warmup: SimDuration::ZERO,
        measure: SimDuration::from_millis(20),
        seed: 7,
    }
}

#[test]
fn offload_hop_breakdown_reconciles_with_client_sojourn() {
    let cfg = OffloadConfig::paper(4, 4);
    let m = cfg.run(uniform_chain_spec(), ProbeConfig::enabled());
    let stages = m.stages.as_ref().expect("probed run must report stages");
    assert_eq!(m.preemptions, 0, "test premise: a single uniform chain");

    // Every request the client saw complete went through the full chain.
    let chain: Vec<_> = stages.chain_hops().collect();
    assert!(chain.len() >= 6, "offload chain has 6+ hops: {chain:?}");

    // The telescoped per-hop means reconcile with the client's mean
    // sojourn. They are not identical populations: requests still in
    // flight at the horizon are censored differently on each side, so
    // allow a small tolerance.
    let chain_mean = stages.chain_mean().as_nanos() as f64;
    let client_mean = m.mean.as_nanos() as f64;
    let rel = (chain_mean - client_mean).abs() / client_mean;
    assert!(
        rel < 0.05,
        "chain mean {chain_mean}ns vs client mean {client_mean}ns (rel err {rel:.4})"
    );
}

#[test]
fn disabled_probe_is_bit_identical_to_the_free_functions() {
    let spec = uniform_chain_spec();
    let probe = ProbeConfig::disabled();
    for sys in [
        SystemConfig::Offload(OffloadConfig::paper(4, 4)),
        SystemConfig::Shinjuku(ShinjukuConfig::paper(4)),
        SystemConfig::Baseline(BaselineConfig {
            workers: 4,
            kind: BaselineKind::Rss,
        }),
        SystemConfig::RpcValet(RpcValetConfig { workers: 4 }),
        SystemConfig::MultiShinjuku(MultiShinjukuConfig {
            groups: 2,
            workers_per_group: 2,
            time_slice: None,
            policy: PolicySpec::FCFS,
        }),
    ] {
        let disabled = sys.run(spec, probe);
        assert!(disabled.stages.is_none());

        let direct = match sys {
            SystemConfig::Offload(c) => systems::offload::run_probed(spec, c, probe),
            SystemConfig::Shinjuku(c) => systems::shinjuku::run_probed(spec, c, probe),
            SystemConfig::Baseline(c) => systems::baseline::run_probed(spec, c, probe),
            SystemConfig::RpcValet(c) => systems::rpcvalet::run_probed(spec, c, probe),
            SystemConfig::MultiShinjuku(c) => {
                systems::multi_shinjuku::run_probed(spec, c, probe).metrics
            }
        };
        assert_eq!(
            disabled,
            direct,
            "{}: trait must be bit-identical to the free function",
            sys.name()
        );
    }
}

#[test]
fn probing_does_not_perturb_the_simulation() {
    let spec = uniform_chain_spec();
    let cfg = OffloadConfig::paper(4, 4);
    let disabled = cfg.run(spec, ProbeConfig::disabled());
    let mut probed = cfg.run(spec, ProbeConfig::enabled());
    assert!(probed.stages.take().is_some());
    assert_eq!(disabled, probed, "observability must be a pure read");
}

#[test]
fn the_feedback_gap_is_measurable() {
    // The paper's central argument: the host dispatcher learns about a
    // completed request only after a PCIe + queue round trip, so a worker
    // sits idle in the gap. The probe surfaces it as the `worker.idle_gap`
    // hop; with work always queued, its mean must be at least the
    // NIC-to-worker notification path (microseconds, not nanoseconds).
    let spec = WorkloadSpec {
        offered_rps: 400_000.0, // keep workers hungry but unsaturated
        ..uniform_chain_spec()
    };
    let cfg = OffloadConfig::paper(4, 4);
    let m = cfg.run(spec, ProbeConfig::enabled());
    let stages = m.stages.as_ref().unwrap();
    let gap = stages.hop("worker.idle_gap").expect("idle gap measured");
    assert!(gap.count > 0);
    assert!(
        gap.mean >= SimDuration::from_nanos(500),
        "offload feedback gap should be sub-us-scale but nonzero: {}",
        gap.mean
    );
}
