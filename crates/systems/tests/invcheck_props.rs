//! The invcheck contract, property-tested across every assembly: enabling
//! runtime invariant checking must be pure observation. For any seed and
//! load, a checked run must produce a FaultMetrics ledger (and headline
//! metrics) bit-identical to the unchecked run — and the checked run must
//! come back certified clean, since `close_invariants` panics on any
//! violation before returning.

use proptest::prelude::*;
use sim_core::{FaultConfig, ProbeConfig, SimDuration};
use systems::baseline::{BaselineConfig, BaselineKind};
use systems::multi_shinjuku::MultiShinjukuConfig;
use systems::offload::OffloadConfig;
use systems::rpcvalet::RpcValetConfig;
use systems::shinjuku::ShinjukuConfig;
use systems::{ResilienceConfig, ServerSystem, StalenessPolicy, SystemConfig};
use workload::{RetryPolicy, ServiceDist, WorkloadSpec};

fn spec(seed: u64, rps: f64) -> WorkloadSpec {
    WorkloadSpec {
        offered_rps: rps,
        dist: ServiceDist::paper_bimodal(),
        body_len: 64,
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(4),
        seed,
    }
}

fn all_assemblies() -> Vec<SystemConfig> {
    vec![
        SystemConfig::Offload(OffloadConfig::paper(4, 4)),
        SystemConfig::Shinjuku(ShinjukuConfig::paper(4)),
        SystemConfig::Baseline(BaselineConfig {
            workers: 4,
            kind: BaselineKind::Rss,
        }),
        SystemConfig::RpcValet(RpcValetConfig { workers: 4 }),
        SystemConfig::MultiShinjuku(MultiShinjukuConfig::split(8, 2)),
    ]
}

proptest! {
    // Each case runs all five assemblies twice; keep the count small.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn invariant_checking_is_bit_identical_on_every_assembly(
        seed in 1u64..10_000,
        loss in 0.0f64..0.05,
        rps in 150_000.0f64..300_000.0,
    ) {
        let base = ResilienceConfig {
            faults: FaultConfig::default().with_wire_loss(loss),
            retry: Some(RetryPolicy::paper_default()),
            admission: nicsched::AdmissionPolicy::Open,
            fallback: Some(StalenessPolicy::paper_default()),
            ..ResilienceConfig::default()
        };
        for sys in all_assemblies() {
            let w = spec(seed, rps);
            let plain = sys.run_resilient(w, ProbeConfig::disabled(), base);
            let checked = sys.run_resilient(w, ProbeConfig::disabled(), base.with_invariants());
            prop_assert_eq!(
                &plain.faults, &checked.faults,
                "{}: invcheck perturbed the fault ledger", sys.name()
            );
            prop_assert_eq!(
                &plain, &checked,
                "{}: invcheck perturbed the run", sys.name()
            );
        }
    }
}
