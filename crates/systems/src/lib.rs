//! # systems — full-system assemblies
//!
//! Each module wires the substrates (NIC model, CPU model, wire formats,
//! workload generation) and the `nicsched` dispatcher into one complete
//! simulated server, exposing a uniform `run(WorkloadSpec, Config) ->
//! RunMetrics` entry point:
//!
//! * [`shinjuku`] — vanilla Shinjuku: host-resident networker + dispatcher
//!   hyperthreads, shared-memory queues, worker preemption (the paper's
//!   baseline in every figure).
//! * [`offload`] — Shinjuku-Offload: networking subsystem and the
//!   three-core dispatcher pipeline on SmartNIC ARM cores, packet-based
//!   worker communication, the §3.4.5 queuing optimization. Generic over
//!   [`nicsched::NicProfile`], so the same assembly runs the Stingray,
//!   the CXL variant, and the ideal line-rate NIC.
//! * [`baseline`] — the §2.1 run-to-completion systems: RSS (IX-style),
//!   RSS + work stealing (ZygOS-style), Flow Director (MICA-style), and
//!   Elastic RSS (§5.1(1)'s µs-scale core provisioning).
//! * [`rpcvalet`] — RPCValet-style NI-integrated hardware queue (§2.1):
//!   perfect balance, nanosecond dispatch, no preemption.
//! * [`multi_shinjuku`] — the §2.2(3) scale-out: several independent
//!   Shinjuku groups behind RSS, with imbalance accounting.
//!
//! All systems exchange real Ethernet/IPv4/UDP frames on external hops
//! and are deterministic per seed.
//!
//! The preferred entry point is the [`ServerSystem`] trait (see [`api`]):
//! `cfg.run(spec, ProbeConfig::disabled())` works uniformly across every
//! assembly, and `ProbeConfig::enabled()` attaches a per-stage
//! [`sim_core::StageReport`] to the returned metrics. The per-module free
//! `run` functions are deprecated shims over the same code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod baseline;
pub mod common;
pub mod multi_shinjuku;
pub mod offload;
pub mod rpcvalet;
pub mod shinjuku;

pub use api::{ServerSystem, SystemConfig};
pub use common::{
    FeedbackGovernor, ResilienceConfig, ResponseOutcome, StalenessPolicy, TimeoutOutcome,
};
pub use sim_core::ProbeConfig;
