//! Plumbing shared by every system assembly: addressing conventions, the
//! open-loop client, and metric assembly.

use net_wire::{Endpoint, EthernetAddress, FrameSpec, Ipv4Address, MsgRepr, ParsedFrame};
use sim_core::{Rng, SimDuration, SimTime};
use workload::{ArrivalGen, ArrivalProcess, LatencyRecorder, ReqClass, RunMetrics, WorkloadSpec};

/// Deterministic MAC/IP addressing plan for a simulated testbed.
///
/// * client: `02:00:00:00:00:01` / 10.0.0.1
/// * dispatcher (NIC ARM or host networker): `02:00:00:00:01:00` / 10.0.1.0
/// * worker `i`'s SR-IOV VF: `02:00:00:00:02:<i>` / 10.0.2.`i`
#[derive(Debug, Clone, Copy)]
pub struct AddressPlan;

impl AddressPlan {
    /// Client NIC MAC.
    pub fn client_mac() -> EthernetAddress {
        EthernetAddress::new(0x02, 0, 0, 0, 0, 1)
    }

    /// Client UDP endpoint.
    pub fn client_ep() -> Endpoint {
        Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 7000)
    }

    /// Dispatcher-side interface MAC (the server's externally visible MAC).
    pub fn dispatcher_mac() -> EthernetAddress {
        EthernetAddress::new(0x02, 0, 0, 0, 1, 0)
    }

    /// Dispatcher UDP endpoint (the service address clients target).
    pub fn dispatcher_ep() -> Endpoint {
        Endpoint::new(Ipv4Address::new(10, 0, 1, 0), 6000)
    }

    /// Worker `i`'s virtual-function MAC (§3.4.2: one VF per worker).
    pub fn worker_mac(i: usize) -> EthernetAddress {
        assert!(i < 256, "worker index out of addressing range");
        EthernetAddress::new(0x02, 0, 0, 0, 2, i as u8)
    }

    /// Worker `i`'s UDP endpoint.
    pub fn worker_ep(i: usize) -> Endpoint {
        assert!(i < 256, "worker index out of addressing range");
        Endpoint::new(Ipv4Address::new(10, 0, 2, i as u8), 6000)
    }
}

/// Just-in-time pacing state (§5.2's congestion-control co-design): the
/// NIC stamps its instantaneous scheduler load into departing responses;
/// the client throttles multiplicatively above `target_depth` and
/// recovers additively below it, so requests arrive "just in time for
/// processing" instead of piling into the centralized queue.
#[derive(Debug, Clone, Copy)]
pub struct JitPacing {
    /// Queue-depth setpoint the client aims to keep the server at.
    pub target_depth: u64,
    /// Current rate multiplier in `(0, 1]`.
    pub scale: f64,
}

impl JitPacing {
    /// Start at full rate with the given setpoint.
    pub fn new(target_depth: u64) -> JitPacing {
        JitPacing {
            target_depth,
            scale: 1.0,
        }
    }

    /// Absorb one load report.
    pub fn observe(&mut self, depth: u64) {
        if depth > self.target_depth {
            self.scale = (self.scale * 0.99).max(0.05);
        } else {
            self.scale = (self.scale + 0.002).min(1.0);
        }
    }
}

/// The mutilate-style open-loop client (§4): Poisson arrivals, synthetic
/// service times stamped into request frames, latency recording from
/// responses.
#[derive(Debug)]
pub struct Client {
    arrivals: ArrivalGen,
    service_rng: Rng,
    spec: WorkloadSpec,
    next_id: u64,
    /// Requests sent.
    pub sent: u64,
    /// Response latency recorder.
    pub recorder: LatencyRecorder,
    /// Client id stamped into requests.
    pub client_id: u32,
    /// Source ports rotate so RSS-based systems see many flows (the
    /// paper's baselines need flow diversity to spread load at all).
    port_cursor: u16,
    /// When set, responses carry server-load feedback and the client
    /// paces itself (§5.2 co-design). `None` = pure open loop (§4).
    pub pacing: Option<JitPacing>,
}

impl Client {
    /// Build a client for `spec`, forking its streams from `master`.
    pub fn new(spec: WorkloadSpec, master: &mut Rng) -> Client {
        Client {
            arrivals: ArrivalGen::new(
                ArrivalProcess::Poisson {
                    rate_rps: spec.offered_rps,
                },
                master.fork(),
            ),
            service_rng: master.fork(),
            spec,
            next_id: 1,
            sent: 0,
            recorder: LatencyRecorder::new(spec.warmup_until()),
            client_id: 1,
            port_cursor: 0,
            pacing: None,
        }
    }

    /// The workload being generated.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Replace the arrival process (e.g. a bursty MMPP instead of the
    /// default Poisson at `spec.offered_rps`), keeping determinism by
    /// forking the stream from `master`.
    pub fn override_arrivals(&mut self, process: ArrivalProcess, master: &mut Rng) {
        self.arrivals = ArrivalGen::new(process, master.fork());
    }

    /// Gap until the first/next request (stretched by JIT pacing when
    /// enabled).
    pub fn next_gap(&mut self) -> SimDuration {
        let gap = self.arrivals.next_gap();
        match self.pacing {
            Some(p) => gap.mul_f64(1.0 / p.scale),
            None => gap,
        }
    }

    /// Emit the next request frame at `now`, addressed to the service.
    pub fn make_request(&mut self, now: SimTime) -> FrameSpec {
        let service = self.spec.dist.sample(&mut self.service_rng);
        let id = self.next_id;
        self.next_id += 1;
        self.sent += 1;
        self.port_cursor = self.port_cursor.wrapping_add(1);
        let mut src = AddressPlan::client_ep();
        // 1024 distinct source ports → plenty of flows for RSS.
        src.port = 7000 + (self.port_cursor % 1024);
        FrameSpec {
            src_mac: AddressPlan::client_mac(),
            dst_mac: AddressPlan::dispatcher_mac(),
            src,
            dst: AddressPlan::dispatcher_ep(),
            msg: MsgRepr::request(
                id,
                self.client_id,
                service.as_nanos(),
                now.as_nanos(),
                self.spec.body_len,
            ),
        }
    }

    /// Absorb a response frame at `now`. In Response messages the
    /// `remaining_ns` field is repurposed as the NIC's load stamp (§5.2);
    /// when pacing is on, the client reacts to it.
    pub fn on_response(&mut self, now: SimTime, frame: &ParsedFrame) {
        let msg = frame.msg;
        let service = SimDuration::from_nanos(msg.service_ns);
        let sent_at = SimTime::from_nanos(msg.sent_at_ns);
        let class = self.spec.class_of(service);
        self.recorder.record(now, sent_at, service, class);
        if let Some(p) = &mut self.pacing {
            p.observe(msg.remaining_ns);
        }
    }
}

/// Assemble [`RunMetrics`] from a client and system counters at `now`.
pub fn assemble_metrics(
    client: &Client,
    dropped: u64,
    preemptions: u64,
    worker_utilization: f64,
) -> RunMetrics {
    let rec = &client.recorder;
    RunMetrics {
        offered_rps: client.spec().offered_rps,
        achieved_rps: rec.achieved_rps(),
        p50: rec.p50().unwrap_or(SimDuration::ZERO),
        p99: rec.p99().unwrap_or(SimDuration::ZERO),
        p999: rec.p999().unwrap_or(SimDuration::ZERO),
        p99_short: rec
            .class_histogram(ReqClass::Short)
            .p99()
            .map(SimDuration::from_nanos)
            .unwrap_or(SimDuration::ZERO),
        p99_long: rec
            .class_histogram(ReqClass::Long)
            .p99()
            .map(SimDuration::from_nanos)
            .unwrap_or(SimDuration::ZERO),
        mean: rec.mean().unwrap_or(SimDuration::ZERO),
        completed: rec.completed,
        dropped,
        preemptions,
        worker_utilization,
        stages: None,
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy free-function run API stays covered until removal
mod tests {
    use super::*;
    use workload::ServiceDist;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::new(100_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)))
    }

    #[test]
    fn addressing_is_unique() {
        let mut macs = std::collections::HashSet::new();
        macs.insert(AddressPlan::client_mac());
        macs.insert(AddressPlan::dispatcher_mac());
        for i in 0..16 {
            macs.insert(AddressPlan::worker_mac(i));
        }
        assert_eq!(macs.len(), 18, "all MACs distinct");
    }

    #[test]
    fn client_request_frames_parse_back() {
        let mut master = Rng::new(7);
        let mut client = Client::new(spec(), &mut master);
        let f = client.make_request(SimTime::from_micros(3));
        let parsed = ParsedFrame::parse(&f.build()).unwrap();
        assert_eq!(parsed.msg.req_id, 1);
        assert_eq!(parsed.msg.service_ns, 5_000);
        assert_eq!(parsed.msg.sent_at_ns, 3_000);
        assert_eq!(parsed.eth.dst_addr, AddressPlan::dispatcher_mac());
        assert_eq!(client.sent, 1);
    }

    #[test]
    fn request_ids_are_sequential_and_ports_rotate() {
        let mut master = Rng::new(7);
        let mut client = Client::new(spec(), &mut master);
        let a = client.make_request(SimTime::ZERO);
        let b = client.make_request(SimTime::ZERO);
        assert_eq!(a.msg.req_id + 1, b.msg.req_id);
        assert_ne!(a.src.port, b.src.port, "flows should differ for RSS");
    }

    #[test]
    fn response_round_trip_records_latency() {
        let mut master = Rng::new(9);
        let mut s = spec();
        s.warmup = SimDuration::ZERO;
        let mut client = Client::new(s, &mut master);
        let req = client.make_request(SimTime::from_micros(10));
        let resp_spec = FrameSpec {
            msg: req.msg.response(),
            ..req
        };
        let parsed = ParsedFrame::parse(&resp_spec.build()).unwrap();
        client.on_response(SimTime::from_micros(30), &parsed);
        assert_eq!(client.recorder.completed, 1);
        assert_eq!(client.recorder.p99(), Some(SimDuration::from_micros(20)));
    }

    #[test]
    fn metrics_assembly() {
        let mut master = Rng::new(9);
        let mut s = spec();
        s.warmup = SimDuration::ZERO;
        let mut client = Client::new(s, &mut master);
        let req = client.make_request(SimTime::ZERO);
        let resp = ParsedFrame::parse(
            &FrameSpec {
                msg: req.msg.response(),
                ..req
            }
            .build(),
        )
        .unwrap();
        client.on_response(SimTime::from_micros(15), &resp);
        let m = assemble_metrics(&client, 2, 3, 0.5);
        assert_eq!(m.completed, 1);
        assert_eq!(m.dropped, 2);
        assert_eq!(m.preemptions, 3);
        assert_eq!(m.p99, SimDuration::from_micros(15));
    }
}
