//! Plumbing shared by every system assembly: addressing conventions, the
//! open-loop client (with its reliability layer), the resilience
//! configuration every assembly accepts, the stale-feedback governor, and
//! metric assembly.

use std::collections::{BTreeMap, BTreeSet};

use net_wire::{Endpoint, EthernetAddress, FrameSpec, Ipv4Address, MsgRepr, ParsedFrame};
use nicsched::{
    AdmissionPolicy, CoreFeedback, CoreSelector, Dispatcher, FeedbackChannel, SchedPolicy,
};
use sim_core::faults::FaultConfig;
use sim_core::{InvariantChecker, InvariantConfig, Rng, SimDuration, SimTime};
use workload::{
    ArrivalGen, ArrivalProcess, FaultMetrics, LatencyRecorder, ReqClass, RetryPolicy, RunMetrics,
    WorkloadSpec,
};

/// Seed salt for the fault plan's private random stream, so fault
/// decisions never perturb the workload's own streams.
pub const FAULT_SEED_SALT: u64 = 0x5EED_FA17;

/// Stretch a duration by a slowdown factor (thermal-throttle windows
/// multiply wall time while the amount of useful work is unchanged).
/// Delegates to the canonical float boundary in sim-core rather than
/// casting here, so simlint's time-float-cast rule has one waiver site.
pub(crate) fn scale_duration(d: SimDuration, factor: f64) -> SimDuration {
    d.mul_f64(factor)
}

/// When the dispatcher's view of workers goes stale enough to be dead
/// data, stop steering on it: degrade to RSS-style hashing, and
/// quarantine individual workers that have been silent even longer (a
/// crashed worker must not keep receiving work until its ring drops it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StalenessPolicy {
    /// Staleness beyond which the *majority-stale* dispatcher falls back
    /// to hashed selection.
    pub degrade_after: SimDuration,
    /// Per-worker staleness beyond which the worker is quarantined from
    /// selection entirely.
    pub quarantine_after: SimDuration,
    /// Interval between worker liveness heartbeats on the feedback path.
    pub heartbeat: SimDuration,
}

impl StalenessPolicy {
    /// Defaults scaled to the paper's 2.56 µs PCIe feedback gap: workers
    /// heartbeat every 5 µs, the dispatcher tolerates ~5 missed
    /// heartbeats before degrading and ~3× that before quarantining.
    pub fn paper_default() -> StalenessPolicy {
        StalenessPolicy {
            degrade_after: SimDuration::from_micros(25),
            quarantine_after: SimDuration::from_micros(75),
            heartbeat: SimDuration::from_micros(5),
        }
    }
}

/// Cross-assembly fault/reliability configuration, deliberately separate
/// from each assembly's own config struct so existing call sites stay
/// untouched: `run_probed` is `run_resilient_probed` with
/// `ResilienceConfig::default()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResilienceConfig {
    /// Timed fault events (loss, bursts, crashes, stalls, blackouts).
    pub faults: FaultConfig,
    /// Client-side timeout/retry policy (`None` = fire-and-forget).
    pub retry: Option<RetryPolicy>,
    /// Dispatcher admission policy (ignored by assemblies without a
    /// central dispatcher, where per-worker rings already tail-drop).
    pub admission: AdmissionPolicy,
    /// Stale-feedback fallback policy for informed dispatchers.
    pub fallback: Option<StalenessPolicy>,
    /// NIC-side failure detection and orphan re-dispatch: the dispatcher
    /// tracks per-worker leases and reclaims in-flight requests from
    /// suspected workers instead of waiting for the client's retry
    /// timeout. `None` keeps runs bit-identical to the pre-recovery path
    /// (no heartbeat frames, no health ticks).
    pub recovery: Option<nicsched::RecoveryPolicy>,
    /// Runtime invariant checking (the "invcheck" pass): engine
    /// causality/FIFO audits, per-event model self-audits, and end-of-run
    /// conservation checks. Enabled runs are bit-identical to plain runs
    /// and panic with a full violation report if any invariant breaks.
    pub invariants: InvariantConfig,
}

impl ResilienceConfig {
    /// Whether anything here deviates from the legacy fault-free path.
    pub fn is_active(&self) -> bool {
        !self.faults.is_none()
            || self.retry.is_some()
            || !self.admission.is_open()
            || self.fallback.is_some()
            || self.recovery.is_some()
    }

    /// The ISSUE-2 acceptance scenario: 1% wire loss plus a mid-run crash
    /// of `worker` at `at`, with retries and the staleness fallback on.
    pub fn loss_and_crash(worker: usize, at: SimTime) -> ResilienceConfig {
        ResilienceConfig {
            faults: FaultConfig::default()
                .with_wire_loss(0.01)
                .with_crash(worker, at),
            retry: Some(RetryPolicy::paper_default()),
            admission: AdmissionPolicy::Open,
            fallback: Some(StalenessPolicy::paper_default()),
            recovery: None,
            invariants: InvariantConfig::disabled(),
        }
    }

    /// This configuration with NIC-side failure recovery switched on.
    pub fn with_recovery(mut self, policy: nicsched::RecoveryPolicy) -> ResilienceConfig {
        self.recovery = Some(policy);
        self
    }

    /// This configuration with runtime invariant checking switched on.
    pub fn with_invariants(mut self) -> ResilienceConfig {
        self.invariants = InvariantConfig::enabled();
        self
    }
}

/// Build the engine-resident invariant checker for `res` (disabled unless
/// the config asks for the invcheck pass).
pub(crate) fn checker_for(res: &ResilienceConfig) -> InvariantChecker {
    InvariantChecker::new(res.invariants)
}

/// End-of-run conservation audit, shared by every assembly: the request
/// ledger must close (`launched = completed + abandoned + still-open`,
/// attempts itemised) and the client's bookkeeping must be self-consistent.
/// Then panic with the accumulated report if the run violated anything.
pub(crate) fn close_invariants(mut inv: InvariantChecker, at: SimTime, m: &RunMetrics) {
    if !inv.is_enabled() {
        return;
    }
    let f = &m.faults;
    if f.unaccounted() != 0 {
        inv.record(
            at,
            "ledger-conservation",
            format!("request ledger residue {}: {f:?}", f.unaccounted()),
        );
    }
    inv.check_bound(at, "client attempts vs launched", f.launched, f.attempts);
    inv.check_bound(at, "completions vs launches", f.completed_all, f.launched);
    inv.assert_clean();
}

/// The stale-feedback governor: watches per-worker report staleness
/// through a [`FeedbackChannel`] and drives the dispatcher's degraded /
/// quarantine switches. Owned by the informed assemblies; baselines are
/// already hash-steered and need none of this.
#[derive(Debug)]
pub struct FeedbackGovernor {
    channel: FeedbackChannel,
    policy: StalenessPolicy,
    degraded: bool,
    degraded_since: Option<SimTime>,
    quarantined: Vec<bool>,
    /// Informed→hashed transitions taken.
    pub switches: u64,
    /// Closed degraded intervals, accumulated nanoseconds.
    pub degraded_ns: u64,
    /// Quarantine events (workers excluded for silence).
    pub quarantines: u64,
}

impl FeedbackGovernor {
    /// A governor over `n_workers` workers whose feedback path has
    /// one-way `latency`.
    pub fn new(
        n_workers: usize,
        latency: SimDuration,
        policy: StalenessPolicy,
    ) -> FeedbackGovernor {
        FeedbackGovernor {
            channel: FeedbackChannel::new(n_workers, latency),
            policy,
            degraded: false,
            degraded_since: None,
            quarantined: vec![false; n_workers],
            switches: 0,
            degraded_ns: 0,
            quarantines: 0,
        }
    }

    /// The governor's staleness policy.
    pub fn policy(&self) -> StalenessPolicy {
        self.policy
    }

    /// Worker side: a liveness report at `now` (suppressed by the caller
    /// during blackouts, stalls and after crashes — that suppression is
    /// exactly what the governor detects).
    pub fn report(&mut self, now: SimTime, worker: usize, occupancy: u32, busy: bool) {
        self.channel.send(
            now,
            CoreFeedback {
                worker,
                occupancy,
                busy,
                reported_at: now,
            },
        );
    }

    /// Dispatcher side: re-evaluate staleness at `now` and push the
    /// resulting degrade/quarantine switches into `disp`. Workers that
    /// have never reported count as stale since the start of the run.
    pub fn evaluate<P: SchedPolicy, S: CoreSelector>(
        &mut self,
        now: SimTime,
        disp: &mut Dispatcher<P, S>,
    ) {
        let n = self.quarantined.len();
        let mut stale = 0usize;
        for w in 0..n {
            let age = self
                .channel
                .staleness(now, w)
                .unwrap_or_else(|| now.saturating_duration_since(SimTime::ZERO));
            if age > self.policy.degrade_after {
                stale += 1;
            }
            let quarantine = age > self.policy.quarantine_after;
            if quarantine != self.quarantined[w] {
                self.quarantined[w] = quarantine;
                if quarantine {
                    self.quarantines += 1;
                }
                disp.set_excluded(w, quarantine);
            }
        }
        let degraded = stale * 2 > n;
        if degraded != self.degraded {
            if degraded {
                self.switches += 1;
                self.degraded_since = Some(now);
            } else if let Some(since) = self.degraded_since.take() {
                self.degraded_ns += now.saturating_duration_since(since).as_nanos();
            }
            self.degraded = degraded;
            disp.set_degraded(degraded);
        }
    }

    /// Whether the governor currently holds the dispatcher degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Total nanoseconds spent degraded, closing any open interval at
    /// `now` (for end-of-run metrics).
    pub fn fallback_ns(&self, now: SimTime) -> u64 {
        self.degraded_ns
            + self
                .degraded_since
                .map(|s| now.saturating_duration_since(s).as_nanos())
                .unwrap_or(0)
    }
}

/// Deterministic MAC/IP addressing plan for a simulated testbed.
///
/// * client: `02:00:00:00:00:01` / 10.0.0.1
/// * dispatcher (NIC ARM or host networker): `02:00:00:00:01:00` / 10.0.1.0
/// * worker `i`'s SR-IOV VF: `02:00:00:00:02:<i>` / 10.0.2.`i`
#[derive(Debug, Clone, Copy)]
pub struct AddressPlan;

impl AddressPlan {
    /// Client NIC MAC.
    pub fn client_mac() -> EthernetAddress {
        EthernetAddress::new(0x02, 0, 0, 0, 0, 1)
    }

    /// Client UDP endpoint.
    pub fn client_ep() -> Endpoint {
        Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 7000)
    }

    /// Dispatcher-side interface MAC (the server's externally visible MAC).
    pub fn dispatcher_mac() -> EthernetAddress {
        EthernetAddress::new(0x02, 0, 0, 0, 1, 0)
    }

    /// Dispatcher UDP endpoint (the service address clients target).
    pub fn dispatcher_ep() -> Endpoint {
        Endpoint::new(Ipv4Address::new(10, 0, 1, 0), 6000)
    }

    /// Worker `i`'s virtual-function MAC (§3.4.2: one VF per worker).
    pub fn worker_mac(i: usize) -> EthernetAddress {
        assert!(i < 256, "worker index out of addressing range");
        EthernetAddress::new(0x02, 0, 0, 0, 2, i as u8)
    }

    /// Worker `i`'s UDP endpoint.
    pub fn worker_ep(i: usize) -> Endpoint {
        assert!(i < 256, "worker index out of addressing range");
        Endpoint::new(Ipv4Address::new(10, 0, 2, i as u8), 6000)
    }
}

/// Just-in-time pacing state (§5.2's congestion-control co-design): the
/// NIC stamps its instantaneous scheduler load into departing responses;
/// the client throttles multiplicatively above `target_depth` and
/// recovers additively below it, so requests arrive "just in time for
/// processing" instead of piling into the centralized queue.
#[derive(Debug, Clone, Copy)]
pub struct JitPacing {
    /// Queue-depth setpoint the client aims to keep the server at.
    pub target_depth: u64,
    /// Current rate multiplier in `(0, 1]`.
    pub scale: f64,
}

impl JitPacing {
    /// Start at full rate with the given setpoint.
    pub fn new(target_depth: u64) -> JitPacing {
        JitPacing {
            target_depth,
            scale: 1.0,
        }
    }

    /// Absorb one load report.
    pub fn observe(&mut self, depth: u64) {
        if depth > self.target_depth {
            self.scale = (self.scale * 0.99).max(0.05);
        } else {
            self.scale = (self.scale + 0.002).min(1.0);
        }
    }
}

/// What became of a response frame arriving at the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseOutcome {
    /// First response for the request: latency recorded.
    Recorded,
    /// The request had already completed — a retransmission raced the
    /// original; suppressed.
    Duplicate,
    /// The client had already abandoned the request; the work was wasted.
    Orphaned,
}

/// What a per-attempt timeout (or early NACK) resolves to.
#[derive(Clone, Debug, PartialEq)]
pub enum TimeoutOutcome {
    /// The attempt already resolved, or a newer attempt superseded it.
    Stale,
    /// Retransmit `frame` now and arm a fresh timeout.
    Retry {
        /// The rebuilt request frame (same request id, original send
        /// timestamp, so recorded latency spans the full ordeal).
        frame: FrameSpec,
        /// The new attempt number (1-based).
        attempt: u32,
        /// Timeout to arm for this attempt (backed off, capped).
        timeout: SimDuration,
    },
    /// Attempt budget exhausted: the request is abandoned.
    Abandoned,
}

/// Per-request reliability state.
#[derive(Debug, Clone, Copy)]
struct PendingReq {
    msg: MsgRepr,
    attempt: u32,
}

/// The mutilate-style open-loop client (§4): Poisson arrivals, synthetic
/// service times stamped into request frames, latency recording from
/// responses.
#[derive(Debug)]
pub struct Client {
    arrivals: ArrivalGen,
    service_rng: Rng,
    spec: WorkloadSpec,
    next_id: u64,
    /// Requests sent.
    pub sent: u64,
    /// Response latency recorder.
    pub recorder: LatencyRecorder,
    /// Client id stamped into requests.
    pub client_id: u32,
    /// Source ports rotate so RSS-based systems see many flows (the
    /// paper's baselines need flow diversity to spread load at all).
    port_cursor: u16,
    /// When set, responses carry server-load feedback and the client
    /// paces itself (§5.2 co-design). `None` = pure open loop (§4).
    pub pacing: Option<JitPacing>,
    /// Timeout/retry policy; `None` = fire-and-forget (requests are still
    /// tracked so the run ledger closes).
    retry: Option<RetryPolicy>,
    /// Requests awaiting their first response. Ordered by request id so
    /// any iteration (ledger dumps, horizon accounting) is deterministic.
    outstanding: BTreeMap<u64, PendingReq>,
    /// Requests whose response was recorded (including during warmup).
    done: BTreeSet<u64>,
    /// Requests abandoned after the attempt budget.
    gave_up: BTreeSet<u64>,
    /// Retransmissions sent.
    pub retries: u64,
    /// Timeouts that fired while their attempt was live.
    pub timeouts: u64,
    /// Suppressed duplicate responses.
    pub duplicates: u64,
    /// Responses that arrived after abandonment.
    pub orphaned: u64,
    /// Requests abandoned.
    pub abandoned: u64,
}

impl Client {
    /// Build a client for `spec`, forking its streams from `master`.
    pub fn new(spec: WorkloadSpec, master: &mut Rng) -> Client {
        Client {
            arrivals: ArrivalGen::new(
                ArrivalProcess::Poisson {
                    rate_rps: spec.offered_rps,
                },
                master.fork(),
            ),
            service_rng: master.fork(),
            spec,
            next_id: 1,
            sent: 0,
            recorder: LatencyRecorder::new(spec.warmup_until()),
            client_id: 1,
            port_cursor: 0,
            pacing: None,
            retry: None,
            outstanding: BTreeMap::new(),
            done: BTreeSet::new(),
            gave_up: BTreeSet::new(),
            retries: 0,
            timeouts: 0,
            duplicates: 0,
            orphaned: 0,
            abandoned: 0,
        }
    }

    /// Arm the reliability layer: each request gets a per-attempt timeout
    /// and up to `policy.max_attempts` transmissions.
    pub fn enable_retries(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// The retry policy, if reliability is armed.
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// The workload being generated.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Replace the arrival process (e.g. a bursty MMPP instead of the
    /// default Poisson at `spec.offered_rps`), keeping determinism by
    /// forking the stream from `master`.
    pub fn override_arrivals(&mut self, process: ArrivalProcess, master: &mut Rng) {
        self.arrivals = ArrivalGen::new(process, master.fork());
    }

    /// Gap until the first/next request (stretched by JIT pacing when
    /// enabled).
    pub fn next_gap(&mut self) -> SimDuration {
        let gap = self.arrivals.next_gap();
        match self.pacing {
            Some(p) => gap.mul_f64(1.0 / p.scale),
            None => gap,
        }
    }

    /// Emit the next request frame at `now`, addressed to the service.
    pub fn make_request(&mut self, now: SimTime) -> FrameSpec {
        let service = self.spec.dist.sample(&mut self.service_rng);
        let id = self.next_id;
        self.next_id += 1;
        self.sent += 1;
        self.port_cursor = self.port_cursor.wrapping_add(1);
        let mut src = AddressPlan::client_ep();
        // 1024 distinct source ports → plenty of flows for RSS.
        src.port = 7000 + (self.port_cursor % 1024);
        let msg = MsgRepr::request(
            id,
            self.client_id,
            service.as_nanos(),
            now.as_nanos(),
            self.spec.body_len,
        );
        self.outstanding.insert(id, PendingReq { msg, attempt: 1 });
        FrameSpec {
            src_mac: AddressPlan::client_mac(),
            dst_mac: AddressPlan::dispatcher_mac(),
            src,
            dst: AddressPlan::dispatcher_ep(),
            msg,
        }
    }

    /// The timeout to arm right after transmitting `req_id` (`None` when
    /// reliability is off or the request already resolved). Returns the
    /// attempt number to stamp into the timeout event, so stale firings
    /// from superseded attempts can be ignored (the engine's
    /// generation-counter cancellation idiom).
    pub fn arm_timeout(&self, req_id: u64) -> Option<(u32, SimDuration)> {
        let policy = self.retry?;
        let pending = self.outstanding.get(&req_id)?;
        Some((pending.attempt, policy.timeout_for(pending.attempt)))
    }

    /// Rebuild the wire frame for a retransmission of `req_id`. The
    /// message is byte-identical to the original (same id, service time
    /// and send timestamp — latency is measured from the *first*
    /// transmission); only the source port is re-derived so the flow
    /// stays stable for RSS.
    fn rebuild_frame(&self, msg: MsgRepr) -> FrameSpec {
        let mut src = AddressPlan::client_ep();
        src.port = 7000 + (msg.req_id % 1024) as u16;
        FrameSpec {
            src_mac: AddressPlan::client_mac(),
            dst_mac: AddressPlan::dispatcher_mac(),
            src,
            dst: AddressPlan::dispatcher_ep(),
            msg,
        }
    }

    /// Resolve a live attempt that will never get a response: either
    /// retransmit (bumping the attempt) or abandon the request.
    fn expire(&mut self, req_id: u64) -> TimeoutOutcome {
        let Some(policy) = self.retry else {
            return TimeoutOutcome::Stale;
        };
        let Some(pending) = self.outstanding.get_mut(&req_id) else {
            return TimeoutOutcome::Stale;
        };
        if !policy.may_retry(pending.attempt) {
            self.outstanding.remove(&req_id);
            self.gave_up.insert(req_id);
            self.abandoned += 1;
            return TimeoutOutcome::Abandoned;
        }
        pending.attempt += 1;
        let attempt = pending.attempt;
        let msg = pending.msg;
        self.retries += 1;
        TimeoutOutcome::Retry {
            frame: self.rebuild_frame(msg),
            attempt,
            timeout: policy.timeout_for(attempt),
        }
    }

    /// A timeout armed for (`req_id`, `attempt`) fired at `now`.
    pub fn on_timeout(&mut self, _now: SimTime, req_id: u64, attempt: u32) -> TimeoutOutcome {
        match self.outstanding.get(&req_id) {
            Some(p) if p.attempt == attempt => {}
            _ => return TimeoutOutcome::Stale, // resolved or superseded
        }
        self.timeouts += 1;
        self.expire(req_id)
    }

    /// An early NACK for `req_id` arrived at `now`: the dispatcher shed
    /// the current attempt, so resolve it immediately instead of waiting
    /// for the timeout.
    pub fn on_nack(&mut self, _now: SimTime, req_id: u64) -> TimeoutOutcome {
        if !self.outstanding.contains_key(&req_id) {
            return TimeoutOutcome::Stale;
        }
        self.expire(req_id)
    }

    /// Absorb a response frame at `now`. In Response messages the
    /// `remaining_ns` field is repurposed as the NIC's load stamp (§5.2);
    /// when pacing is on, the client reacts to it. Duplicate responses
    /// (a retransmission raced the original) and orphans (the request was
    /// already abandoned) are counted and suppressed, never recorded.
    pub fn on_response(&mut self, now: SimTime, frame: &ParsedFrame) -> ResponseOutcome {
        let msg = frame.msg;
        if let Some(p) = &mut self.pacing {
            p.observe(msg.remaining_ns);
        }
        if self.done.contains(&msg.req_id) {
            self.duplicates += 1;
            return ResponseOutcome::Duplicate;
        }
        if self.gave_up.contains(&msg.req_id) {
            self.orphaned += 1;
            return ResponseOutcome::Orphaned;
        }
        self.done.insert(msg.req_id);
        self.outstanding.remove(&msg.req_id);
        let service = SimDuration::from_nanos(msg.service_ns);
        let sent_at = SimTime::from_nanos(msg.sent_at_ns);
        let class = self.spec.class_of(service);
        self.recorder.record(now, sent_at, service, class);
        ResponseOutcome::Recorded
    }

    /// Audit client bookkeeping: every issued request id lives in exactly
    /// one of `outstanding` / `done` / `gave_up`, so their sizes must sum
    /// to the number of requests sent. O(1), called per event on invcheck
    /// runs.
    pub fn check_invariants(&self, now: SimTime, inv: &mut InvariantChecker) {
        inv.check_conservation(
            now,
            "client requests (sent = done + gave_up + outstanding)",
            self.sent,
            (self.done.len() + self.gave_up.len() + self.outstanding.len()) as u64,
        );
    }

    /// The client-side half of the fault ledger (assemblies overlay the
    /// model-side counters: link losses, ring drops, sheds, strandings).
    pub fn fault_metrics(&self) -> FaultMetrics {
        FaultMetrics {
            attempts: self.sent + self.retries,
            launched: self.sent,
            completed_all: self.done.len() as u64,
            retries: self.retries,
            timeouts: self.timeouts,
            duplicates: self.duplicates,
            orphaned: self.orphaned,
            abandoned: self.abandoned,
            open_at_horizon: self.outstanding.len() as u64,
            ..FaultMetrics::default()
        }
    }
}

/// Assemble [`RunMetrics`] from a client and system counters at `now`.
pub fn assemble_metrics(
    client: &Client,
    dropped: u64,
    preemptions: u64,
    worker_utilization: f64,
) -> RunMetrics {
    let rec = &client.recorder;
    RunMetrics {
        offered_rps: client.spec().offered_rps,
        achieved_rps: rec.achieved_rps(),
        p50: rec.p50().unwrap_or(SimDuration::ZERO),
        p99: rec.p99().unwrap_or(SimDuration::ZERO),
        p999: rec.p999().unwrap_or(SimDuration::ZERO),
        p99_short: rec
            .class_histogram(ReqClass::Short)
            .p99()
            .map(SimDuration::from_nanos)
            .unwrap_or(SimDuration::ZERO),
        p99_long: rec
            .class_histogram(ReqClass::Long)
            .p99()
            .map(SimDuration::from_nanos)
            .unwrap_or(SimDuration::ZERO),
        mean: rec.mean().unwrap_or(SimDuration::ZERO),
        completed: rec.completed,
        dropped,
        preemptions,
        worker_utilization,
        stages: None,
        faults: client.fault_metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::ServiceDist;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::new(100_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)))
    }

    #[test]
    fn addressing_is_unique() {
        let mut macs = std::collections::BTreeSet::new();
        macs.insert(AddressPlan::client_mac());
        macs.insert(AddressPlan::dispatcher_mac());
        for i in 0..16 {
            macs.insert(AddressPlan::worker_mac(i));
        }
        assert_eq!(macs.len(), 18, "all MACs distinct");
    }

    #[test]
    fn client_request_frames_parse_back() {
        let mut master = Rng::new(7);
        let mut client = Client::new(spec(), &mut master);
        let f = client.make_request(SimTime::from_micros(3));
        let parsed = ParsedFrame::parse(&f.build()).unwrap();
        assert_eq!(parsed.msg.req_id, 1);
        assert_eq!(parsed.msg.service_ns, 5_000);
        assert_eq!(parsed.msg.sent_at_ns, 3_000);
        assert_eq!(parsed.eth.dst_addr, AddressPlan::dispatcher_mac());
        assert_eq!(client.sent, 1);
    }

    #[test]
    fn request_ids_are_sequential_and_ports_rotate() {
        let mut master = Rng::new(7);
        let mut client = Client::new(spec(), &mut master);
        let a = client.make_request(SimTime::ZERO);
        let b = client.make_request(SimTime::ZERO);
        assert_eq!(a.msg.req_id + 1, b.msg.req_id);
        assert_ne!(a.src.port, b.src.port, "flows should differ for RSS");
    }

    #[test]
    fn response_round_trip_records_latency() {
        let mut master = Rng::new(9);
        let mut s = spec();
        s.warmup = SimDuration::ZERO;
        let mut client = Client::new(s, &mut master);
        let req = client.make_request(SimTime::from_micros(10));
        let resp_spec = FrameSpec {
            msg: req.msg.response(),
            ..req
        };
        let parsed = ParsedFrame::parse(&resp_spec.build()).unwrap();
        client.on_response(SimTime::from_micros(30), &parsed);
        assert_eq!(client.recorder.completed, 1);
        assert_eq!(client.recorder.p99(), Some(SimDuration::from_micros(20)));
    }

    #[test]
    fn retry_flow_retransmits_then_abandons() {
        let mut master = Rng::new(5);
        let mut client = Client::new(spec(), &mut master);
        let policy = RetryPolicy {
            timeout: SimDuration::from_micros(100),
            backoff: 2.0,
            max_timeout: SimDuration::from_micros(300),
            max_attempts: 3,
        };
        client.enable_retries(policy);
        let f = client.make_request(SimTime::ZERO);
        let id = f.msg.req_id;
        let (attempt, t) = client.arm_timeout(id).unwrap();
        assert_eq!((attempt, t), (1, SimDuration::from_micros(100)));
        // First timeout: retransmit with doubled timeout.
        let out = client.on_timeout(SimTime::from_micros(100), id, 1);
        let TimeoutOutcome::Retry {
            frame,
            attempt,
            timeout,
        } = out
        else {
            panic!("expected retry, got {out:?}");
        };
        assert_eq!(frame.msg, f.msg, "retransmit is byte-identical");
        assert_eq!(attempt, 2);
        assert_eq!(timeout, SimDuration::from_micros(200));
        // A stale firing of the superseded attempt is ignored.
        assert_eq!(
            client.on_timeout(SimTime::from_micros(150), id, 1),
            TimeoutOutcome::Stale
        );
        // Second timeout: third (= last) attempt.
        assert!(matches!(
            client.on_timeout(SimTime::from_micros(300), id, 2),
            TimeoutOutcome::Retry { attempt: 3, .. }
        ));
        // Third timeout: budget exhausted.
        assert_eq!(
            client.on_timeout(SimTime::from_micros(600), id, 3),
            TimeoutOutcome::Abandoned
        );
        assert_eq!(client.retries, 2);
        assert_eq!(client.timeouts, 3);
        assert_eq!(client.abandoned, 1);
        let fm = client.fault_metrics();
        assert_eq!(fm.attempts, 3);
        assert_eq!(fm.launched, 1);
        assert_eq!(fm.unaccounted(), 0, "abandonment closes the ledger");
    }

    #[test]
    fn duplicate_and_orphan_responses_are_suppressed() {
        let mut master = Rng::new(5);
        let mut s = spec();
        s.warmup = SimDuration::ZERO;
        let mut client = Client::new(s, &mut master);
        client.enable_retries(RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::paper_default()
        });
        let req = client.make_request(SimTime::ZERO);
        let resp = ParsedFrame::parse(
            &FrameSpec {
                msg: req.msg.response(),
                ..req
            }
            .build(),
        )
        .unwrap();
        assert_eq!(
            client.on_response(SimTime::from_micros(10), &resp),
            ResponseOutcome::Recorded
        );
        assert_eq!(
            client.on_response(SimTime::from_micros(12), &resp),
            ResponseOutcome::Duplicate
        );
        assert_eq!(client.recorder.completed, 1, "recorded exactly once");
        // An abandoned request's late response is an orphan.
        let req2 = client.make_request(SimTime::ZERO);
        assert_eq!(
            client.on_timeout(SimTime::from_millis(1), req2.msg.req_id, 1),
            TimeoutOutcome::Abandoned
        );
        let resp2 = ParsedFrame::parse(
            &FrameSpec {
                msg: req2.msg.response(),
                ..req2
            }
            .build(),
        )
        .unwrap();
        assert_eq!(
            client.on_response(SimTime::from_millis(2), &resp2),
            ResponseOutcome::Orphaned
        );
        let fm = client.fault_metrics();
        assert_eq!(fm.duplicates, 1);
        assert_eq!(fm.orphaned, 1);
        assert_eq!(fm.unaccounted(), 0);
    }

    #[test]
    fn nack_triggers_immediate_retry() {
        let mut master = Rng::new(5);
        let mut client = Client::new(spec(), &mut master);
        client.enable_retries(RetryPolicy::paper_default());
        let f = client.make_request(SimTime::ZERO);
        let out = client.on_nack(SimTime::from_micros(5), f.msg.req_id);
        assert!(matches!(out, TimeoutOutcome::Retry { attempt: 2, .. }));
        assert_eq!(client.timeouts, 0, "a NACK is not a timeout");
        assert_eq!(client.retries, 1);
        assert_eq!(
            client.on_nack(SimTime::from_micros(5), 999),
            TimeoutOutcome::Stale
        );
    }

    #[test]
    fn governor_degrades_quarantines_and_recovers() {
        use nicsched::{Fcfs, LeastOutstanding};
        let us = SimTime::from_micros;
        let policy = StalenessPolicy {
            degrade_after: SimDuration::from_micros(25),
            quarantine_after: SimDuration::from_micros(75),
            heartbeat: SimDuration::from_micros(5),
        };
        let mut gov = FeedbackGovernor::new(2, SimDuration::from_micros(2), policy);
        let mut disp = Dispatcher::new(2, 1, Fcfs::new(), LeastOutstanding);
        // Both workers report early: healthy.
        gov.report(us(1), 0, 0, false);
        gov.report(us(1), 1, 0, false);
        gov.evaluate(us(5), &mut disp);
        assert!(!gov.is_degraded());
        // Worker 1 goes silent; worker 0 keeps reporting. Evaluate after the
        // 2 µs channel latency so the fresh report has actually landed.
        gov.report(us(30), 0, 0, false);
        gov.evaluate(us(33), &mut disp);
        assert!(!gov.is_degraded(), "one stale of two is not a majority");
        gov.report(us(80), 0, 0, false);
        gov.evaluate(us(83), &mut disp);
        assert!(disp.is_excluded(1), "silent worker quarantined");
        assert!(!disp.is_excluded(0));
        assert_eq!(gov.quarantines, 1);
        // Total blackout: both silent long enough -> hashed fallback.
        gov.evaluate(us(130), &mut disp);
        assert!(gov.is_degraded());
        assert!(disp.is_degraded());
        assert_eq!(gov.switches, 1);
        // Both resume reporting: fallback lifts, quarantine releases.
        gov.report(us(140), 0, 0, false);
        gov.report(us(140), 1, 0, false);
        gov.evaluate(us(143), &mut disp);
        assert!(!gov.is_degraded());
        assert!(!disp.is_excluded(1));
        assert_eq!(gov.fallback_ns(us(143)), gov.degraded_ns);
        assert!(gov.degraded_ns >= 13_000, "degraded 130->143us");
    }

    #[test]
    fn metrics_assembly() {
        let mut master = Rng::new(9);
        let mut s = spec();
        s.warmup = SimDuration::ZERO;
        let mut client = Client::new(s, &mut master);
        let req = client.make_request(SimTime::ZERO);
        let resp = ParsedFrame::parse(
            &FrameSpec {
                msg: req.msg.response(),
                ..req
            }
            .build(),
        )
        .unwrap();
        client.on_response(SimTime::from_micros(15), &resp);
        let m = assemble_metrics(&client, 2, 3, 0.5);
        assert_eq!(m.completed, 1);
        assert_eq!(m.dropped, 2);
        assert_eq!(m.preemptions, 3);
        assert_eq!(m.p99, SimDuration::from_micros(15));
    }
}
