//! Multi-dispatcher Shinjuku: the §2.2(3) scaling escape hatch, built so
//! its costs are measurable.
//!
//! "The dispatcher can only scale to 5M requests … so multiple dispatchers
//! need to be instantiated. RSS can be used to route packets from the NIC
//! to different dispatchers, but this can again result in load imbalance.
//! Moreover, one physical core is dedicated to each dispatcher … 1/12 =
//! 8.33% of execution resources is wasted" (§2.2).
//!
//! This assembly partitions the server into `groups` independent Shinjuku
//! instances: the NIC RSS-hashes flows across the groups' networker
//! queues, each group has its own networker+dispatcher core pair and a
//! private slice of the workers. Requests cannot cross groups — exactly
//! the imbalance-vs-scalability trade the paper describes. With
//! `groups = 1` this degenerates to vanilla Shinjuku.

use std::collections::VecDeque;

use bytes::Bytes;
use cpu_model::{ContextCosts, ContextPool, Core, CoreId, CoreSpec, OneShotTimer, TimerMode};
use net_wire::{FrameSpec, MsgKind, MsgRepr, ParsedFrame};
use nic_model::{IfaceId, Link, NicDevice, QueueSteering, Rss};
use nicsched::{
    params, Assignment, Dispatcher, LeastOutstanding, PolicySpec, RecoveryPolicy, SchedPolicy, Task,
};
use sim_core::{Ctx, Engine, FaultPlan, Model, Probe, ProbeConfig, Rng, SimDuration, SimTime};
use workload::{RunMetrics, WorkloadSpec};

use crate::common::{
    assemble_metrics, scale_duration, AddressPlan, Client, ResilienceConfig, TimeoutOutcome,
    FAULT_SEED_SALT,
};

/// Configuration of a multi-dispatcher Shinjuku.
#[derive(Debug, Clone, Copy)]
pub struct MultiShinjukuConfig {
    /// Independent dispatcher groups (RSS spreads flows across them).
    pub groups: usize,
    /// Worker cores per group.
    pub workers_per_group: usize,
    /// Preemption time slice; `None` disables preemption.
    pub time_slice: Option<SimDuration>,
    /// Queue policy within each group (a registry spec).
    pub policy: PolicySpec,
}

impl MultiShinjukuConfig {
    /// Split `total_cores` into `groups` dispatchers plus equal worker
    /// slices (mirrors the paper's accounting: one physical core per
    /// dispatcher pair).
    pub fn split(total_cores: usize, groups: usize) -> MultiShinjukuConfig {
        assert!(
            groups >= 1 && total_cores > groups,
            "need cores left for workers"
        );
        MultiShinjukuConfig {
            groups,
            workers_per_group: (total_cores - groups) / groups,
            time_slice: Some(params::TIME_SLICE),
            policy: PolicySpec::FCFS,
        }
    }

    /// Fraction of the machine spent on dispatching rather than work —
    /// the §2.2 "8.33% wasted" figure for 1 dispatcher per 11 workers.
    pub fn dispatch_overhead_fraction(&self) -> f64 {
        self.groups as f64 / (self.groups * (1 + self.workers_per_group)) as f64
    }
}

#[derive(Debug, Clone, Copy)]
enum DispItem {
    NewTask(Task),
    Done {
        local_worker: usize,
        req_id: u64,
    },
    Preempted {
        local_worker: usize,
        task: Task,
    },
    Emit(Assignment),
    /// A lease-renewal heartbeat from a group-local worker (recovery only).
    Heartbeat {
        local_worker: usize,
    },
}

enum Ev {
    ClientSend,
    WireToNic(Bytes),
    NetworkerDone(usize),
    DispPush(usize, DispItem),
    DispDone(usize),
    /// (group, local worker index, task)
    WorkerTask(usize, usize, Task),
    WorkerPoll(usize, usize),
    WorkerRunEnd {
        group: usize,
        local: usize,
        gen: u64,
    },
    ClientResp(Bytes),
    /// A client retransmit timer fires for one attempt of one request.
    ClientTimeout {
        req_id: u64,
        attempt: u32,
    },
    /// A worker's periodic liveness heartbeat to its group dispatcher
    /// (group, local worker index; recovery only).
    Heartbeat(usize, usize),
}

struct Worker {
    core: Core,
    timer: OneShotTimer,
    inbox: VecDeque<Task>,
    running: Option<(Task, SimDuration)>,
}

struct Group {
    networker_busy: bool,
    disp_queue: VecDeque<DispItem>,
    disp_busy: bool,
    dispatcher: Dispatcher<Box<dyn SchedPolicy>, LeastOutstanding>,
    workers: Vec<Worker>,
    /// Requests admitted by this group (imbalance statistics).
    admitted: u64,
}

struct MultiShinjuku {
    cfg: MultiShinjukuConfig,
    client: Client,
    horizon: SimTime,
    client_link: Link,
    server_link: Link,
    nic: NicDevice,
    net_iface: IfaceId,
    groups: Vec<Group>,
    ctx_pool: ContextPool,
    ctx_costs: ContextCosts,
    host: CoreSpec,
    preemptions: u64,

    /// NIC-side failure-detection policy, when recovery is enabled. Each
    /// group's dispatcher runs its own tracker over its private workers.
    recovery: Option<RecoveryPolicy>,
    req_lost: u64,
    resp_lost: u64,
    stranded: u64,
    nacks: u64,
}

impl MultiShinjuku {
    fn new(spec: WorkloadSpec, cfg: MultiShinjukuConfig, res: ResilienceConfig) -> MultiShinjuku {
        let mut master = Rng::new(spec.seed);
        let mut client = Client::new(spec, &mut master);
        if let Some(policy) = res.retry {
            client.enable_retries(policy);
        }
        let (client_link, server_link) = if res.faults.wire_loss > 0.0 {
            (
                Link::ten_gbe().with_loss(res.faults.wire_loss, master.fork()),
                Link::ten_gbe().with_loss(res.faults.wire_loss, master.fork()),
            )
        } else {
            (Link::ten_gbe(), Link::ten_gbe())
        };

        let mut nic = NicDevice::new(params::PCIE_DMA);
        // One RX queue per dispatcher group, fed by RSS (§2.2).
        let net_iface = nic.add_iface(
            AddressPlan::dispatcher_mac(),
            cfg.groups,
            1024,
            QueueSteering::Rss(Rss::new(cfg.groups as u32)),
        );

        let t0 = SimTime::ZERO;
        let groups = (0..cfg.groups)
            .map(|g| Group {
                networker_busy: false,
                disp_queue: VecDeque::new(),
                disp_busy: false,
                dispatcher: {
                    let mut d = Dispatcher::new(
                        cfg.workers_per_group,
                        1,
                        cfg.policy.build(),
                        LeastOutstanding,
                    );
                    d.set_admission(res.admission);
                    if let Some(policy) = res.recovery {
                        d.enable_recovery(policy);
                    }
                    d
                },
                workers: (0..cfg.workers_per_group)
                    .map(|w| Worker {
                        core: Core::new(
                            CoreId((g * cfg.workers_per_group + w) as u32),
                            CoreSpec::host_x86(),
                            t0,
                        ),
                        timer: OneShotTimer::new(),
                        inbox: VecDeque::new(),
                        running: None,
                    })
                    .collect(),
                admitted: 0,
            })
            .collect();

        MultiShinjuku {
            cfg,
            horizon: spec.horizon(),
            client,
            client_link,
            server_link,
            nic,
            net_iface,
            groups,
            ctx_pool: ContextPool::new(),
            ctx_costs: ContextCosts::default(),
            host: CoreSpec::host_x86(),
            preemptions: 0,
            recovery: res.recovery,
            req_lost: 0,
            resp_lost: 0,
            stranded: 0,
            nacks: 0,
        }
    }

    /// Transmit a client→NIC frame over the (possibly lossy) request wire.
    fn send_request(&mut self, spec: &FrameSpec, ctx: &mut Ctx<'_, Ev>) {
        let payload_len = spec.frame_len() - net_wire::ethernet::HEADER_LEN;
        let bytes = spec.build();
        let now = ctx.now();
        if ctx.faults().burst_frame_lost(now) {
            self.req_lost += 1;
            ctx.probe().count("wire.req_lost");
            return;
        }
        match self.client_link.transmit_lossy(now, payload_len) {
            Some(arrive) => ctx.schedule_at(arrive, Ev::WireToNic(bytes)),
            None => {
                self.req_lost += 1;
                ctx.probe().count("wire.req_lost");
            }
        }
    }

    /// Transmit a server→client frame (response or NACK) starting at `depart`.
    fn send_response(&mut self, spec: &FrameSpec, depart: SimTime, ctx: &mut Ctx<'_, Ev>) {
        let payload_len = spec.frame_len() - net_wire::ethernet::HEADER_LEN;
        let bytes = spec.build();
        if ctx.faults().burst_frame_lost(depart) {
            self.resp_lost += 1;
            ctx.probe().count("wire.resp_lost");
            return;
        }
        match self.server_link.transmit_lossy(depart, payload_len) {
            Some(arrive) => ctx.schedule_at(arrive, Ev::ClientResp(bytes)),
            None => {
                self.resp_lost += 1;
                ctx.probe().count("wire.resp_lost");
            }
        }
    }

    fn start_networker(&mut self, g: usize, ctx: &mut Ctx<'_, Ev>) {
        if !self.groups[g].networker_busy && !self.nic.iface(self.net_iface).rx[g].is_empty() {
            self.groups[g].networker_busy = true;
            ctx.probe().busy_i("networker", g, true);
            ctx.schedule_in(params::HOST_NET_PER_PACKET, Ev::NetworkerDone(g));
        }
    }

    fn disp_item_cost(item: &DispItem) -> SimDuration {
        match item {
            DispItem::NewTask(_) => params::HOST_DISPATCH_ENQUEUE,
            DispItem::Done { .. } | DispItem::Preempted { .. } => params::HOST_DISPATCH_COMPLETE,
            DispItem::Emit(_) => params::HOST_DISPATCH_ASSIGN,
            // A heartbeat is a single timestamp store on the tracker: charge
            // it like a completion notification (queue-op scale).
            DispItem::Heartbeat { .. } => params::HOST_DISPATCH_COMPLETE,
        }
    }

    fn start_dispatcher(&mut self, g: usize, ctx: &mut Ctx<'_, Ev>) {
        let group = &mut self.groups[g];
        if !group.disp_busy {
            if let Some(item) = group.disp_queue.front() {
                group.disp_busy = true;
                let cost = Self::disp_item_cost(item);
                ctx.probe().busy_i("dispatcher", g, true);
                ctx.schedule_in(cost, Ev::DispDone(g));
            }
        }
    }

    fn worker_poll(&mut self, g: usize, local: usize, ctx: &mut Ctx<'_, Ev>) {
        if self.groups[g].workers[local].running.is_some() {
            return;
        }
        {
            let gw = g * self.cfg.workers_per_group + local;
            let now = ctx.now();
            if ctx.faults().worker_crashed(gw, now) {
                return; // dead cores never poll again
            }
            if let Some(resume) = ctx.faults().worker_stalled_until(gw, now) {
                ctx.schedule_at(resume, Ev::WorkerPoll(g, local));
                return;
            }
        }
        let Some(task) = self.groups[g].workers[local].inbox.pop_front() else {
            self.groups[g].workers[local].core.set_idle(ctx.now());
            let global = g * self.cfg.workers_per_group + local;
            ctx.probe().busy_i("worker", global, false);
            return;
        };
        let global = g * self.cfg.workers_per_group + local;
        let depth = self.groups[g].workers[local].inbox.len();
        ctx.probe().mark(task.req_id, "path.3_worker_start");
        ctx.probe().busy_i("worker", global, true);
        ctx.probe().depth_i("worker.inbox", global, depth);
        let ctx_op = self.ctx_pool.begin(task.req_id);
        let mut overhead = ContextPool::op_cost(ctx_op, &self.ctx_costs, &self.host);
        // Per-dispatch grants stamped by the group's policy survive the
        // shared-memory hop intact; `Inherit` reproduces the static timer.
        let run = match task.preempt.resolve(self.cfg.time_slice) {
            Some(slice) => {
                overhead += TimerMode::DuneMapped.set_cost(&self.host);
                task.remaining.min(slice)
            }
            None => task.remaining,
        };
        let slow = {
            let now = ctx.now();
            ctx.faults().worker_slowdown(global, now)
        };
        let wall = if slow > 1.0 {
            scale_duration(overhead + run, slow)
        } else {
            overhead + run
        };
        let worker = &mut self.groups[g].workers[local];
        worker.core.set_busy(ctx.now());
        let end = ctx.now() + wall;
        let gen = worker.timer.arm(end);
        worker.running = Some((task, run));
        ctx.schedule_at(
            end,
            Ev::WorkerRunEnd {
                group: g,
                local,
                gen,
            },
        );
    }

    fn worker_run_end(&mut self, g: usize, local: usize, gen: u64, ctx: &mut Ctx<'_, Ev>) {
        if !self.groups[g].workers[local].timer.accept(gen) {
            return;
        }
        let (task, run) = self.groups[g].workers[local]
            .running
            .take()
            .expect("running");
        let now = ctx.now();
        if ctx
            .faults()
            .worker_crashed(g * self.cfg.workers_per_group + local, now)
        {
            // Died mid-request: the task is stranded, no Done ever reaches
            // the group dispatcher, and its cap-1 slot stays occupied.
            self.ctx_pool.discard(task.req_id);
            self.stranded += 1;
            ctx.probe().count("worker.stranded");
            return;
        }
        if task.remaining <= run {
            ctx.probe().count("worker.completed");
            ctx.probe().mark(task.req_id, "path.4_worker_done");
            let resp_built = now + params::WORKER_TX_COST;
            let resp = FrameSpec {
                src_mac: AddressPlan::dispatcher_mac(),
                dst_mac: AddressPlan::client_mac(),
                src: AddressPlan::worker_ep(g * self.cfg.workers_per_group + local),
                dst: AddressPlan::client_ep(),
                msg: MsgRepr {
                    kind: MsgKind::Response,
                    req_id: task.req_id,
                    client_id: task.client_id,
                    service_ns: task.service.as_nanos(),
                    remaining_ns: 0,
                    sent_at_ns: task.sent_at.as_nanos(),
                    body_len: task.body_len,
                    grant_code: 0,
                },
            };
            let depart = resp_built + self.nic.dma_latency;
            self.send_response(&resp, depart, ctx);
            self.ctx_pool.discard(task.req_id);
            self.groups[g].workers[local].core.requests_run += 1;
            ctx.schedule_in(
                params::HOST_QUEUE_HOP,
                Ev::DispPush(
                    g,
                    DispItem::Done {
                        local_worker: local,
                        req_id: task.req_id,
                    },
                ),
            );
            ctx.schedule_at(resp_built, Ev::WorkerPoll(g, local));
        } else {
            let after = task.after_preemption(run);
            if self.ctx_pool.is_saved(after.req_id) {
                // A retransmitted copy of this request is already suspended:
                // kill this copy and free the worker slot via Done.
                ctx.probe().count("worker.dup_killed");
                let free_at = now + TimerMode::DuneMapped.deliver_cost(&self.host);
                ctx.schedule_at(
                    free_at + params::HOST_QUEUE_HOP,
                    Ev::DispPush(
                        g,
                        DispItem::Done {
                            local_worker: local,
                            req_id: after.req_id,
                        },
                    ),
                );
                ctx.schedule_at(free_at, Ev::WorkerPoll(g, local));
                return;
            }
            self.preemptions += 1;
            ctx.probe().count("worker.preempted");
            self.ctx_pool.save(after.req_id);
            let free_at = now
                + TimerMode::DuneMapped.deliver_cost(&self.host)
                + self.ctx_costs.save(&self.host);
            ctx.schedule_at(
                free_at + params::HOST_QUEUE_HOP,
                Ev::DispPush(
                    g,
                    DispItem::Preempted {
                        local_worker: local,
                        task: after,
                    },
                ),
            );
            ctx.schedule_at(free_at, Ev::WorkerPoll(g, local));
        }
    }

    /// Imbalance across groups: max/mean admitted requests.
    fn imbalance(&self) -> f64 {
        let max = self.groups.iter().map(|g| g.admitted).max().unwrap_or(0) as f64;
        let mean =
            self.groups.iter().map(|g| g.admitted).sum::<u64>() as f64 / self.groups.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

impl Model for MultiShinjuku {
    type Event = Ev;

    fn check_invariants(&self, now: SimTime, inv: &mut sim_core::InvariantChecker) {
        self.nic.check_invariants(now, inv);
        self.client.check_invariants(now, inv);
    }

    fn handle(&mut self, event: Ev, ctx: &mut Ctx<'_, Ev>) {
        match event {
            Ev::ClientSend => {
                if ctx.now() >= self.horizon {
                    return;
                }
                let spec = self.client.make_request(ctx.now());
                let req_id = spec.msg.req_id;
                ctx.probe().count("client.sent");
                ctx.probe().mark(req_id, "path.0_client_send");
                self.send_request(&spec, ctx);
                if let Some((attempt, timeout)) = self.client.arm_timeout(req_id) {
                    ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                }
                let gap = self.client.next_gap();
                ctx.schedule_in(gap, Ev::ClientSend);
            }
            Ev::WireToNic(bytes) => {
                let Ok(parsed) = ParsedFrame::parse(&bytes) else {
                    return;
                };
                if let Some(d) = self.nic.steer(&parsed) {
                    ctx.probe().count("nic.rx_frames");
                    self.nic.iface_mut(d.iface).rx[d.queue].push(ctx.now(), bytes);
                    let depth = self.nic.iface(d.iface).rx[d.queue].len();
                    ctx.probe().depth_i("networker.ring", d.queue, depth);
                    self.start_networker(d.queue, ctx);
                }
            }
            Ev::NetworkerDone(g) => {
                self.groups[g].networker_busy = false;
                ctx.probe().busy_i("networker", g, false);
                ctx.probe().count("networker.parsed");
                if let Some(frame) = self.nic.iface_mut(self.net_iface).rx[g].pop() {
                    if let Ok(parsed) = ParsedFrame::parse(&frame.data) {
                        if parsed.msg.kind == MsgKind::Request {
                            let m = parsed.msg;
                            ctx.probe().mark(m.req_id, "path.1_host_net");
                            let task = Task::new(
                                m.req_id,
                                m.client_id,
                                SimDuration::from_nanos(m.service_ns),
                                SimTime::from_nanos(m.sent_at_ns),
                                ctx.now(),
                                m.body_len,
                            );
                            ctx.schedule_in(
                                params::HOST_QUEUE_HOP,
                                Ev::DispPush(g, DispItem::NewTask(task)),
                            );
                        }
                    }
                }
                self.start_networker(g, ctx);
            }
            Ev::DispPush(g, item) => {
                self.groups[g].disp_queue.push_back(item);
                let depth = self.groups[g].disp_queue.len();
                ctx.probe().depth_i("dispatcher.inbox", g, depth);
                self.start_dispatcher(g, ctx);
            }
            Ev::DispDone(g) => {
                self.groups[g].disp_busy = false;
                ctx.probe().busy_i("dispatcher", g, false);
                if let Some(item) = self.groups[g].disp_queue.pop_front() {
                    let now = ctx.now();
                    let assignments = match item {
                        DispItem::NewTask(task) => {
                            ctx.probe().mark(task.req_id, "path.2_dispatch");
                            match self.groups[g].dispatcher.offer(now, task) {
                                nicsched::AdmitOutcome::Admitted(v) => {
                                    self.groups[g].admitted += 1;
                                    ctx.probe().count("disp.enqueue");
                                    v
                                }
                                nicsched::AdmitOutcome::Shed { nack } => {
                                    ctx.probe().count("disp.shed");
                                    if nack {
                                        self.nacks += 1;
                                        ctx.probe().count("disp.nack");
                                        let frame = FrameSpec {
                                            src_mac: AddressPlan::dispatcher_mac(),
                                            dst_mac: AddressPlan::client_mac(),
                                            src: AddressPlan::dispatcher_ep(),
                                            dst: AddressPlan::client_ep(),
                                            msg: MsgRepr {
                                                kind: MsgKind::Nack,
                                                req_id: task.req_id,
                                                client_id: task.client_id,
                                                service_ns: task.service.as_nanos(),
                                                remaining_ns: 0,
                                                sent_at_ns: task.sent_at.as_nanos(),
                                                body_len: 0,
                                                grant_code: 0,
                                            },
                                        };
                                        let depart = now + self.nic.dma_latency;
                                        self.send_response(&frame, depart, ctx);
                                    }
                                    Vec::new()
                                }
                            }
                        }
                        DispItem::Done {
                            local_worker,
                            req_id,
                        } => {
                            ctx.probe().count("disp.done");
                            self.groups[g].dispatcher.on_done(now, local_worker, req_id)
                        }
                        DispItem::Preempted { local_worker, task } => {
                            ctx.probe().count("disp.preempt_requeue");
                            ctx.probe().mark(task.req_id, "path.2_dispatch");
                            self.groups[g]
                                .dispatcher
                                .on_preempted(now, local_worker, task)
                        }
                        DispItem::Emit(a) => {
                            ctx.probe().count("disp.assign");
                            ctx.schedule_in(
                                params::HOST_QUEUE_HOP,
                                Ev::WorkerTask(g, a.worker, a.task),
                            );
                            Vec::new()
                        }
                        DispItem::Heartbeat { local_worker } => {
                            ctx.probe().count("disp.heartbeat");
                            self.groups[g].dispatcher.on_heartbeat(now, local_worker)
                        }
                    };
                    for a in assignments.into_iter().rev() {
                        self.groups[g].disp_queue.push_front(DispItem::Emit(a));
                    }
                    let central = self.groups[g].dispatcher.queue_len();
                    ctx.probe().depth_i("dispatcher.central", g, central);
                }
                self.start_dispatcher(g, ctx);
            }
            Ev::WorkerTask(g, local, task) => {
                {
                    let gw = g * self.cfg.workers_per_group + local;
                    let now = ctx.now();
                    if ctx.faults().worker_crashed(gw, now) {
                        // Delivered into a dead core: stranded on arrival.
                        self.ctx_pool.discard(task.req_id);
                        self.stranded += 1;
                        ctx.probe().count("worker.stranded");
                        return;
                    }
                }
                self.groups[g].workers[local].inbox.push_back(task);
                if self.groups[g].workers[local].running.is_none() {
                    ctx.schedule_now(Ev::WorkerPoll(g, local));
                }
            }
            Ev::WorkerPoll(g, local) => self.worker_poll(g, local, ctx),
            Ev::WorkerRunEnd { group, local, gen } => self.worker_run_end(group, local, gen, ctx),
            Ev::ClientResp(bytes) => {
                let Ok(parsed) = ParsedFrame::parse(&bytes) else {
                    return;
                };
                if parsed.msg.kind == MsgKind::Nack {
                    ctx.probe().count("client.nacks");
                    let req_id = parsed.msg.req_id;
                    if let TimeoutOutcome::Retry {
                        frame,
                        attempt,
                        timeout,
                    } = self.client.on_nack(ctx.now(), req_id)
                    {
                        ctx.probe().count("client.retries");
                        self.send_request(&frame, ctx);
                        ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                    }
                    return;
                }
                ctx.probe().count("client.responses");
                ctx.probe().finish(parsed.msg.req_id, "path.5_response");
                self.client.on_response(ctx.now(), &parsed);
            }
            Ev::ClientTimeout { req_id, attempt } => {
                if let TimeoutOutcome::Retry {
                    frame,
                    attempt,
                    timeout,
                } = self.client.on_timeout(ctx.now(), req_id, attempt)
                {
                    ctx.probe().count("client.retries");
                    self.send_request(&frame, ctx);
                    ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                }
            }
            Ev::Heartbeat(g, local) => {
                let now = ctx.now();
                if now >= self.horizon {
                    return;
                }
                let Some(policy) = self.recovery else {
                    return;
                };
                let global = g * self.cfg.workers_per_group + local;
                let silenced =
                    ctx.faults().worker_down(global, now) || ctx.faults().feedback_blackout(now);
                // Worker side: lease renewal crosses host shared memory —
                // a silenced worker cannot renew.
                if !silenced {
                    ctx.schedule_in(
                        params::HOST_QUEUE_HOP,
                        Ev::DispPush(
                            g,
                            DispItem::Heartbeat {
                                local_worker: local,
                            },
                        ),
                    );
                }
                // Group-dispatcher side: expire leases and re-dispatch
                // orphans within this group on the same tick.
                let recovered = self.groups[g].dispatcher.check_health(now);
                if !recovered.is_empty() {
                    ctx.probe().count("recovery.redispatch");
                }
                for a in recovered {
                    ctx.schedule_now(Ev::DispPush(g, DispItem::Emit(a)));
                }
                ctx.schedule_in(policy.heartbeat, Ev::Heartbeat(g, local));
            }
        }
    }
}

/// Outcome of a multi-dispatcher run: standard metrics plus the group
/// imbalance ratio (max/mean requests per group; 1.0 = perfectly even).
#[derive(Debug, Clone)]
pub struct MultiRunMetrics {
    /// Standard run metrics.
    pub metrics: RunMetrics,
    /// Max/mean admitted requests across groups.
    pub imbalance: f64,
}

/// Run a multi-dispatcher Shinjuku simulation with stage-level
/// observability (per-group stages are indexed, e.g. `dispatcher[1]`).
pub fn run_probed(
    spec: WorkloadSpec,
    cfg: MultiShinjukuConfig,
    probe: ProbeConfig,
) -> MultiRunMetrics {
    run_resilient_probed(spec, cfg, probe, ResilienceConfig::default())
}

/// Run a multi-dispatcher Shinjuku with fault injection, client retries
/// and per-group admission control. The staleness-fallback settings in
/// `res` are ignored: each group's dispatcher sits one queue hop from its
/// private workers, so there is no cross-group feedback to go stale — the
/// RSS spray across groups already *is* the uninformed fallback.
pub fn run_resilient_probed(
    spec: WorkloadSpec,
    cfg: MultiShinjukuConfig,
    probe: ProbeConfig,
    res: ResilienceConfig,
) -> MultiRunMetrics {
    let mut engine = Engine::new(MultiShinjuku::new(spec, cfg, res));
    engine.set_probe(Probe::new(probe));
    engine.set_invariants(crate::common::checker_for(&res));
    if res.is_active() {
        engine.set_faults(FaultPlan::new(res.faults, spec.seed ^ FAULT_SEED_SALT));
    }
    engine.schedule_at(SimTime::ZERO, Ev::ClientSend);
    if engine.model().recovery.is_some() {
        for g in 0..cfg.groups {
            for local in 0..cfg.workers_per_group {
                engine.schedule_at(SimTime::ZERO, Ev::Heartbeat(g, local));
            }
        }
    }
    engine.run_until(spec.horizon());
    let horizon = spec.horizon();
    let model = engine.model();
    let all_workers: Vec<&Worker> = model.groups.iter().flat_map(|g| g.workers.iter()).collect();
    let util = all_workers
        .iter()
        .map(|w| w.core.utilization(horizon))
        .sum::<f64>()
        / all_workers.len() as f64;
    let imbalance = model.imbalance();
    let ring_dropped = model.nic.total_drops();
    let shed: u64 = model.groups.iter().map(|g| g.dispatcher.stats.shed).sum();
    let mut metrics = assemble_metrics(&model.client, ring_dropped, model.preemptions, util);
    let fm = &mut metrics.faults;
    fm.req_link_lost = model.req_lost;
    fm.resp_link_lost = model.resp_lost;
    fm.ring_dropped = ring_dropped;
    fm.stranded = model.stranded;
    fm.shed = shed;
    fm.nacks = model.nacks;
    if model.recovery.is_some() {
        for group in &model.groups {
            fm.recovered += group.dispatcher.stats.recovered;
            fm.recovery_duplicates += group.dispatcher.stats.late_duplicates;
            if let Some(h) = group.dispatcher.health() {
                fm.suspicions += h.stats.suspicions;
                fm.readmissions += h.stats.readmissions;
            }
        }
    }
    metrics.dropped = ring_dropped + fm.link_lost() + shed;
    if probe.enabled {
        metrics.stages = Some(engine.probe_mut().report(horizon));
    }
    crate::common::close_invariants(engine.take_invariants(), horizon, &metrics);
    MultiRunMetrics { metrics, imbalance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::ServiceDist;

    fn run(spec: WorkloadSpec, cfg: MultiShinjukuConfig) -> MultiRunMetrics {
        run_probed(spec, cfg, ProbeConfig::disabled())
    }

    fn quick_spec(rps: f64, dist: ServiceDist) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: rps,
            dist,
            body_len: 64,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(15),
            seed: 42,
        }
    }

    #[test]
    fn single_group_acts_like_vanilla_shinjuku() {
        let spec = quick_spec(300_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let multi = run(
            spec,
            MultiShinjukuConfig {
                groups: 1,
                workers_per_group: 3,
                time_slice: None,
                policy: PolicySpec::FCFS,
            },
        );
        let vanilla = crate::shinjuku::run_probed(
            spec,
            crate::shinjuku::ShinjukuConfig {
                workers: 3,
                time_slice: None,
                policy: PolicySpec::FCFS,
            },
            ProbeConfig::disabled(),
        );
        assert_eq!(multi.metrics.completed, vanilla.completed);
        assert_eq!(multi.metrics.p99, vanilla.p99);
        assert!((multi.imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_dispatchers_break_the_single_dispatcher_cap() {
        // 1us requests, far beyond one dispatcher's ~4-5M/s: with four
        // dispatcher groups the aggregate scales well past it.
        let spec = quick_spec(9_000_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
        let one = run(spec, MultiShinjukuConfig::split(32, 1));
        let four = run(spec, MultiShinjukuConfig::split(32, 4));
        assert!(
            four.metrics.achieved_rps > one.metrics.achieved_rps * 1.3,
            "4 dispatchers ({:.1}M) should outscale 1 ({:.1}M)",
            four.metrics.achieved_rps / 1e6,
            one.metrics.achieved_rps / 1e6
        );
    }

    #[test]
    fn rss_across_groups_creates_imbalance() {
        let spec = quick_spec(500_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(spec, MultiShinjukuConfig::split(16, 4));
        assert!(
            m.imbalance > 1.0,
            "RSS group shares are never perfectly even"
        );
        assert!(
            m.imbalance < 2.0,
            "but not catastrophic at uniform flows: {}",
            m.imbalance
        );
    }

    #[test]
    fn dispatch_overhead_fraction_matches_paper_accounting() {
        // §2.2: 1 dispatcher + 11 workers -> 1/12 = 8.33% wasted.
        let cfg = MultiShinjukuConfig {
            groups: 1,
            workers_per_group: 11,
            time_slice: None,
            policy: PolicySpec::FCFS,
        };
        assert!((cfg.dispatch_overhead_fraction() - 1.0 / 12.0).abs() < 1e-9);
        // 4 groups of 11: still 8.33% of the machine.
        let cfg4 = MultiShinjukuConfig {
            groups: 4,
            workers_per_group: 11,
            time_slice: None,
            policy: PolicySpec::FCFS,
        };
        assert!((cfg4.dispatch_overhead_fraction() - 1.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cores left for workers")]
    fn split_needs_worker_cores() {
        let _ = MultiShinjukuConfig::split(4, 4);
    }

    #[test]
    fn loss_and_crash_accounts_for_every_request() {
        let spec = quick_spec(400_000.0, ServiceDist::paper_bimodal());
        // Crash one worker of group 1 (global index = workers_per_group + 0).
        let res = ResilienceConfig::loss_and_crash(
            MultiShinjukuConfig::split(16, 2).workers_per_group,
            SimTime::ZERO + SimDuration::from_millis(10),
        );
        let run = || {
            run_resilient_probed(
                spec,
                MultiShinjukuConfig::split(16, 2),
                ProbeConfig::disabled(),
                res,
            )
        };
        let m = run();
        let f = &m.metrics.faults;
        assert_eq!(f.unaccounted(), 0, "request ledger leaks: {f:?}");
        assert!(f.in_pipe() < 200, "attempt residue beyond pipeline: {f:?}");
        assert!(f.retries > 0, "loss never triggered a retry");
        assert!(f.stranded >= 1, "crash stranded nothing: {f:?}");
        assert!(
            m.metrics.completed > 1_000,
            "goodput collapsed: {}",
            m.metrics.row()
        );
        let b = run();
        assert_eq!(m.metrics.faults, b.metrics.faults);
        assert_eq!(m.metrics.p99, b.metrics.p99);
    }

    #[test]
    fn deterministic() {
        let spec = quick_spec(400_000.0, ServiceDist::paper_bimodal());
        let a = run(spec, MultiShinjukuConfig::split(16, 2));
        let b = run(spec, MultiShinjukuConfig::split(16, 2));
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.metrics.p99, b.metrics.p99);
        assert_eq!(a.imbalance, b.imbalance);
    }
}
