//! The unified run API: one trait over every server assembly.
//!
//! Historically each assembly exposed its own free `run(spec, XConfig)`
//! function, so sweep drivers and experiments had to be written per
//! system. [`ServerSystem`] replaces that with a single entry point —
//! any config type implements it, and [`SystemConfig`] names every
//! assembly in one enum for table-driven experiment code:
//!
//! ```
//! use sim_core::{ProbeConfig, SimDuration};
//! use systems::{ServerSystem, SystemConfig};
//! use systems::offload::OffloadConfig;
//! use workload::{ServiceDist, WorkloadSpec};
//!
//! let mut spec = WorkloadSpec::new(50_000.0, ServiceDist::Fixed(SimDuration::from_micros(2)));
//! spec.measure = SimDuration::from_millis(2);
//! let cfg = SystemConfig::Offload(OffloadConfig::paper(4, 4));
//! let m = cfg.run(spec, ProbeConfig::enabled());
//! assert!(m.stages.is_some(), "probing attaches a stage report");
//! ```

use sim_core::ProbeConfig;
use workload::{RunMetrics, WorkloadSpec};

use crate::baseline::BaselineConfig;
use crate::multi_shinjuku::MultiShinjukuConfig;
use crate::offload::OffloadConfig;
use crate::rpcvalet::RpcValetConfig;
use crate::shinjuku::ShinjukuConfig;

/// A complete simulated server that can execute a workload.
///
/// Implemented by every assembly's config type; `probe` selects how much
/// observability to pay for ([`ProbeConfig::disabled()`] is bit-identical
/// to the un-probed path).
pub trait ServerSystem {
    /// Short stable name for tables and CSV labels.
    fn name(&self) -> &'static str;

    /// Simulate `spec` on this system and report client-side metrics
    /// (plus a [`sim_core::StageReport`] when `probe` is enabled).
    fn run(&self, spec: WorkloadSpec, probe: ProbeConfig) -> RunMetrics;
}

impl ServerSystem for OffloadConfig {
    fn name(&self) -> &'static str {
        "shinjuku-offload"
    }

    fn run(&self, spec: WorkloadSpec, probe: ProbeConfig) -> RunMetrics {
        crate::offload::run_probed(spec, *self, probe)
    }
}

impl ServerSystem for ShinjukuConfig {
    fn name(&self) -> &'static str {
        "shinjuku"
    }

    fn run(&self, spec: WorkloadSpec, probe: ProbeConfig) -> RunMetrics {
        crate::shinjuku::run_probed(spec, *self, probe)
    }
}

impl ServerSystem for BaselineConfig {
    fn name(&self) -> &'static str {
        match self.kind {
            crate::baseline::BaselineKind::Rss => "rss",
            crate::baseline::BaselineKind::RssStealing => "rss-stealing",
            crate::baseline::BaselineKind::FlowDirector => "flow-director",
            crate::baseline::BaselineKind::ElasticRss => "elastic-rss",
        }
    }

    fn run(&self, spec: WorkloadSpec, probe: ProbeConfig) -> RunMetrics {
        crate::baseline::run_probed(spec, *self, probe)
    }
}

impl ServerSystem for RpcValetConfig {
    fn name(&self) -> &'static str {
        "rpcvalet"
    }

    fn run(&self, spec: WorkloadSpec, probe: ProbeConfig) -> RunMetrics {
        crate::rpcvalet::run_probed(spec, *self, probe)
    }
}

impl ServerSystem for MultiShinjukuConfig {
    fn name(&self) -> &'static str {
        "multi-shinjuku"
    }

    fn run(&self, spec: WorkloadSpec, probe: ProbeConfig) -> RunMetrics {
        crate::multi_shinjuku::run_probed(spec, *self, probe).metrics
    }
}

/// Every assembly in the repository, behind one name.
///
/// Lets experiment drivers hold heterogeneous systems in a single
/// `Vec<SystemConfig>` and sweep them uniformly.
#[derive(Debug, Clone, Copy)]
pub enum SystemConfig {
    /// Shinjuku-Offload: the paper's NIC-resident scheduler.
    Offload(OffloadConfig),
    /// Vanilla host Shinjuku.
    Shinjuku(ShinjukuConfig),
    /// A run-to-completion baseline (RSS / stealing / Flow Director /
    /// Elastic RSS).
    Baseline(BaselineConfig),
    /// RPCValet-style NI-integrated hardware queue.
    RpcValet(RpcValetConfig),
    /// Multi-dispatcher Shinjuku scale-out.
    MultiShinjuku(MultiShinjukuConfig),
}

impl ServerSystem for SystemConfig {
    fn name(&self) -> &'static str {
        match self {
            SystemConfig::Offload(c) => c.name(),
            SystemConfig::Shinjuku(c) => c.name(),
            SystemConfig::Baseline(c) => c.name(),
            SystemConfig::RpcValet(c) => c.name(),
            SystemConfig::MultiShinjuku(c) => c.name(),
        }
    }

    fn run(&self, spec: WorkloadSpec, probe: ProbeConfig) -> RunMetrics {
        match self {
            SystemConfig::Offload(c) => c.run(spec, probe),
            SystemConfig::Shinjuku(c) => c.run(spec, probe),
            SystemConfig::Baseline(c) => c.run(spec, probe),
            SystemConfig::RpcValet(c) => c.run(spec, probe),
            SystemConfig::MultiShinjuku(c) => c.run(spec, probe),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineKind;
    use nicsched::PolicyKind;
    use sim_core::SimDuration;
    use workload::ServiceDist;

    fn quick_spec() -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: 100_000.0,
            dist: ServiceDist::Fixed(SimDuration::from_micros(5)),
            body_len: 64,
            warmup: SimDuration::from_millis(1),
            measure: SimDuration::from_millis(5),
            seed: 42,
        }
    }

    fn all_systems() -> Vec<SystemConfig> {
        vec![
            SystemConfig::Offload(OffloadConfig::paper(4, 4)),
            SystemConfig::Shinjuku(ShinjukuConfig::paper(4)),
            SystemConfig::Baseline(BaselineConfig {
                workers: 4,
                kind: BaselineKind::Rss,
            }),
            SystemConfig::RpcValet(RpcValetConfig { workers: 4 }),
            SystemConfig::MultiShinjuku(MultiShinjukuConfig {
                groups: 2,
                workers_per_group: 2,
                time_slice: None,
                policy: PolicyKind::Fcfs,
            }),
        ]
    }

    #[test]
    fn every_assembly_runs_through_the_trait() {
        for sys in all_systems() {
            let m = sys.run(quick_spec(), ProbeConfig::disabled());
            assert!(
                m.completed > 100,
                "{} completed {}",
                sys.name(),
                m.completed
            );
            assert!(
                m.stages.is_none(),
                "{}: disabled probe attaches nothing",
                sys.name()
            );
        }
    }

    #[test]
    fn every_assembly_reports_stages_when_probed() {
        for sys in all_systems() {
            let m = sys.run(quick_spec(), ProbeConfig::enabled());
            let stages = m
                .stages
                .unwrap_or_else(|| panic!("{}: probed run must report stages", sys.name()));
            assert!(!stages.hops.is_empty(), "{}: no hops recorded", sys.name());
            assert!(
                !stages.stages.is_empty(),
                "{}: no stages recorded",
                sys.name()
            );
            assert!(
                stages.counter("client.sent") > 0 && stages.counter("client.responses") > 0,
                "{}: client counters missing",
                sys.name()
            );
            assert!(
                stages.chain_hops().count() > 0,
                "{}: request path hops missing",
                sys.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_systems().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }

    #[test]
    fn deprecated_shims_match_the_trait() {
        let spec = quick_spec();
        let cfg = OffloadConfig::paper(4, 4);
        #[allow(deprecated)]
        let old = crate::offload::run(spec, cfg);
        let new = cfg.run(spec, ProbeConfig::disabled());
        assert_eq!(old, new, "shim and trait must agree exactly");
    }
}
