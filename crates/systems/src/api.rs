//! The unified run API: one trait over every server assembly.
//!
//! Historically each assembly exposed its own free `run(spec, XConfig)`
//! function, so sweep drivers and experiments had to be written per
//! system. [`ServerSystem`] replaces that with a single entry point —
//! any config type implements it, and [`SystemConfig`] names every
//! assembly in one enum for table-driven experiment code:
//!
//! ```
//! use sim_core::{ProbeConfig, SimDuration};
//! use systems::{ServerSystem, SystemConfig};
//! use systems::offload::OffloadConfig;
//! use workload::{ServiceDist, WorkloadSpec};
//!
//! let mut spec = WorkloadSpec::new(50_000.0, ServiceDist::Fixed(SimDuration::from_micros(2)));
//! spec.measure = SimDuration::from_millis(2);
//! let cfg = SystemConfig::Offload(OffloadConfig::paper(4, 4));
//! let m = cfg.run(spec, ProbeConfig::enabled());
//! assert!(m.stages.is_some(), "probing attaches a stage report");
//! ```

use sim_core::ProbeConfig;
use workload::{RunMetrics, WorkloadSpec};

use crate::baseline::BaselineConfig;
use crate::common::ResilienceConfig;
use crate::multi_shinjuku::MultiShinjukuConfig;
use crate::offload::OffloadConfig;
use crate::rpcvalet::RpcValetConfig;
use crate::shinjuku::ShinjukuConfig;

/// A complete simulated server that can execute a workload.
///
/// Implemented by every assembly's config type; `probe` selects how much
/// observability to pay for ([`ProbeConfig::disabled()`] is bit-identical
/// to the un-probed path).
pub trait ServerSystem {
    /// Short stable name for tables and CSV labels.
    fn name(&self) -> &'static str;

    /// Simulate `spec` on this system and report client-side metrics
    /// (plus a [`sim_core::StageReport`] when `probe` is enabled).
    fn run(&self, spec: WorkloadSpec, probe: ProbeConfig) -> RunMetrics {
        self.run_resilient(spec, probe, ResilienceConfig::default())
    }

    /// Simulate `spec` with fault injection, client retries, admission
    /// control and staleness fallback per `res`. With
    /// [`ResilienceConfig::default()`] this is bit-identical to [`run`]
    /// (same event order, same RNG streams).
    ///
    /// Each assembly honours the subset of `res` that is architecturally
    /// meaningful for it (e.g. baselines have no central dispatcher, so
    /// admission and staleness fallback are no-ops there); fault and
    /// retry settings apply everywhere.
    ///
    /// [`run`]: ServerSystem::run
    fn run_resilient(
        &self,
        spec: WorkloadSpec,
        probe: ProbeConfig,
        res: ResilienceConfig,
    ) -> RunMetrics;
}

impl ServerSystem for OffloadConfig {
    fn name(&self) -> &'static str {
        "shinjuku-offload"
    }

    fn run_resilient(
        &self,
        spec: WorkloadSpec,
        probe: ProbeConfig,
        res: ResilienceConfig,
    ) -> RunMetrics {
        crate::offload::run_resilient_probed(spec, *self, probe, res)
    }
}

impl ServerSystem for ShinjukuConfig {
    fn name(&self) -> &'static str {
        "shinjuku"
    }

    fn run_resilient(
        &self,
        spec: WorkloadSpec,
        probe: ProbeConfig,
        res: ResilienceConfig,
    ) -> RunMetrics {
        crate::shinjuku::run_resilient_probed(spec, *self, probe, res)
    }
}

impl ServerSystem for BaselineConfig {
    fn name(&self) -> &'static str {
        match self.kind {
            crate::baseline::BaselineKind::Rss => "rss",
            crate::baseline::BaselineKind::RssStealing => "rss-stealing",
            crate::baseline::BaselineKind::FlowDirector => "flow-director",
            crate::baseline::BaselineKind::ElasticRss => "elastic-rss",
        }
    }

    fn run_resilient(
        &self,
        spec: WorkloadSpec,
        probe: ProbeConfig,
        res: ResilienceConfig,
    ) -> RunMetrics {
        crate::baseline::run_resilient_probed(spec, *self, probe, res)
    }
}

impl ServerSystem for RpcValetConfig {
    fn name(&self) -> &'static str {
        "rpcvalet"
    }

    fn run_resilient(
        &self,
        spec: WorkloadSpec,
        probe: ProbeConfig,
        res: ResilienceConfig,
    ) -> RunMetrics {
        crate::rpcvalet::run_resilient_probed(spec, *self, probe, res)
    }
}

impl ServerSystem for MultiShinjukuConfig {
    fn name(&self) -> &'static str {
        "multi-shinjuku"
    }

    fn run_resilient(
        &self,
        spec: WorkloadSpec,
        probe: ProbeConfig,
        res: ResilienceConfig,
    ) -> RunMetrics {
        crate::multi_shinjuku::run_resilient_probed(spec, *self, probe, res).metrics
    }
}

/// Every assembly in the repository, behind one name.
///
/// Lets experiment drivers hold heterogeneous systems in a single
/// `Vec<SystemConfig>` and sweep them uniformly.
#[derive(Debug, Clone, Copy)]
pub enum SystemConfig {
    /// Shinjuku-Offload: the paper's NIC-resident scheduler.
    Offload(OffloadConfig),
    /// Vanilla host Shinjuku.
    Shinjuku(ShinjukuConfig),
    /// A run-to-completion baseline (RSS / stealing / Flow Director /
    /// Elastic RSS).
    Baseline(BaselineConfig),
    /// RPCValet-style NI-integrated hardware queue.
    RpcValet(RpcValetConfig),
    /// Multi-dispatcher Shinjuku scale-out.
    MultiShinjuku(MultiShinjukuConfig),
}

impl ServerSystem for SystemConfig {
    fn name(&self) -> &'static str {
        match self {
            SystemConfig::Offload(c) => c.name(),
            SystemConfig::Shinjuku(c) => c.name(),
            SystemConfig::Baseline(c) => c.name(),
            SystemConfig::RpcValet(c) => c.name(),
            SystemConfig::MultiShinjuku(c) => c.name(),
        }
    }

    fn run_resilient(
        &self,
        spec: WorkloadSpec,
        probe: ProbeConfig,
        res: ResilienceConfig,
    ) -> RunMetrics {
        match self {
            SystemConfig::Offload(c) => c.run_resilient(spec, probe, res),
            SystemConfig::Shinjuku(c) => c.run_resilient(spec, probe, res),
            SystemConfig::Baseline(c) => c.run_resilient(spec, probe, res),
            SystemConfig::RpcValet(c) => c.run_resilient(spec, probe, res),
            SystemConfig::MultiShinjuku(c) => c.run_resilient(spec, probe, res),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineKind;
    use nicsched::PolicySpec;
    use sim_core::SimDuration;
    use workload::ServiceDist;

    fn quick_spec() -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: 100_000.0,
            dist: ServiceDist::Fixed(SimDuration::from_micros(5)),
            body_len: 64,
            warmup: SimDuration::from_millis(1),
            measure: SimDuration::from_millis(5),
            seed: 42,
        }
    }

    fn all_systems() -> Vec<SystemConfig> {
        vec![
            SystemConfig::Offload(OffloadConfig::paper(4, 4)),
            SystemConfig::Shinjuku(ShinjukuConfig::paper(4)),
            SystemConfig::Baseline(BaselineConfig {
                workers: 4,
                kind: BaselineKind::Rss,
            }),
            SystemConfig::RpcValet(RpcValetConfig { workers: 4 }),
            SystemConfig::MultiShinjuku(MultiShinjukuConfig {
                groups: 2,
                workers_per_group: 2,
                time_slice: None,
                policy: PolicySpec::FCFS,
            }),
        ]
    }

    #[test]
    fn every_assembly_runs_through_the_trait() {
        for sys in all_systems() {
            let m = sys.run(quick_spec(), ProbeConfig::disabled());
            assert!(
                m.completed > 100,
                "{} completed {}",
                sys.name(),
                m.completed
            );
            assert!(
                m.stages.is_none(),
                "{}: disabled probe attaches nothing",
                sys.name()
            );
        }
    }

    #[test]
    fn every_assembly_reports_stages_when_probed() {
        for sys in all_systems() {
            let m = sys.run(quick_spec(), ProbeConfig::enabled());
            let stages = m
                .stages
                .unwrap_or_else(|| panic!("{}: probed run must report stages", sys.name()));
            assert!(!stages.hops.is_empty(), "{}: no hops recorded", sys.name());
            assert!(
                !stages.stages.is_empty(),
                "{}: no stages recorded",
                sys.name()
            );
            assert!(
                stages.counter("client.sent") > 0 && stages.counter("client.responses") > 0,
                "{}: client counters missing",
                sys.name()
            );
            assert!(
                stages.chain_hops().count() > 0,
                "{}: request path hops missing",
                sys.name()
            );
        }
    }

    #[test]
    fn default_resilience_is_bit_identical_to_plain_run() {
        for sys in all_systems() {
            let plain = sys.run(quick_spec(), ProbeConfig::disabled());
            let res = sys.run_resilient(
                quick_spec(),
                ProbeConfig::disabled(),
                ResilienceConfig::default(),
            );
            assert_eq!(plain, res, "{}: inert faults perturbed the run", sys.name());
        }
    }

    #[test]
    fn every_assembly_closes_the_ledger_under_loss_and_crash() {
        use sim_core::SimTime;
        // Satellite: drop-accounting reconciliation across ALL assemblies —
        // 1% loss plus a mid-run worker crash, and every launched request
        // must still be accounted for.
        let res = ResilienceConfig::loss_and_crash(1, SimTime::ZERO + SimDuration::from_millis(3));
        for sys in all_systems() {
            let m = sys.run_resilient(quick_spec(), ProbeConfig::disabled(), res);
            let f = &m.faults;
            assert_eq!(
                f.unaccounted(),
                0,
                "{}: request ledger leaks: {f:?}",
                sys.name()
            );
            assert!(
                f.in_pipe() < 1200,
                "{}: attempt residue beyond pipeline: {f:?}",
                sys.name()
            );
            assert!(m.completed > 50, "{}: goodput collapsed", sys.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_systems().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }

    #[test]
    fn free_functions_match_the_trait() {
        let spec = quick_spec();
        let cfg = OffloadConfig::paper(4, 4);
        let free = crate::offload::run_probed(spec, cfg, ProbeConfig::disabled());
        let trait_run = cfg.run(spec, ProbeConfig::disabled());
        assert_eq!(
            free, trait_run,
            "free function and trait must agree exactly"
        );
    }

    #[test]
    fn equivalent_spec_strings_run_identically() {
        // Distinct spellings of the same policy (defaults spelled out,
        // durations in different units) are different interned handles
        // but must drive bit-identical runs through the registry.
        let pairs = [
            ("srpt", "srpt:gain=8,boost=200,floor=1us"),
            ("edf:deadline=50us", "edf:deadline=50000ns"),
            (
                "class-priority:cutoff=10us",
                "class-priority:cutoff=10000ns",
            ),
        ];
        for (a_str, b_str) in pairs {
            let a_spec = PolicySpec::parse(a_str).expect("valid spec");
            let b_spec = PolicySpec::parse(b_str).expect("valid spec");
            let mut cfg = ShinjukuConfig::paper(4);
            cfg.policy = a_spec;
            let a = cfg.run(quick_spec(), ProbeConfig::disabled());
            cfg.policy = b_spec;
            let b = cfg.run(quick_spec(), ProbeConfig::disabled());
            assert_eq!(a, b, "{a_str} vs {b_str}: runs must match");
        }
        // The same spelling (modulo whitespace) interns to the same
        // `Copy` handle, so configs compare equal.
        assert_eq!(
            PolicySpec::parse("fcfs").unwrap(),
            PolicySpec::parse(" fcfs ").unwrap()
        );
    }
}
