//! Run-to-completion baselines: the systems §2.1 surveys and §2.2 indicts.
//!
//! * **RSS / IX-style d-FCFS** — the NIC's Toeplitz hash spreads flows
//!   across per-core queues; each worker runs its queue to completion. No
//!   centralized view, no preemption: load imbalance and head-of-line
//!   blocking are structural.
//! * **ZygOS-style work stealing** — same steering, but an idle worker
//!   steals from the longest peer queue, paying a cross-core
//!   synchronization cost per steal.
//! * **MICA-style Flow Director** — exact-match rules pin each flow
//!   (client source port, standing in for MICA's key partition) to a
//!   specific core: EREW partitioning, still blind to load.
//!
//! All three share one assembly, differing only in NIC steering and the
//! stealing option — which is exactly the paper's framing: they delegate
//! scheduling to steering hardware and give up load awareness.

use bytes::Bytes;
use cpu_model::{ContextCosts, ContextPool, Core, CoreId, CoreSpec};
use net_wire::{FrameSpec, MsgKind, MsgRepr, ParsedFrame};
use nic_model::{FlowDirector, FlowKey, IfaceId, Link, NicDevice, QueueSteering, Rss};
use nicsched::params;
use sim_core::{Ctx, Engine, FaultPlan, Model, Probe, ProbeConfig, Rng, SimDuration, SimTime};
use workload::{RunMetrics, WorkloadSpec};

use crate::common::{
    assemble_metrics, scale_duration, AddressPlan, Client, ResilienceConfig, TimeoutOutcome,
    FAULT_SEED_SALT,
};

/// Elastic-RSS controller period: "provisions cores for applications on
/// the us scale" (§5.1(1)).
const ERSS_INTERVAL: SimDuration = SimDuration::from_micros(20);

/// Which baseline to assemble.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineKind {
    /// RSS steering, run-to-completion (IX-style d-FCFS).
    Rss,
    /// RSS steering plus ZygOS-style work stealing.
    RssStealing,
    /// Flow-Director exact-match steering (MICA-style EREW).
    FlowDirector,
    /// Elastic RSS (Rucker et al., APNet '19 — cited in §5.1(1)): RSS
    /// whose indirection table is rewritten at microsecond scale by a
    /// controller watching core utilization, provisioning just enough
    /// cores for the offered load.
    ElasticRss,
}

/// Configuration of a run-to-completion baseline.
#[derive(Clone, Copy, Debug)]
pub struct BaselineConfig {
    /// Worker cores, one RX queue each.
    pub workers: usize,
    /// Baseline flavour.
    pub kind: BaselineKind,
}

enum Ev {
    ClientSend,
    WireToNic(Bytes),
    WorkerPoll(usize),
    WorkerRunEnd(usize),
    ClientResp(Bytes),
    /// Elastic-RSS controller tick: re-provision the active core set.
    ErssTick,
    /// A client retransmit timer fires for one attempt of one request.
    ClientTimeout {
        req_id: u64,
        attempt: u32,
    },
}

struct Worker {
    core: Core,
    busy: bool,
    /// When the worker last went idle (for feedback-gap measurement).
    idle_since: Option<SimTime>,
}

struct Baseline {
    cfg: BaselineConfig,
    client: Client,
    horizon: SimTime,
    client_link: Link,
    server_link: Link,
    nic: NicDevice,
    iface: IfaceId,
    workers: Vec<Worker>,
    ctx_pool: ContextPool,
    ctx_costs: ContextCosts,
    host: CoreSpec,
    /// Successful steals (ZygOS mode).
    steals: u64,
    /// The message each busy worker is executing.
    pending: Vec<Option<MsgRepr>>,
    /// Elastic RSS: currently provisioned cores (prefix of the worker set).
    active: usize,
    /// Elastic RSS: busy time per worker at the last controller tick.
    last_busy: Vec<SimDuration>,
    /// Elastic RSS: time-weighted active-core count.
    active_tw: sim_core::stats::TimeWeighted,

    req_lost: u64,
    resp_lost: u64,
    stranded: u64,
}

impl Baseline {
    fn new(spec: WorkloadSpec, cfg: BaselineConfig, res: ResilienceConfig) -> Baseline {
        let mut master = Rng::new(spec.seed);
        let mut client = Client::new(spec, &mut master);
        if let Some(policy) = res.retry {
            client.enable_retries(policy);
        }
        let (client_link, server_link) = if res.faults.wire_loss > 0.0 {
            (
                Link::ten_gbe().with_loss(res.faults.wire_loss, master.fork()),
                Link::ten_gbe().with_loss(res.faults.wire_loss, master.fork()),
            )
        } else {
            (Link::ten_gbe(), Link::ten_gbe())
        };

        let steering = match cfg.kind {
            BaselineKind::Rss | BaselineKind::RssStealing | BaselineKind::ElasticRss => {
                QueueSteering::Rss(Rss::new(cfg.workers as u32))
            }
            BaselineKind::FlowDirector => {
                // Pin each client source port to a core: port p -> core
                // p % workers — MICA's key-partition steering.
                let mut table = FlowDirector::new(2048);
                for p in 0..1024u16 {
                    let mut src = AddressPlan::client_ep();
                    src.port = 7000 + p;
                    let key = FlowKey {
                        src,
                        dst: AddressPlan::dispatcher_ep(),
                    };
                    table.install(key, u32::from(p) % cfg.workers as u32);
                }
                QueueSteering::FlowDirector {
                    table,
                    fallback: Rss::new(cfg.workers as u32),
                }
            }
        };

        let mut nic = NicDevice::new(params::PCIE_DMA);
        let iface = nic.add_iface(AddressPlan::dispatcher_mac(), cfg.workers, 1024, steering);

        let t0 = SimTime::ZERO;
        let workers = (0..cfg.workers)
            .map(|w| Worker {
                core: Core::new(CoreId(w as u32), CoreSpec::host_x86(), t0),
                busy: false,
                idle_since: Some(t0),
            })
            .collect();

        Baseline {
            cfg,
            horizon: spec.horizon(),
            client,
            client_link,
            server_link,
            nic,
            iface,
            workers,
            ctx_pool: ContextPool::new(),
            ctx_costs: ContextCosts::default(),
            host: CoreSpec::host_x86(),
            steals: 0,
            pending: vec![None; cfg.workers],
            active: cfg.workers,
            last_busy: vec![SimDuration::ZERO; cfg.workers],
            active_tw: sim_core::stats::TimeWeighted::new(t0, cfg.workers as f64),
            req_lost: 0,
            resp_lost: 0,
            stranded: 0,
        }
    }

    /// Transmit a client→NIC frame over the (possibly lossy) request wire.
    fn send_request(&mut self, spec: &FrameSpec, ctx: &mut Ctx<'_, Ev>) {
        let payload_len = spec.frame_len() - net_wire::ethernet::HEADER_LEN;
        let bytes = spec.build();
        let now = ctx.now();
        if ctx.faults().burst_frame_lost(now) {
            self.req_lost += 1;
            ctx.probe().count("wire.req_lost");
            return;
        }
        match self.client_link.transmit_lossy(now, payload_len) {
            Some(arrive) => ctx.schedule_at(arrive, Ev::WireToNic(bytes)),
            None => {
                self.req_lost += 1;
                ctx.probe().count("wire.req_lost");
            }
        }
    }

    /// Transmit a server→client response starting at `depart`.
    fn send_response(&mut self, spec: &FrameSpec, depart: SimTime, ctx: &mut Ctx<'_, Ev>) {
        let payload_len = spec.frame_len() - net_wire::ethernet::HEADER_LEN;
        let bytes = spec.build();
        if ctx.faults().burst_frame_lost(depart) {
            self.resp_lost += 1;
            ctx.probe().count("wire.resp_lost");
            return;
        }
        match self.server_link.transmit_lossy(depart, payload_len) {
            Some(arrive) => ctx.schedule_at(arrive, Ev::ClientResp(bytes)),
            None => {
                self.resp_lost += 1;
                ctx.probe().count("wire.resp_lost");
            }
        }
    }

    /// Elastic-RSS controller (§5.1(1)): observe utilization of the active
    /// cores over the last window and grow/shrink the provisioned set,
    /// then rewrite the indirection table — the operation a programmable
    /// NIC performs in hardware.
    fn erss_tick(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        let window = ERSS_INTERVAL.as_secs_f64();
        let mut busy = 0.0;
        for (w, last) in self.last_busy.iter_mut().enumerate() {
            let total = self.workers[w].core.busy_time(now);
            busy += (total - *last).as_secs_f64();
            *last = total;
        }
        let util = busy / (window * self.active as f64);
        if util > 0.70 && self.active < self.cfg.workers {
            self.active += 1;
        } else if util < 0.35 && self.active > 1 {
            self.active -= 1;
        }
        self.active_tw.set(now, self.active as f64);
        let table: Vec<u32> = (0..128).map(|i| i % self.active as u32).collect();
        if let QueueSteering::Rss(rss) = &mut self.nic.iface_mut(self.iface).steering {
            rss.set_table(table);
        }
        if now < self.horizon {
            ctx.schedule_in(ERSS_INTERVAL, Ev::ErssTick);
        }
    }

    /// Pop work for worker `w`: own queue first, then (if stealing) the
    /// longest peer queue. Returns the frame and the steal overhead.
    fn take_work(&mut self, w: usize) -> Option<(Bytes, SimDuration)> {
        let iface = self.nic.iface_mut(self.iface);
        if let Some(frame) = iface.rx[w].pop() {
            return Some((frame.data, SimDuration::ZERO));
        }
        if self.cfg.kind != BaselineKind::RssStealing {
            return None;
        }
        // Steal from the longest peer queue.
        let victim = (0..iface.rx.len())
            .filter(|&q| q != w && !iface.rx[q].is_empty())
            .max_by_key(|&q| iface.rx[q].len())?;
        let frame = iface.rx[victim].pop()?;
        self.steals += 1;
        Some((frame.data, params::WORK_STEAL_COST))
    }

    fn worker_poll(&mut self, w: usize, ctx: &mut Ctx<'_, Ev>) {
        if self.workers[w].busy {
            return;
        }
        let now = ctx.now();
        if ctx.faults().worker_crashed(w, now) {
            return; // dead cores never poll again
        }
        if let Some(resume) = ctx.faults().worker_stalled_until(w, now) {
            ctx.schedule_at(resume, Ev::WorkerPoll(w));
            return;
        }
        let Some((data, steal_cost)) = self.take_work(w) else {
            self.workers[w].core.set_idle(ctx.now());
            ctx.probe().busy_i("worker", w, false);
            if self.workers[w].idle_since.is_none() {
                self.workers[w].idle_since = Some(ctx.now());
            }
            return;
        };
        if steal_cost > SimDuration::ZERO {
            ctx.probe().count("worker.steals");
        }
        let Ok(parsed) = ParsedFrame::parse(&data) else {
            ctx.schedule_now(Ev::WorkerPoll(w));
            return;
        };
        if parsed.msg.kind != MsgKind::Request {
            ctx.schedule_now(Ev::WorkerPoll(w));
            return;
        }
        let msg = parsed.msg;
        if let Some(idle_at) = self.workers[w].idle_since.take() {
            let gap = ctx.now().saturating_duration_since(idle_at);
            ctx.probe().hop("worker.idle_gap", gap);
        }
        ctx.probe().mark(msg.req_id, "path.1_worker_start");
        ctx.probe().busy_i("worker", w, true);
        // Run-to-completion: the worker is its own networking subsystem.
        let overhead = steal_cost
            + params::HOST_NET_PER_PACKET
            + ContextPool::op_cost(self.ctx_pool.begin(msg.req_id), &self.ctx_costs, &self.host);
        let service = SimDuration::from_nanos(msg.service_ns);
        // A slowdown window stretches wall time for this execution.
        let slow = {
            let now = ctx.now();
            ctx.faults().worker_slowdown(w, now)
        };
        let wall = if slow > 1.0 {
            scale_duration(overhead + service, slow)
        } else {
            overhead + service
        };
        let worker = &mut self.workers[w];
        worker.busy = true;
        worker.core.set_busy(ctx.now());
        // Stash the response identity in the event via a rebuilt frame at
        // completion time; carry the parsed message through worker state
        // instead of re-parsing.
        self.pending[w] = Some(msg);
        ctx.schedule_in(wall, Ev::WorkerRunEnd(w));
    }
}

impl Baseline {
    fn finish(&mut self, w: usize, ctx: &mut Ctx<'_, Ev>) {
        let msg = self.pending[w].take().expect("worker had work");
        {
            let now = ctx.now();
            if ctx.faults().worker_crashed(w, now) {
                // Died mid-request: no response ever leaves this core.
                self.ctx_pool.discard(msg.req_id);
                self.stranded += 1;
                ctx.probe().count("worker.stranded");
                return;
            }
        }
        ctx.probe().count("worker.completed");
        ctx.probe().mark(msg.req_id, "path.2_worker_done");
        let resp = FrameSpec {
            src_mac: AddressPlan::dispatcher_mac(),
            dst_mac: AddressPlan::client_mac(),
            src: AddressPlan::worker_ep(w),
            dst: AddressPlan::client_ep(),
            msg: MsgRepr {
                kind: MsgKind::Response,
                remaining_ns: 0,
                ..msg
            },
        };
        let built = ctx.now() + params::WORKER_TX_COST;
        let depart = built + self.nic.dma_latency;
        self.send_response(&resp, depart, ctx);
        self.ctx_pool.discard(msg.req_id);
        let worker = &mut self.workers[w];
        worker.busy = false;
        worker.core.requests_run += 1;
        ctx.schedule_at(built, Ev::WorkerPoll(w));
    }
}

impl Model for Baseline {
    type Event = Ev;

    fn check_invariants(&self, now: SimTime, inv: &mut sim_core::InvariantChecker) {
        self.nic.check_invariants(now, inv);
        self.client.check_invariants(now, inv);
    }

    fn handle(&mut self, event: Ev, ctx: &mut Ctx<'_, Ev>) {
        match event {
            Ev::ClientSend => {
                if ctx.now() >= self.horizon {
                    return;
                }
                let spec = self.client.make_request(ctx.now());
                let req_id = spec.msg.req_id;
                ctx.probe().count("client.sent");
                ctx.probe().mark(req_id, "path.0_client_send");
                self.send_request(&spec, ctx);
                if let Some((attempt, timeout)) = self.client.arm_timeout(req_id) {
                    ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                }
                let gap = self.client.next_gap();
                ctx.schedule_in(gap, Ev::ClientSend);
            }
            Ev::WireToNic(bytes) => {
                let Ok(parsed) = ParsedFrame::parse(&bytes) else {
                    return;
                };
                if let Some(d) = self.nic.steer(&parsed) {
                    ctx.probe().count("nic.rx_frames");
                    let now = ctx.now();
                    if self.cfg.kind != BaselineKind::RssStealing
                        && ctx.faults().worker_crashed(d.queue, now)
                    {
                        // Hash-steered to a dead core with nobody to steal
                        // it: the request is stranded in silicon.
                        self.stranded += 1;
                        ctx.probe().count("worker.stranded");
                        return;
                    }
                    self.nic.iface_mut(d.iface).rx[d.queue].push(ctx.now(), bytes);
                    let depth = self.nic.iface(d.iface).rx[d.queue].len();
                    ctx.probe().depth_i("worker.ring", d.queue, depth);
                    if !self.workers[d.queue].busy {
                        ctx.schedule_now(Ev::WorkerPoll(d.queue));
                    } else if self.cfg.kind == BaselineKind::RssStealing {
                        // Any idle worker may steal the new arrival.
                        if let Some(idle) = (0..self.workers.len()).find(|&i| !self.workers[i].busy)
                        {
                            ctx.schedule_now(Ev::WorkerPoll(idle));
                        }
                    }
                }
            }
            Ev::WorkerPoll(w) => self.worker_poll(w, ctx),
            Ev::WorkerRunEnd(w) => self.finish(w, ctx),
            Ev::ErssTick => self.erss_tick(ctx),
            Ev::ClientResp(bytes) => {
                if let Ok(parsed) = ParsedFrame::parse(&bytes) {
                    ctx.probe().count("client.responses");
                    ctx.probe().finish(parsed.msg.req_id, "path.3_response");
                    self.client.on_response(ctx.now(), &parsed);
                }
            }
            Ev::ClientTimeout { req_id, attempt } => {
                if let TimeoutOutcome::Retry {
                    frame,
                    attempt,
                    timeout,
                } = self.client.on_timeout(ctx.now(), req_id, attempt)
                {
                    ctx.probe().count("client.retries");
                    self.send_request(&frame, ctx);
                    ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                }
            }
        }
    }
}

/// Run a run-to-completion baseline with stage-level observability.
pub fn run_probed(spec: WorkloadSpec, cfg: BaselineConfig, probe: ProbeConfig) -> RunMetrics {
    run_with_elastic_probed(spec, cfg, probe).0
}

/// Run a baseline with fault injection and client retries. Baselines
/// have no central dispatcher: admission and staleness-fallback settings
/// in `res` are ignored (their per-worker rings already tail-drop, and
/// hash steering is the fallback the governor would degrade *to*).
/// NIC-side recovery (`res.recovery`) is likewise a no-op — with no
/// dispatcher there is no lease table to expire and no central queue to
/// re-dispatch from; orphaned requests here are recovered only by client
/// retries, which is exactly the contrast the `recovery` experiment
/// measures.
// simlint: allow(hook-conformance, reason=baselines have no dispatcher, so there is no lease table or detector to wire; recovery here is a documented no-op)
pub fn run_resilient_probed(
    spec: WorkloadSpec,
    cfg: BaselineConfig,
    probe: ProbeConfig,
    res: ResilienceConfig,
) -> RunMetrics {
    run_inner(spec, cfg, probe, res).0
}

/// Like [`run_probed`] (with probing disabled), also returning the
/// time-weighted mean number of provisioned cores (equal to
/// `cfg.workers` for the static kinds).
pub fn run_with_elastic(spec: WorkloadSpec, cfg: BaselineConfig) -> (RunMetrics, f64) {
    run_with_elastic_probed(spec, cfg, ProbeConfig::disabled())
}

/// Full-fat entry point: observability plus the elastic-provisioning
/// side channel.
pub fn run_with_elastic_probed(
    spec: WorkloadSpec,
    cfg: BaselineConfig,
    probe: ProbeConfig,
) -> (RunMetrics, f64) {
    run_inner(spec, cfg, probe, ResilienceConfig::default())
}

fn run_inner(
    spec: WorkloadSpec,
    cfg: BaselineConfig,
    probe: ProbeConfig,
    res: ResilienceConfig,
) -> (RunMetrics, f64) {
    let mut engine = Engine::new(Baseline::new(spec, cfg, res));
    engine.set_probe(Probe::new(probe));
    engine.set_invariants(crate::common::checker_for(&res));
    if res.is_active() {
        engine.set_faults(FaultPlan::new(res.faults, spec.seed ^ FAULT_SEED_SALT));
    }
    engine.schedule_at(SimTime::ZERO, Ev::ClientSend);
    if cfg.kind == BaselineKind::ElasticRss {
        engine.schedule_at(SimTime::ZERO + ERSS_INTERVAL, Ev::ErssTick);
    }
    engine.run_until(spec.horizon());
    let horizon = spec.horizon();
    let model = engine.model();
    let util = model
        .workers
        .iter()
        .map(|w| w.core.utilization(horizon))
        .sum::<f64>()
        / model.workers.len() as f64;
    let mean_active = model.active_tw.mean_until(horizon).max(1.0);
    let ring_dropped = model.nic.total_drops();
    let mut metrics = assemble_metrics(&model.client, ring_dropped, 0, util);
    let fm = &mut metrics.faults;
    fm.req_link_lost = model.req_lost;
    fm.resp_link_lost = model.resp_lost;
    fm.ring_dropped = ring_dropped;
    fm.stranded = model.stranded;
    metrics.dropped = ring_dropped + fm.link_lost();
    if probe.enabled {
        metrics.stages = Some(engine.probe_mut().report(horizon));
    }
    crate::common::close_invariants(engine.take_invariants(), horizon, &metrics);
    (
        metrics,
        if cfg.kind == BaselineKind::ElasticRss {
            mean_active
        } else {
            cfg.workers as f64
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::ServiceDist;

    fn run(spec: WorkloadSpec, cfg: BaselineConfig) -> RunMetrics {
        run_probed(spec, cfg, ProbeConfig::disabled())
    }

    fn quick_spec(rps: f64, dist: ServiceDist) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: rps,
            dist,
            body_len: 64,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(20),
            seed: 42,
        }
    }

    #[test]
    fn rss_light_load_is_fast_and_complete() {
        let spec = quick_spec(100_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::Rss,
            },
        );
        assert!(!m.saturated(0.05), "{}", m.row());
        // Run-to-completion has the fewest hops of any system: unloaded
        // latency should be small (single digit us + wire).
        assert!(m.p50 < SimDuration::from_micros(15), "p50 {}", m.p50);
    }

    #[test]
    fn rss_suffers_under_dispersion() {
        // The §2.2 story: without preemption, short requests get stuck
        // behind 100us requests; the p99 explodes relative to centralized
        // preemptive scheduling at the same load.
        let spec = quick_spec(300_000.0, ServiceDist::paper_bimodal());
        let rss = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::Rss,
            },
        );
        let shinjuku = crate::shinjuku::run_probed(
            spec,
            crate::shinjuku::ShinjukuConfig::paper(4),
            ProbeConfig::disabled(),
        );
        assert!(
            rss.p99 > shinjuku.p99 * 2,
            "rss p99 {} should dwarf shinjuku p99 {}",
            rss.p99,
            shinjuku.p99
        );
    }

    #[test]
    fn stealing_helps_imbalance() {
        let spec = quick_spec(500_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let rss = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::Rss,
            },
        );
        let zygos = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::RssStealing,
            },
        );
        assert!(
            zygos.p99 <= rss.p99,
            "stealing should not hurt the tail: zygos {} vs rss {}",
            zygos.p99,
            rss.p99
        );
    }

    #[test]
    fn flow_director_pins_flows() {
        let spec = quick_spec(200_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::FlowDirector,
            },
        );
        assert!(m.completed > 1000);
        assert!(!m.saturated(0.05), "{}", m.row());
    }

    #[test]
    fn overload_saturates_and_drops() {
        let spec = quick_spec(1_500_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::Rss,
            },
        );
        assert!(m.saturated(0.05), "{}", m.row());
        assert!(m.dropped > 0, "rings must overflow under overload");
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = quick_spec(300_000.0, ServiceDist::paper_bimodal());
        for kind in [
            BaselineKind::Rss,
            BaselineKind::RssStealing,
            BaselineKind::FlowDirector,
        ] {
            let a = run(spec, BaselineConfig { workers: 3, kind });
            let b = run(spec, BaselineConfig { workers: 3, kind });
            assert_eq!(a.completed, b.completed, "{kind:?}");
            assert_eq!(a.p99, b.p99, "{kind:?}");
        }
    }
}

#[cfg(test)]
mod erss_tests {
    use super::*;
    use workload::ServiceDist;

    fn quick_spec(rps: f64) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: rps,
            dist: ServiceDist::Fixed(SimDuration::from_micros(5)),
            body_len: 64,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(20),
            seed: 42,
        }
    }

    #[test]
    fn elastic_rss_provisions_fewer_cores_at_light_load() {
        let (light, active_light) = run_with_elastic(
            quick_spec(50_000.0),
            BaselineConfig {
                workers: 8,
                kind: BaselineKind::ElasticRss,
            },
        );
        let (_, active_heavy) = run_with_elastic(
            quick_spec(1_200_000.0),
            BaselineConfig {
                workers: 8,
                kind: BaselineKind::ElasticRss,
            },
        );
        assert!(!light.saturated(0.05), "{}", light.row());
        assert!(
            active_light < active_heavy,
            "provisioned cores must track load: {active_light:.1} vs {active_heavy:.1}"
        );
        assert!(
            active_light < 5.0,
            "50k x 5us needs ~1 core, got {active_light:.1}"
        );
        assert!(
            active_heavy > 6.0,
            "1.2M x 5us needs ~6+ cores, got {active_heavy:.1}"
        );
    }

    #[test]
    fn elastic_rss_still_serves_the_load() {
        let (m, _) = run_with_elastic(
            quick_spec(400_000.0),
            BaselineConfig {
                workers: 8,
                kind: BaselineKind::ElasticRss,
            },
        );
        assert!(!m.saturated(0.05), "{}", m.row());
        // Tail stays bounded: elasticity must not orphan queued work.
        assert!(m.p99 < SimDuration::from_millis(1), "p99 {}", m.p99);
    }

    #[test]
    fn static_kinds_report_full_provisioning() {
        let (_, active) = run_with_elastic(
            quick_spec(100_000.0),
            BaselineConfig {
                workers: 6,
                kind: BaselineKind::Rss,
            },
        );
        assert_eq!(active, 6.0);
    }

    #[test]
    fn loss_and_crash_accounts_for_every_request() {
        let spec = quick_spec(300_000.0);
        let res = ResilienceConfig::loss_and_crash(1, SimTime::ZERO + SimDuration::from_millis(10));
        let run = |kind| {
            run_resilient_probed(
                spec,
                BaselineConfig { workers: 4, kind },
                ProbeConfig::disabled(),
                res,
            )
        };
        for kind in [BaselineKind::Rss, BaselineKind::RssStealing] {
            let m = run(kind);
            let f = &m.faults;
            assert_eq!(f.unaccounted(), 0, "{kind:?}: request ledger leaks: {f:?}");
            assert!(
                f.in_pipe() < 1200,
                "{kind:?}: attempt residue beyond ring depth: {f:?}"
            );
            assert!(f.retries > 0, "{kind:?}: loss never triggered a retry");
            assert!(
                m.completed > 1_000,
                "{kind:?}: goodput collapsed: {}",
                m.row()
            );
        }
        // Without stealing, frames hashed to the dead core strand; with
        // stealing, peers rescue them.
        let rss = run(BaselineKind::Rss);
        let stealing = run(BaselineKind::RssStealing);
        assert!(rss.faults.stranded > 0, "no stranding at a dead core");
        assert!(
            stealing.faults.stranded < rss.faults.stranded,
            "stealing should rescue stranded work: {} vs {}",
            stealing.faults.stranded,
            rss.faults.stranded
        );
        // Determinism under faults.
        let a = run(BaselineKind::Rss);
        let b = run(BaselineKind::Rss);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.p99, b.p99);
    }

    #[test]
    fn elastic_rss_is_deterministic() {
        let cfg = BaselineConfig {
            workers: 8,
            kind: BaselineKind::ElasticRss,
        };
        let (a, aa) = run_with_elastic(quick_spec(300_000.0), cfg);
        let (b, bb) = run_with_elastic(quick_spec(300_000.0), cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99, b.p99);
        assert_eq!(aa, bb);
    }
}
