//! Run-to-completion baselines: the systems §2.1 surveys and §2.2 indicts.
//!
//! * **RSS / IX-style d-FCFS** — the NIC's Toeplitz hash spreads flows
//!   across per-core queues; each worker runs its queue to completion. No
//!   centralized view, no preemption: load imbalance and head-of-line
//!   blocking are structural.
//! * **ZygOS-style work stealing** — same steering, but an idle worker
//!   steals from the longest peer queue, paying a cross-core
//!   synchronization cost per steal.
//! * **MICA-style Flow Director** — exact-match rules pin each flow
//!   (client source port, standing in for MICA's key partition) to a
//!   specific core: EREW partitioning, still blind to load.
//!
//! All three share one assembly, differing only in NIC steering and the
//! stealing option — which is exactly the paper's framing: they delegate
//! scheduling to steering hardware and give up load awareness.

use bytes::Bytes;
use cpu_model::{ContextCosts, ContextPool, Core, CoreId, CoreSpec};
use net_wire::{FrameSpec, MsgKind, MsgRepr, ParsedFrame};
use nic_model::{FlowDirector, FlowKey, IfaceId, Link, NicDevice, QueueSteering, Rss};
use nicsched::params;
use sim_core::{Ctx, Engine, Model, Probe, ProbeConfig, Rng, SimDuration, SimTime};
use workload::{RunMetrics, WorkloadSpec};

use crate::common::{assemble_metrics, AddressPlan, Client};

/// Elastic-RSS controller period: "provisions cores for applications on
/// the us scale" (§5.1(1)).
const ERSS_INTERVAL: SimDuration = SimDuration::from_micros(20);

/// Which baseline to assemble.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineKind {
    /// RSS steering, run-to-completion (IX-style d-FCFS).
    Rss,
    /// RSS steering plus ZygOS-style work stealing.
    RssStealing,
    /// Flow-Director exact-match steering (MICA-style EREW).
    FlowDirector,
    /// Elastic RSS (Rucker et al., APNet '19 — cited in §5.1(1)): RSS
    /// whose indirection table is rewritten at microsecond scale by a
    /// controller watching core utilization, provisioning just enough
    /// cores for the offered load.
    ElasticRss,
}

/// Configuration of a run-to-completion baseline.
#[derive(Clone, Copy, Debug)]
pub struct BaselineConfig {
    /// Worker cores, one RX queue each.
    pub workers: usize,
    /// Baseline flavour.
    pub kind: BaselineKind,
}

enum Ev {
    ClientSend,
    WireToNic(Bytes),
    WorkerPoll(usize),
    WorkerRunEnd(usize),
    ClientResp(Bytes),
    /// Elastic-RSS controller tick: re-provision the active core set.
    ErssTick,
}

struct Worker {
    core: Core,
    busy: bool,
    /// When the worker last went idle (for feedback-gap measurement).
    idle_since: Option<SimTime>,
}

struct Baseline {
    cfg: BaselineConfig,
    client: Client,
    horizon: SimTime,
    client_link: Link,
    server_link: Link,
    nic: NicDevice,
    iface: IfaceId,
    workers: Vec<Worker>,
    ctx_pool: ContextPool,
    ctx_costs: ContextCosts,
    host: CoreSpec,
    /// Successful steals (ZygOS mode).
    steals: u64,
    /// The message each busy worker is executing.
    pending: Vec<Option<MsgRepr>>,
    /// Elastic RSS: currently provisioned cores (prefix of the worker set).
    active: usize,
    /// Elastic RSS: busy time per worker at the last controller tick.
    last_busy: Vec<SimDuration>,
    /// Elastic RSS: time-weighted active-core count.
    active_tw: sim_core::stats::TimeWeighted,
}

impl Baseline {
    fn new(spec: WorkloadSpec, cfg: BaselineConfig) -> Baseline {
        let mut master = Rng::new(spec.seed);
        let client = Client::new(spec, &mut master);

        let steering = match cfg.kind {
            BaselineKind::Rss | BaselineKind::RssStealing | BaselineKind::ElasticRss => {
                QueueSteering::Rss(Rss::new(cfg.workers as u32))
            }
            BaselineKind::FlowDirector => {
                // Pin each client source port to a core: port p -> core
                // p % workers — MICA's key-partition steering.
                let mut table = FlowDirector::new(2048);
                for p in 0..1024u16 {
                    let mut src = AddressPlan::client_ep();
                    src.port = 7000 + p;
                    let key = FlowKey {
                        src,
                        dst: AddressPlan::dispatcher_ep(),
                    };
                    table.install(key, u32::from(p) % cfg.workers as u32);
                }
                QueueSteering::FlowDirector {
                    table,
                    fallback: Rss::new(cfg.workers as u32),
                }
            }
        };

        let mut nic = NicDevice::new(params::PCIE_DMA);
        let iface = nic.add_iface(AddressPlan::dispatcher_mac(), cfg.workers, 1024, steering);

        let t0 = SimTime::ZERO;
        let workers = (0..cfg.workers)
            .map(|w| Worker {
                core: Core::new(CoreId(w as u32), CoreSpec::host_x86(), t0),
                busy: false,
                idle_since: Some(t0),
            })
            .collect();

        Baseline {
            cfg,
            horizon: spec.horizon(),
            client,
            client_link: Link::ten_gbe(),
            server_link: Link::ten_gbe(),
            nic,
            iface,
            workers,
            ctx_pool: ContextPool::new(),
            ctx_costs: ContextCosts::default(),
            host: CoreSpec::host_x86(),
            steals: 0,
            pending: vec![None; cfg.workers],
            active: cfg.workers,
            last_busy: vec![SimDuration::ZERO; cfg.workers],
            active_tw: sim_core::stats::TimeWeighted::new(t0, cfg.workers as f64),
        }
    }

    /// Elastic-RSS controller (§5.1(1)): observe utilization of the active
    /// cores over the last window and grow/shrink the provisioned set,
    /// then rewrite the indirection table — the operation a programmable
    /// NIC performs in hardware.
    fn erss_tick(&mut self, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let window = ERSS_INTERVAL.as_secs_f64();
        let mut busy = 0.0;
        for (w, last) in self.last_busy.iter_mut().enumerate() {
            let total = self.workers[w].core.busy_time(now);
            busy += (total - *last).as_secs_f64();
            *last = total;
        }
        let util = busy / (window * self.active as f64);
        if util > 0.70 && self.active < self.cfg.workers {
            self.active += 1;
        } else if util < 0.35 && self.active > 1 {
            self.active -= 1;
        }
        self.active_tw.set(now, self.active as f64);
        let table: Vec<u32> = (0..128).map(|i| i % self.active as u32).collect();
        if let QueueSteering::Rss(rss) = &mut self.nic.iface_mut(self.iface).steering {
            rss.set_table(table);
        }
        if now < self.horizon {
            ctx.schedule_in(ERSS_INTERVAL, Ev::ErssTick);
        }
    }

    /// Pop work for worker `w`: own queue first, then (if stealing) the
    /// longest peer queue. Returns the frame and the steal overhead.
    fn take_work(&mut self, w: usize) -> Option<(Bytes, SimDuration)> {
        let iface = self.nic.iface_mut(self.iface);
        if let Some(frame) = iface.rx[w].pop() {
            return Some((frame.data, SimDuration::ZERO));
        }
        if self.cfg.kind != BaselineKind::RssStealing {
            return None;
        }
        // Steal from the longest peer queue.
        let victim = (0..iface.rx.len())
            .filter(|&q| q != w && !iface.rx[q].is_empty())
            .max_by_key(|&q| iface.rx[q].len())?;
        let frame = iface.rx[victim].pop()?;
        self.steals += 1;
        Some((frame.data, params::WORK_STEAL_COST))
    }

    fn worker_poll(&mut self, w: usize, ctx: &mut Ctx<Ev>) {
        if self.workers[w].busy {
            return;
        }
        let Some((data, steal_cost)) = self.take_work(w) else {
            self.workers[w].core.set_idle(ctx.now());
            ctx.probe().busy_i("worker", w, false);
            if self.workers[w].idle_since.is_none() {
                self.workers[w].idle_since = Some(ctx.now());
            }
            return;
        };
        if steal_cost > SimDuration::ZERO {
            ctx.probe().count("worker.steals");
        }
        let Ok(parsed) = ParsedFrame::parse(&data) else {
            ctx.schedule_now(Ev::WorkerPoll(w));
            return;
        };
        if parsed.msg.kind != MsgKind::Request {
            ctx.schedule_now(Ev::WorkerPoll(w));
            return;
        }
        let msg = parsed.msg;
        if let Some(idle_at) = self.workers[w].idle_since.take() {
            let gap = ctx.now().saturating_duration_since(idle_at);
            ctx.probe().hop("worker.idle_gap", gap);
        }
        ctx.probe().mark(msg.req_id, "path.1_worker_start");
        ctx.probe().busy_i("worker", w, true);
        // Run-to-completion: the worker is its own networking subsystem.
        let overhead = steal_cost
            + params::HOST_NET_PER_PACKET
            + ContextPool::op_cost(self.ctx_pool.begin(msg.req_id), &self.ctx_costs, &self.host);
        let service = SimDuration::from_nanos(msg.service_ns);
        let worker = &mut self.workers[w];
        worker.busy = true;
        worker.core.set_busy(ctx.now());
        // Stash the response identity in the event via a rebuilt frame at
        // completion time; carry the parsed message through worker state
        // instead of re-parsing.
        self.pending[w] = Some(msg);
        ctx.schedule_in(overhead + service, Ev::WorkerRunEnd(w));
    }
}

impl Baseline {
    fn finish(&mut self, w: usize, ctx: &mut Ctx<Ev>) {
        let msg = self.pending[w].take().expect("worker had work");
        ctx.probe().count("worker.completed");
        ctx.probe().mark(msg.req_id, "path.2_worker_done");
        let resp = FrameSpec {
            src_mac: AddressPlan::dispatcher_mac(),
            dst_mac: AddressPlan::client_mac(),
            src: AddressPlan::worker_ep(w),
            dst: AddressPlan::client_ep(),
            msg: MsgRepr {
                kind: MsgKind::Response,
                remaining_ns: 0,
                ..msg
            },
        };
        let built = ctx.now() + params::WORKER_TX_COST;
        let payload_len = resp.frame_len() - net_wire::ethernet::HEADER_LEN;
        let arrive = self
            .server_link
            .transmit(built + self.nic.dma_latency, payload_len);
        ctx.schedule_at(arrive, Ev::ClientResp(resp.build()));
        self.ctx_pool.discard(msg.req_id);
        let worker = &mut self.workers[w];
        worker.busy = false;
        worker.core.requests_run += 1;
        ctx.schedule_at(built, Ev::WorkerPoll(w));
    }
}

impl Model for Baseline {
    type Event = Ev;

    fn handle(&mut self, event: Ev, ctx: &mut Ctx<Ev>) {
        match event {
            Ev::ClientSend => {
                if ctx.now() >= self.horizon {
                    return;
                }
                let spec = self.client.make_request(ctx.now());
                ctx.probe().count("client.sent");
                ctx.probe().mark(spec.msg.req_id, "path.0_client_send");
                let payload_len = spec.frame_len() - net_wire::ethernet::HEADER_LEN;
                let bytes = spec.build();
                let arrive = self.client_link.transmit(ctx.now(), payload_len);
                ctx.schedule_at(arrive, Ev::WireToNic(bytes));
                let gap = self.client.next_gap();
                ctx.schedule_in(gap, Ev::ClientSend);
            }
            Ev::WireToNic(bytes) => {
                let Ok(parsed) = ParsedFrame::parse(&bytes) else {
                    return;
                };
                if let Some(d) = self.nic.steer(&parsed) {
                    ctx.probe().count("nic.rx_frames");
                    self.nic.iface_mut(d.iface).rx[d.queue].push(ctx.now(), bytes);
                    let depth = self.nic.iface(d.iface).rx[d.queue].len();
                    ctx.probe().depth_i("worker.ring", d.queue, depth);
                    if !self.workers[d.queue].busy {
                        ctx.schedule_now(Ev::WorkerPoll(d.queue));
                    } else if self.cfg.kind == BaselineKind::RssStealing {
                        // Any idle worker may steal the new arrival.
                        if let Some(idle) = (0..self.workers.len()).find(|&i| !self.workers[i].busy)
                        {
                            ctx.schedule_now(Ev::WorkerPoll(idle));
                        }
                    }
                }
            }
            Ev::WorkerPoll(w) => self.worker_poll(w, ctx),
            Ev::WorkerRunEnd(w) => self.finish(w, ctx),
            Ev::ErssTick => self.erss_tick(ctx),
            Ev::ClientResp(bytes) => {
                if let Ok(parsed) = ParsedFrame::parse(&bytes) {
                    ctx.probe().count("client.responses");
                    ctx.probe().finish(parsed.msg.req_id, "path.3_response");
                    self.client.on_response(ctx.now(), &parsed);
                }
            }
        }
    }
}

/// Run a run-to-completion baseline simulation of `spec` under `cfg`.
#[deprecated(note = "use the `ServerSystem` trait: `cfg.run(spec, ProbeConfig::disabled())`")]
pub fn run(spec: WorkloadSpec, cfg: BaselineConfig) -> RunMetrics {
    run_probed(spec, cfg, ProbeConfig::disabled())
}

/// Run a run-to-completion baseline with stage-level observability.
pub fn run_probed(spec: WorkloadSpec, cfg: BaselineConfig, probe: ProbeConfig) -> RunMetrics {
    run_with_elastic_probed(spec, cfg, probe).0
}

/// Like [`run_probed`] (with probing disabled), also returning the
/// time-weighted mean number of provisioned cores (equal to
/// `cfg.workers` for the static kinds).
pub fn run_with_elastic(spec: WorkloadSpec, cfg: BaselineConfig) -> (RunMetrics, f64) {
    run_with_elastic_probed(spec, cfg, ProbeConfig::disabled())
}

/// Full-fat entry point: observability plus the elastic-provisioning
/// side channel.
pub fn run_with_elastic_probed(
    spec: WorkloadSpec,
    cfg: BaselineConfig,
    probe: ProbeConfig,
) -> (RunMetrics, f64) {
    let mut engine = Engine::new(Baseline::new(spec, cfg));
    engine.set_probe(Probe::new(probe));
    engine.schedule_at(SimTime::ZERO, Ev::ClientSend);
    if cfg.kind == BaselineKind::ElasticRss {
        engine.schedule_at(SimTime::ZERO + ERSS_INTERVAL, Ev::ErssTick);
    }
    engine.run_until(spec.horizon());
    let horizon = spec.horizon();
    let model = engine.model();
    let util = model
        .workers
        .iter()
        .map(|w| w.core.utilization(horizon))
        .sum::<f64>()
        / model.workers.len() as f64;
    let mean_active = model.active_tw.mean_until(horizon).max(1.0);
    let mut metrics = assemble_metrics(&model.client, model.nic.total_drops(), 0, util);
    if probe.enabled {
        metrics.stages = Some(engine.probe_mut().report(horizon));
    }
    (
        metrics,
        if cfg.kind == BaselineKind::ElasticRss {
            mean_active
        } else {
            cfg.workers as f64
        },
    )
}

#[cfg(test)]
#[allow(deprecated)] // the legacy free-function run API stays covered until removal
mod tests {
    use super::*;
    use workload::ServiceDist;

    fn quick_spec(rps: f64, dist: ServiceDist) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: rps,
            dist,
            body_len: 64,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(20),
            seed: 42,
        }
    }

    #[test]
    fn rss_light_load_is_fast_and_complete() {
        let spec = quick_spec(100_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::Rss,
            },
        );
        assert!(!m.saturated(0.05), "{}", m.row());
        // Run-to-completion has the fewest hops of any system: unloaded
        // latency should be small (single digit us + wire).
        assert!(m.p50 < SimDuration::from_micros(15), "p50 {}", m.p50);
    }

    #[test]
    fn rss_suffers_under_dispersion() {
        // The §2.2 story: without preemption, short requests get stuck
        // behind 100us requests; the p99 explodes relative to centralized
        // preemptive scheduling at the same load.
        let spec = quick_spec(300_000.0, ServiceDist::paper_bimodal());
        let rss = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::Rss,
            },
        );
        let shinjuku = crate::shinjuku::run(spec, crate::shinjuku::ShinjukuConfig::paper(4));
        assert!(
            rss.p99 > shinjuku.p99 * 2,
            "rss p99 {} should dwarf shinjuku p99 {}",
            rss.p99,
            shinjuku.p99
        );
    }

    #[test]
    fn stealing_helps_imbalance() {
        let spec = quick_spec(500_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let rss = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::Rss,
            },
        );
        let zygos = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::RssStealing,
            },
        );
        assert!(
            zygos.p99 <= rss.p99,
            "stealing should not hurt the tail: zygos {} vs rss {}",
            zygos.p99,
            rss.p99
        );
    }

    #[test]
    fn flow_director_pins_flows() {
        let spec = quick_spec(200_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::FlowDirector,
            },
        );
        assert!(m.completed > 1000);
        assert!(!m.saturated(0.05), "{}", m.row());
    }

    #[test]
    fn overload_saturates_and_drops() {
        let spec = quick_spec(1_500_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(
            spec,
            BaselineConfig {
                workers: 4,
                kind: BaselineKind::Rss,
            },
        );
        assert!(m.saturated(0.05), "{}", m.row());
        assert!(m.dropped > 0, "rings must overflow under overload");
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = quick_spec(300_000.0, ServiceDist::paper_bimodal());
        for kind in [
            BaselineKind::Rss,
            BaselineKind::RssStealing,
            BaselineKind::FlowDirector,
        ] {
            let a = run(spec, BaselineConfig { workers: 3, kind });
            let b = run(spec, BaselineConfig { workers: 3, kind });
            assert_eq!(a.completed, b.completed, "{kind:?}");
            assert_eq!(a.p99, b.p99, "{kind:?}");
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy free-function run API stays covered until removal
mod erss_tests {
    use super::*;
    use workload::ServiceDist;

    fn quick_spec(rps: f64) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: rps,
            dist: ServiceDist::Fixed(SimDuration::from_micros(5)),
            body_len: 64,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(20),
            seed: 42,
        }
    }

    #[test]
    fn elastic_rss_provisions_fewer_cores_at_light_load() {
        let (light, active_light) = run_with_elastic(
            quick_spec(50_000.0),
            BaselineConfig {
                workers: 8,
                kind: BaselineKind::ElasticRss,
            },
        );
        let (_, active_heavy) = run_with_elastic(
            quick_spec(1_200_000.0),
            BaselineConfig {
                workers: 8,
                kind: BaselineKind::ElasticRss,
            },
        );
        assert!(!light.saturated(0.05), "{}", light.row());
        assert!(
            active_light < active_heavy,
            "provisioned cores must track load: {active_light:.1} vs {active_heavy:.1}"
        );
        assert!(
            active_light < 5.0,
            "50k x 5us needs ~1 core, got {active_light:.1}"
        );
        assert!(
            active_heavy > 6.0,
            "1.2M x 5us needs ~6+ cores, got {active_heavy:.1}"
        );
    }

    #[test]
    fn elastic_rss_still_serves_the_load() {
        let (m, _) = run_with_elastic(
            quick_spec(400_000.0),
            BaselineConfig {
                workers: 8,
                kind: BaselineKind::ElasticRss,
            },
        );
        assert!(!m.saturated(0.05), "{}", m.row());
        // Tail stays bounded: elasticity must not orphan queued work.
        assert!(m.p99 < SimDuration::from_millis(1), "p99 {}", m.p99);
    }

    #[test]
    fn static_kinds_report_full_provisioning() {
        let (_, active) = run_with_elastic(
            quick_spec(100_000.0),
            BaselineConfig {
                workers: 6,
                kind: BaselineKind::Rss,
            },
        );
        assert_eq!(active, 6.0);
    }

    #[test]
    fn elastic_rss_is_deterministic() {
        let cfg = BaselineConfig {
            workers: 8,
            kind: BaselineKind::ElasticRss,
        };
        let (a, aa) = run_with_elastic(quick_spec(300_000.0), cfg);
        let (b, bb) = run_with_elastic(quick_spec(300_000.0), cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99, b.p99);
        assert_eq!(aa, bb);
    }
}
