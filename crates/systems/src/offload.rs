//! Shinjuku-Offload: the networking subsystem and dispatcher on the
//! SmartNIC, workers on host cores (§3.4).
//!
//! The packet path follows Figure 1 of the paper:
//!
//! 1. A request frame arrives at the SmartNIC and is steered by MAC to the
//!    ARM-side interface, where the **networker** stage parses it.
//! 2. The networker hands the request to the dispatcher's **queue-manager**
//!    core over ARM shared memory (§3.4.1 splits the dispatcher across
//!    three ARM cores).
//! 3. The queue manager runs the centralized FIFO + queuing-optimization
//!    logic ([`nicsched::Dispatcher`]) and passes assignments to the **TX**
//!    core, which constructs a UDP frame to the worker's SR-IOV VF
//!    (§3.4.2) — the expensive step that makes TX the bottleneck stage.
//! 4. The worker polls its VF ring, spawns/restores a context, runs the
//!    request, and preempts itself with a Dune-mapped APIC timer when the
//!    slice expires (§3.4.4).
//! 5. Finished → response to the client + `Done` to the NIC; preempted →
//!    `Preempted` with remaining work. Either way the **RX** core parses
//!    the notification and feeds it back to the queue manager.
//!
//! Every hop exchanges real Ethernet/IPv4/UDP frames built and parsed by
//! `net-wire`. The system is generic over [`NicProfile`], which is how the
//! CXL / ideal-NIC ablations reuse this assembly unchanged.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;
use cpu_model::{
    ContextCosts, ContextPool, Core, CoreId, CoreSpec, InterruptPath, OneShotTimer, Topology,
    CROSS_SOCKET_PENALTY,
};
use net_wire::{FrameSpec, MsgKind, MsgRepr, ParsedFrame};
use nic_model::{packet_lines, Ddio, IfaceId, Link, NicDevice, Placement, QueueSteering};
use nicsched::{
    params, AdmitOutcome, Assignment, CoreSelector, Dispatcher, LeastOutstanding, NicProfile,
    PolicySpec, PreemptDecision, RecoveryPolicy, SchedPolicy, SocketAffinity, Task,
};
use sim_core::{Ctx, Engine, FaultPlan, Model, Probe, ProbeConfig, Rng, SimDuration, SimTime};
use workload::{RunMetrics, WorkloadSpec};

use crate::common::{
    assemble_metrics, scale_duration, AddressPlan, Client, FeedbackGovernor, ResilienceConfig,
    TimeoutOutcome, FAULT_SEED_SALT,
};

/// Configuration of a Shinjuku-Offload instance.
#[derive(Debug, Clone, Copy)]
pub struct OffloadConfig {
    /// Host worker cores (the offload frees one extra vs vanilla Shinjuku).
    pub workers: usize,
    /// Outstanding-requests cap per worker (§3.4.5; the paper settles on 5).
    pub outstanding_cap: u32,
    /// Preemption time slice; `None` disables preemption (the paper turns
    /// it off for the fixed-service-time figures).
    pub time_slice: Option<SimDuration>,
    /// The NIC hardware design point.
    pub profile: NicProfile,
    /// DDIO cache-placement configuration.
    pub ddio_l1: bool,
    /// Centralized queue policy (the paper's prototype uses FCFS, §3.4.1;
    /// the framework makes it programmable, §5.1(4)). A registry spec —
    /// e.g. `PolicySpec::parse("edf:deadline=50us")`.
    pub policy: PolicySpec,
    /// Model the dual-socket host (§1/§4): workers split across two
    /// sockets; DDIO pre-loads into socket 0's LLC (where the NIC hangs),
    /// so socket-1 workers pay a QPI/UPI hop per packet line.
    pub dual_socket: bool,
    /// Use the socket-aware core selector (prefer NIC-socket workers)
    /// instead of plain least-outstanding. Only meaningful with
    /// `dual_socket`.
    pub socket_aware: bool,
    /// §5.2 congestion-control co-design: the NIC stamps its scheduler
    /// load into responses and the client paces itself toward this queue
    /// depth. `None` = the paper's pure open loop.
    pub jit_target_depth: Option<u64>,
    /// Per-frame corruption probability on the client↔server wire
    /// (request and response frames only — the in-machine dispatcher paths
    /// are PCIe, not a lossy cable). 0.0 = pristine.
    pub wire_loss: f64,
    /// Override the client's arrival process (default: Poisson at
    /// `spec.offered_rps`). Lets experiments drive bursty MMPP arrivals.
    pub arrivals: Option<workload::ArrivalProcess>,
}

impl OffloadConfig {
    /// The paper's §4 configuration: Stingray profile, 10 µs slice.
    pub fn paper(workers: usize, outstanding_cap: u32) -> OffloadConfig {
        OffloadConfig {
            workers,
            outstanding_cap,
            time_slice: Some(params::TIME_SLICE),
            profile: NicProfile::stingray(),
            ddio_l1: false,
            policy: PolicySpec::FCFS,
            dual_socket: false,
            socket_aware: false,
            jit_target_depth: None,
            wire_loss: 0.0,
            arrivals: None,
        }
    }
}

/// Events of the offload model.
enum Ev {
    /// Client emits its next request.
    ClientSend,
    /// A frame from the client link reaches the NIC.
    WireToNic(Bytes),
    /// The networker stage finished parsing one frame.
    NetworkerDone,
    /// An item crosses ARM shared memory into the queue manager.
    QmPush(QmItem),
    /// The queue-manager stage finished one item.
    QmDone,
    /// An assignment crosses ARM shared memory into the TX core.
    TxPush(Assignment),
    /// The TX stage finished building one worker frame.
    TxDone,
    /// An assignment frame lands in a worker's VF RX ring.
    WorkerFrame(usize, Bytes),
    /// A worker polls its ring for work.
    WorkerPoll(usize),
    /// A worker's current execution ends (finish or slice expiry).
    WorkerRunEnd {
        /// Worker index.
        worker: usize,
        /// Timer generation guarding against stale firings.
        gen: u64,
    },
    /// A worker notification frame reaches the ARM RX core.
    RxNotif(Bytes),
    /// The RX stage finished parsing one notification.
    RxDone,
    /// A response frame reaches the client.
    ClientResp(Bytes),
    /// A client retransmit timer fires for one attempt of one request.
    ClientTimeout {
        /// Request id the timer guards.
        req_id: u64,
        /// Attempt number the timer was armed for (stale if superseded).
        attempt: u32,
    },
    /// A worker's periodic liveness heartbeat to the NIC-side governor.
    Heartbeat(usize),
}

/// Items crossing into the queue-manager core.
#[derive(Debug, Clone, Copy)]
enum QmItem {
    NewTask(Task),
    Done {
        worker: usize,
        req_id: u64,
    },
    Preempted {
        worker: usize,
        task: Task,
    },
    /// A lease-renewal heartbeat frame from a worker (recovery only).
    Heartbeat {
        worker: usize,
    },
}

/// A serially-processed pipeline stage on an ARM core.
struct Stage<T> {
    queue: VecDeque<T>,
    busy: bool,
    /// Items processed (for stage-throughput assertions).
    processed: u64,
}

impl<T> Stage<T> {
    fn new() -> Stage<T> {
        Stage {
            queue: VecDeque::new(),
            busy: false,
            processed: 0,
        }
    }
}

/// Per-worker state.
struct Worker {
    core: Core,
    timer: OneShotTimer,
    running: Option<Running>,
    /// DDIO placements for frames queued in this worker's ring, FIFO.
    pending_placement: VecDeque<Placement>,
    /// When this worker last went idle (probe-only: measures the feedback
    /// gap as the idle interval before the next assignment arrives).
    idle_since: Option<SimTime>,
}

struct Running {
    task: Task,
    /// Time this dispatch will execute before finish/preemption.
    run: SimDuration,
}

struct Offload {
    cfg: OffloadConfig,
    client: Client,
    horizon: SimTime,
    client_link: Link,
    server_link: Link,
    nic: NicDevice,
    disp_iface: IfaceId,
    worker_iface: Vec<IfaceId>,
    worker_by_mac: BTreeMap<net_wire::EthernetAddress, usize>,

    networker: Stage<()>,
    qm: Stage<QmItem>,
    tx: Stage<Assignment>,
    rx: Stage<Bytes>,

    dispatcher: Dispatcher<Box<dyn SchedPolicy>, Box<dyn CoreSelector>>,
    topology: Topology,
    /// First-arrival instants, so re-queued tasks keep their admission
    /// time. Ordered by request id: iteration order can never depend on a
    /// hasher seed.
    task_meta: BTreeMap<u64, SimTime>,

    workers: Vec<Worker>,
    ctx_pool: ContextPool,
    ctx_costs: ContextCosts,
    ddio: Ddio,
    host: CoreSpec,

    preemptions: u64,

    governor: Option<FeedbackGovernor>,
    /// NIC-side failure-detection policy, when recovery is enabled. The
    /// dispatcher owns the tracker; this copy drives the heartbeat cadence.
    recovery: Option<RecoveryPolicy>,
    /// Request frames lost on the client→NIC wire (i.i.d. + burst).
    req_lost: u64,
    /// Response/NACK frames lost on the server→client wire.
    resp_lost: u64,
    /// Work that died with a crashed worker (running or in its ring).
    stranded: u64,
    /// Early NACK frames sent for shed requests.
    nacks: u64,
}

impl Offload {
    fn new(spec: WorkloadSpec, cfg: OffloadConfig, res: ResilienceConfig) -> Offload {
        let mut master = Rng::new(spec.seed);
        let mut client = Client::new(spec, &mut master);
        if let Some(target) = cfg.jit_target_depth {
            client.pacing = Some(crate::common::JitPacing::new(target));
        }
        if let Some(process) = cfg.arrivals {
            client.override_arrivals(process, &mut master);
        }
        if let Some(policy) = res.retry {
            client.enable_retries(policy);
        }
        // The resilience plan's loss rate overrides the per-config knob.
        let wire_loss = if res.faults.wire_loss > 0.0 {
            res.faults.wire_loss
        } else {
            cfg.wire_loss
        };
        let (client_link, server_link) = if wire_loss > 0.0 {
            (
                Link::ten_gbe().with_loss(wire_loss, master.fork()),
                Link::ten_gbe().with_loss(wire_loss, master.fork()),
            )
        } else {
            (Link::ten_gbe(), Link::ten_gbe())
        };

        let mut nic = NicDevice::new(params::PCIE_DMA);
        let disp_iface = nic.add_iface(
            AddressPlan::dispatcher_mac(),
            1,
            1024,
            QueueSteering::Single,
        );
        let mut worker_iface = Vec::new();
        let mut worker_by_mac = BTreeMap::new();
        for w in 0..cfg.workers {
            let mac = AddressPlan::worker_mac(w);
            worker_iface.push(nic.add_iface(mac, 1, 128, QueueSteering::Single));
            worker_by_mac.insert(mac, w);
        }

        let t0 = SimTime::ZERO;
        let workers = (0..cfg.workers)
            .map(|w| Worker {
                core: Core::new(CoreId(w as u32), CoreSpec::host_x86(), t0),
                timer: OneShotTimer::new(),
                running: None,
                pending_placement: VecDeque::new(),
                idle_since: Some(t0),
            })
            .collect();

        let topology = if cfg.dual_socket {
            Topology::dual(cfg.workers as u8)
        } else {
            Topology::single(cfg.workers as u8)
        };
        let selector: Box<dyn CoreSelector> = if cfg.dual_socket && cfg.socket_aware {
            let sockets = (0..cfg.workers).map(|w| topology.socket_of(w)).collect();
            Box::new(SocketAffinity::new(sockets, 0))
        } else {
            Box::new(LeastOutstanding)
        };

        let mut dispatcher = Dispatcher::new(
            cfg.workers,
            cfg.outstanding_cap,
            cfg.policy.build(),
            selector,
        );
        dispatcher.set_admission(res.admission);
        if let Some(policy) = res.recovery {
            dispatcher.enable_recovery(policy);
        }
        let governor = res
            .fallback
            .map(|p| FeedbackGovernor::new(cfg.workers, cfg.profile.from_worker, p));

        Offload {
            dispatcher,
            topology,
            cfg,
            horizon: spec.horizon(),
            client,
            client_link,
            server_link,
            nic,
            disp_iface,
            worker_iface,
            worker_by_mac,
            networker: Stage::new(),
            qm: Stage::new(),
            tx: Stage::new(),
            rx: Stage::new(),
            task_meta: BTreeMap::new(),
            workers,
            ctx_pool: ContextPool::new(),
            ctx_costs: ContextCosts::default(),
            ddio: if cfg.ddio_l1 {
                Ddio::informed_l1(4096)
            } else {
                Ddio::classic(4096)
            },
            host: CoreSpec::host_x86(),
            preemptions: 0,
            governor,
            recovery: res.recovery,
            req_lost: 0,
            resp_lost: 0,
            stranded: 0,
            nacks: 0,
        }
    }

    // ---- lossy wire helpers ---------------------------------------------

    /// Transmit a client→NIC frame over the lossy request wire.
    fn send_request(&mut self, spec: &FrameSpec, ctx: &mut Ctx<'_, Ev>) {
        let payload_len = spec.frame_len() - net_wire::ethernet::HEADER_LEN;
        let bytes = spec.build();
        let now = ctx.now();
        if ctx.faults().burst_frame_lost(now) {
            self.req_lost += 1;
            ctx.probe().count("wire.req_lost");
            return;
        }
        match self.client_link.transmit_lossy(ctx.now(), payload_len) {
            Some(arrive) => ctx.schedule_at(arrive, Ev::WireToNic(bytes)),
            None => {
                self.req_lost += 1;
                ctx.probe().count("wire.req_lost");
            }
        }
    }

    /// Transmit a server→client frame (response or NACK) over the lossy
    /// response wire, starting at `depart`.
    fn send_response(&mut self, spec: &FrameSpec, depart: SimTime, ctx: &mut Ctx<'_, Ev>) {
        let payload_len = spec.frame_len() - net_wire::ethernet::HEADER_LEN;
        let bytes = spec.build();
        if ctx.faults().burst_frame_lost(depart) {
            self.resp_lost += 1;
            ctx.probe().count("wire.resp_lost");
            return;
        }
        match self.server_link.transmit_lossy(depart, payload_len) {
            Some(arrive) => ctx.schedule_at(arrive, Ev::ClientResp(bytes)),
            None => {
                self.resp_lost += 1;
                ctx.probe().count("wire.resp_lost");
            }
        }
    }

    /// Per-stage compute cost under the configured profile.
    fn stage_cost(&self, host_cycles: u64) -> SimDuration {
        self.cfg.profile.compute.stage_cost(host_cycles)
    }

    // ---- stage starters -------------------------------------------------

    fn start_networker(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let ring = &self.nic.iface(self.disp_iface).rx[0];
        if !self.networker.busy && !ring.is_empty() {
            self.networker.busy = true;
            ctx.probe().busy("networker", true);
            ctx.schedule_in(
                self.stage_cost(params::ARM_NET_PARSE_CYCLES),
                Ev::NetworkerDone,
            );
        }
    }

    fn start_qm(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if !self.qm.busy && !self.qm.queue.is_empty() {
            self.qm.busy = true;
            ctx.probe().busy("qm", true);
            ctx.schedule_in(self.stage_cost(params::ARM_QUEUE_OP_CYCLES), Ev::QmDone);
        }
    }

    fn start_tx(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if !self.tx.busy && !self.tx.queue.is_empty() {
            self.tx.busy = true;
            ctx.probe().busy("tx", true);
            ctx.schedule_in(self.stage_cost(params::ARM_TX_BUILD_CYCLES), Ev::TxDone);
        }
    }

    fn start_rx(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if !self.rx.busy && !self.rx.queue.is_empty() {
            self.rx.busy = true;
            ctx.probe().busy("rx", true);
            ctx.schedule_in(self.stage_cost(params::ARM_RX_PARSE_CYCLES), Ev::RxDone);
        }
    }

    /// Route a batch of dispatcher assignments toward the TX core.
    fn emit_assignments(&mut self, assignments: Vec<Assignment>, ctx: &mut Ctx<'_, Ev>) {
        for a in assignments {
            ctx.schedule_in(self.cfg.profile.stage_hop, Ev::TxPush(a));
        }
    }

    // ---- worker helpers -------------------------------------------------

    /// Start the next stashed request on an idle worker, if any.
    fn worker_poll(&mut self, w: usize, ctx: &mut Ctx<'_, Ev>) {
        if self.workers[w].running.is_some() {
            return;
        }
        let now = ctx.now();
        if ctx.faults().worker_crashed(w, now) {
            return; // dead silicon never polls again
        }
        if let Some(resume) = ctx.faults().worker_stalled_until(w, now) {
            ctx.schedule_at(resume, Ev::WorkerPoll(w));
            return;
        }
        let iface = self.worker_iface[w];
        let Some(frame) = self.nic.iface_mut(iface).rx[0].pop() else {
            self.workers[w].core.set_idle(ctx.now());
            ctx.probe().busy_i("worker", w, false);
            if self.workers[w].idle_since.is_none() {
                self.workers[w].idle_since = Some(ctx.now());
            }
            return;
        };
        let ring_depth = self.nic.iface(iface).rx[0].len();
        ctx.probe().depth_i("worker.ring", w, ring_depth);
        // The measured feedback gap: how long this worker sat idle before
        // the NIC's (stale) view caught up and delivered more work.
        if let Some(idle_at) = self.workers[w].idle_since.take() {
            let gap = ctx.now().saturating_duration_since(idle_at);
            ctx.probe().hop("worker.idle_gap", gap);
        }
        let parsed = match ParsedFrame::parse(&frame.data) {
            Ok(p) if p.msg.kind == MsgKind::Assign => p,
            _ => {
                // Malformed or unexpected frame: drop and keep polling.
                self.workers[w].pending_placement.pop_front();
                ctx.schedule_now(Ev::WorkerPoll(w));
                return;
            }
        };
        let placement = self.workers[w]
            .pending_placement
            .pop_front()
            .unwrap_or(Placement::Dram);

        let msg = parsed.msg;
        let task = Task {
            req_id: msg.req_id,
            client_id: msg.client_id,
            service: SimDuration::from_nanos(msg.service_ns),
            remaining: SimDuration::from_nanos(msg.remaining_ns),
            sent_at: SimTime::from_nanos(msg.sent_at_ns),
            arrived_at: ctx.now(),
            body_len: msg.body_len,
            preemptions: 0,
            // The policy's slice grant rode the Assign frame's grant byte.
            preempt: PreemptDecision::from_grant_code(msg.grant_code),
        };

        // Overheads before useful work: parse, context spawn/restore,
        // first touch of the DMA'd payload, timer arming.
        let ctx_op = self.ctx_pool.begin(task.req_id);
        // Cross-socket first touch: DDIO homed the packet on socket 0's
        // LLC; a socket-1 worker pays the interconnect per line (§1).
        let interconnect = if self.cfg.dual_socket && self.topology.is_remote(w, 0) {
            CROSS_SOCKET_PENALTY
        } else {
            SimDuration::ZERO
        };
        let mut overhead = params::WORKER_RX_COST
            + ContextPool::op_cost(ctx_op, &self.ctx_costs, &self.host)
            + self.ddio.first_touch_from(
                placement,
                packet_lines(net_wire::message::HEADER_LEN + task.body_len as usize),
                interconnect,
            );
        self.ddio.release(
            placement,
            packet_lines(net_wire::message::HEADER_LEN + task.body_len as usize),
        );

        // The policy's per-dispatch grant resolves against the configured
        // slice (`Inherit` — grant byte 0 — reproduces the static timer).
        let run = match task.preempt.resolve(self.cfg.time_slice) {
            Some(slice) => {
                overhead += self.timer_set_cost();
                // A NIC-initiated interrupt lands one transport latency
                // after the slice expires, so the request overruns by that
                // much — §3.4.4's argument against packet-based preemption.
                let effective = slice + self.cfg.profile.interrupt.transport_latency();
                task.remaining.min(effective)
            }
            None => task.remaining,
        };

        ctx.probe().mark(task.req_id, "path.4_worker_start");
        ctx.probe().busy_i("worker", w, true);
        // A slowdown window stretches wall time; `run` stays in work units
        // so the finish/preempt decision at run end is unchanged.
        let slow = {
            let now = ctx.now();
            ctx.faults().worker_slowdown(w, now)
        };
        let wall = if slow > 1.0 {
            scale_duration(overhead + run, slow)
        } else {
            overhead + run
        };
        let worker = &mut self.workers[w];
        worker.core.set_busy(ctx.now());
        let end = ctx.now() + wall;
        let gen = worker.timer.arm(end);
        worker.running = Some(Running { task, run });
        ctx.schedule_at(end, Ev::WorkerRunEnd { worker: w, gen });
    }

    fn timer_set_cost(&self) -> SimDuration {
        match self.cfg.profile.interrupt {
            InterruptPath::LocalTimer(mode) => mode.set_cost(&self.host),
            // NIC-initiated interrupts need no worker-side arming.
            _ => SimDuration::ZERO,
        }
    }

    fn preempt_receive_cost(&self) -> SimDuration {
        self.cfg.profile.interrupt.receive_cost(&self.host)
    }

    /// Build the notification frame a worker sends to the dispatcher.
    fn notif_spec(&self, w: usize, msg: MsgRepr) -> FrameSpec {
        FrameSpec {
            src_mac: AddressPlan::worker_mac(w),
            dst_mac: AddressPlan::dispatcher_mac(),
            src: AddressPlan::worker_ep(w),
            dst: AddressPlan::dispatcher_ep(),
            msg,
        }
    }

    fn worker_run_end(&mut self, w: usize, gen: u64, ctx: &mut Ctx<'_, Ev>) {
        if !self.workers[w].timer.accept(gen) {
            return; // stale firing
        }
        let Running { task, run } = self.workers[w].running.take().expect("running");
        let now = ctx.now();
        if ctx.faults().worker_crashed(w, now) {
            // The worker died mid-request: no response, no Done. The
            // dispatcher's outstanding slot leaks until quarantine stops
            // feeding the corpse.
            self.ctx_pool.discard(task.req_id);
            self.stranded += 1;
            ctx.probe().count("worker.stranded");
            return;
        }
        let finished = task.remaining <= run;

        if finished {
            ctx.probe().count("worker.completed");
            ctx.probe().mark(task.req_id, "path.5_worker_done");
            // Response to the client and Done to the dispatcher: two
            // packets, built back to back (§3.4.3).
            let resp_built = now + params::WORKER_TX_COST;
            let resp = FrameSpec {
                src_mac: AddressPlan::worker_mac(w),
                dst_mac: AddressPlan::client_mac(),
                src: AddressPlan::worker_ep(w),
                dst: AddressPlan::client_ep(),
                msg: MsgRepr {
                    kind: MsgKind::Response,
                    req_id: task.req_id,
                    client_id: task.client_id,
                    service_ns: task.service.as_nanos(),
                    // The NIC sees every departing response; in the §5.2
                    // co-design it stamps its instantaneous scheduler load
                    // (queued + in flight) for the client's pacer.
                    remaining_ns: self.dispatcher.queue_len() as u64
                        + self.dispatcher.total_outstanding() as u64,
                    sent_at_ns: task.sent_at.as_nanos(),
                    body_len: task.body_len,
                    grant_code: 0,
                },
            };
            let depart = resp_built + self.nic.dma_latency;
            self.send_response(&resp, depart, ctx);

            let notif_built = resp_built + params::WORKER_TX_COST;
            let done = self.notif_spec(
                w,
                MsgRepr {
                    kind: MsgKind::Done,
                    req_id: task.req_id,
                    client_id: task.client_id,
                    service_ns: task.service.as_nanos(),
                    remaining_ns: 0,
                    sent_at_ns: task.sent_at.as_nanos(),
                    body_len: 0,
                    grant_code: 0,
                },
            );
            ctx.schedule_at(
                notif_built + self.cfg.profile.from_worker,
                Ev::RxNotif(done.build()),
            );

            self.ctx_pool.discard(task.req_id);
            self.workers[w].core.requests_run += 1;
            // The worker is free once both packets are built; it
            // immediately pulls the next stashed request (§3.4.5).
            ctx.schedule_at(notif_built, Ev::WorkerPoll(w));
        } else {
            // Slice expiry: take the interrupt, save the context, notify.
            let after = task.after_preemption(run);
            if self.ctx_pool.is_saved(after.req_id) {
                // A retransmitted copy of this request is already suspended
                // in DRAM: saving a second context would fork the request.
                // Kill this copy — the saved context owns the request — and
                // release the worker slot with a Done notification.
                ctx.probe().count("worker.dup_killed");
                let free_at = now + self.preempt_receive_cost() + params::WORKER_TX_COST;
                let done = self.notif_spec(
                    w,
                    MsgRepr {
                        kind: MsgKind::Done,
                        req_id: after.req_id,
                        client_id: after.client_id,
                        service_ns: after.service.as_nanos(),
                        remaining_ns: 0,
                        sent_at_ns: after.sent_at.as_nanos(),
                        body_len: 0,
                        grant_code: 0,
                    },
                );
                ctx.schedule_at(
                    free_at + self.cfg.profile.from_worker,
                    Ev::RxNotif(done.build()),
                );
                ctx.schedule_at(free_at, Ev::WorkerPoll(w));
                return;
            }
            ctx.probe().count("worker.preempted");
            self.preemptions += 1;
            self.workers[w].core.preemptions += 1;
            self.ctx_pool.save(after.req_id);
            let free_at = now
                + self.preempt_receive_cost()
                + self.ctx_costs.save(&self.host)
                + params::WORKER_TX_COST;
            let notif = self.notif_spec(
                w,
                MsgRepr {
                    kind: MsgKind::Preempted,
                    req_id: after.req_id,
                    client_id: after.client_id,
                    service_ns: after.service.as_nanos(),
                    remaining_ns: after.remaining.as_nanos(),
                    sent_at_ns: after.sent_at.as_nanos(),
                    body_len: after.body_len,
                    grant_code: 0,
                },
            );
            ctx.schedule_at(
                free_at + self.cfg.profile.from_worker,
                Ev::RxNotif(notif.build()),
            );
            ctx.schedule_at(free_at, Ev::WorkerPoll(w));
        }
    }
}

impl Model for Offload {
    type Event = Ev;

    fn check_invariants(&self, now: SimTime, inv: &mut sim_core::InvariantChecker) {
        self.nic.check_invariants(now, inv);
        self.client.check_invariants(now, inv);
    }

    fn handle(&mut self, event: Ev, ctx: &mut Ctx<'_, Ev>) {
        match event {
            Ev::ClientSend => {
                if ctx.now() >= self.horizon {
                    return;
                }
                let spec = self.client.make_request(ctx.now());
                let req_id = spec.msg.req_id;
                ctx.probe().count("client.sent");
                ctx.probe().mark(req_id, "path.0_client_send");
                self.send_request(&spec, ctx);
                if let Some((attempt, timeout)) = self.client.arm_timeout(req_id) {
                    ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                }
                let gap = self.client.next_gap();
                ctx.schedule_in(gap, Ev::ClientSend);
            }
            Ev::WireToNic(bytes) => {
                let Ok(parsed) = ParsedFrame::parse(&bytes) else {
                    return;
                };
                if let Some(d) = self.nic.steer(&parsed) {
                    self.nic.iface_mut(d.iface).rx[d.queue].push(ctx.now(), bytes);
                    if d.iface == self.disp_iface {
                        ctx.probe().count("nic.rx_frames");
                        let depth = self.nic.iface(self.disp_iface).rx[0].len();
                        ctx.probe().depth("networker.ring", depth);
                        self.start_networker(ctx);
                    }
                }
            }
            Ev::NetworkerDone => {
                self.networker.busy = false;
                self.networker.processed += 1;
                ctx.probe().busy("networker", false);
                ctx.probe().count("networker.parsed");
                if let Some(frame) = self.nic.iface_mut(self.disp_iface).rx[0].pop() {
                    let depth = self.nic.iface(self.disp_iface).rx[0].len();
                    ctx.probe().depth("networker.ring", depth);
                    if let Ok(parsed) = ParsedFrame::parse(&frame.data) {
                        if parsed.msg.kind == MsgKind::Request {
                            let msg = parsed.msg;
                            ctx.probe().mark(msg.req_id, "path.1_nic_parse");
                            let task = Task::new(
                                msg.req_id,
                                msg.client_id,
                                SimDuration::from_nanos(msg.service_ns),
                                SimTime::from_nanos(msg.sent_at_ns),
                                ctx.now(),
                                msg.body_len,
                            );
                            ctx.schedule_in(
                                self.cfg.profile.stage_hop,
                                Ev::QmPush(QmItem::NewTask(task)),
                            );
                        }
                    }
                }
                self.start_networker(ctx);
            }
            Ev::QmPush(item) => {
                self.qm.queue.push_back(item);
                ctx.probe().depth("qm.inbox", self.qm.queue.len());
                self.start_qm(ctx);
            }
            Ev::QmDone => {
                self.qm.busy = false;
                self.qm.processed += 1;
                ctx.probe().busy("qm", false);
                if let Some(item) = self.qm.queue.pop_front() {
                    ctx.probe().depth("qm.inbox", self.qm.queue.len());
                    let now = ctx.now();
                    let assignments = match item {
                        QmItem::NewTask(task) => match self.dispatcher.offer(now, task) {
                            AdmitOutcome::Admitted(assignments) => {
                                ctx.probe().count("qm.enqueue");
                                ctx.probe().mark(task.req_id, "path.2_qm_admit");
                                self.task_meta.insert(task.req_id, task.arrived_at);
                                assignments
                            }
                            AdmitOutcome::Shed { nack } => {
                                ctx.probe().count("qm.shed");
                                if nack {
                                    self.nacks += 1;
                                    let spec = FrameSpec {
                                        src_mac: AddressPlan::dispatcher_mac(),
                                        dst_mac: AddressPlan::client_mac(),
                                        src: AddressPlan::dispatcher_ep(),
                                        dst: AddressPlan::client_ep(),
                                        msg: MsgRepr {
                                            kind: MsgKind::Nack,
                                            req_id: task.req_id,
                                            client_id: task.client_id,
                                            service_ns: 0,
                                            remaining_ns: 0,
                                            sent_at_ns: task.sent_at.as_nanos(),
                                            body_len: 0,
                                            grant_code: 0,
                                        },
                                    };
                                    let depart = now + self.nic.dma_latency;
                                    self.send_response(&spec, depart, ctx);
                                }
                                Vec::new()
                            }
                        },
                        QmItem::Done { worker, req_id } => {
                            ctx.probe().count("qm.done");
                            self.task_meta.remove(&req_id);
                            self.dispatcher.on_done(now, worker, req_id)
                        }
                        QmItem::Preempted { worker, task } => {
                            ctx.probe().count("qm.preempt_requeue");
                            ctx.probe().mark(task.req_id, "path.2_qm_admit");
                            self.dispatcher.on_preempted(now, worker, task)
                        }
                        QmItem::Heartbeat { worker } => {
                            ctx.probe().count("qm.heartbeat");
                            self.dispatcher.on_heartbeat(now, worker)
                        }
                    };
                    ctx.probe().depth("qm.central", self.dispatcher.queue_len());
                    self.emit_assignments(assignments, ctx);
                }
                self.start_qm(ctx);
            }
            Ev::TxPush(a) => {
                self.tx.queue.push_back(a);
                ctx.probe().depth("tx.queue", self.tx.queue.len());
                self.start_tx(ctx);
            }
            Ev::TxDone => {
                self.tx.busy = false;
                self.tx.processed += 1;
                ctx.probe().busy("tx", false);
                ctx.probe().count("tx.built");
                if let Some(a) = self.tx.queue.pop_front() {
                    ctx.probe().depth("tx.queue", self.tx.queue.len());
                    ctx.probe().mark(a.task.req_id, "path.3_tx_build");
                    let t = a.task;
                    let spec = FrameSpec {
                        src_mac: AddressPlan::dispatcher_mac(),
                        dst_mac: AddressPlan::worker_mac(a.worker),
                        src: AddressPlan::dispatcher_ep(),
                        dst: AddressPlan::worker_ep(a.worker),
                        msg: MsgRepr {
                            kind: MsgKind::Assign,
                            req_id: t.req_id,
                            client_id: t.client_id,
                            service_ns: t.service.as_nanos(),
                            remaining_ns: t.remaining.as_nanos(),
                            sent_at_ns: t.sent_at.as_nanos(),
                            body_len: t.body_len,
                            // The slice grant must survive the wire: the
                            // worker rebuilds its Task from this frame.
                            grant_code: t.preempt.grant_code(),
                        },
                    };
                    ctx.schedule_in(
                        self.cfg.profile.to_worker,
                        Ev::WorkerFrame(a.worker, spec.build()),
                    );
                }
                self.start_tx(ctx);
            }
            Ev::WorkerFrame(w, bytes) => {
                let now = ctx.now();
                if ctx.faults().worker_crashed(w, now) {
                    // Delivered to a dead worker's ring: nobody will ever
                    // poll it out.
                    self.stranded += 1;
                    ctx.probe().count("worker.stranded");
                    return;
                }
                // DDIO placement happens at DMA time.
                let lines = packet_lines(bytes.len());
                let resident: usize = self.workers[w]
                    .pending_placement
                    .iter()
                    .filter(|p| **p == Placement::L1)
                    .count()
                    * lines;
                let placement = self.ddio.place(lines, resident);
                let iface = self.worker_iface[w];
                if self.nic.iface_mut(iface).rx[0].push(ctx.now(), bytes) {
                    let depth = self.nic.iface(iface).rx[0].len();
                    ctx.probe().depth_i("worker.ring", w, depth);
                    self.workers[w].pending_placement.push_back(placement);
                    if self.workers[w].running.is_none() {
                        ctx.schedule_now(Ev::WorkerPoll(w));
                    }
                } else {
                    ctx.probe().count("worker.ring_drops");
                    self.ddio.release(placement, lines);
                }
            }
            Ev::WorkerPoll(w) => self.worker_poll(w, ctx),
            Ev::WorkerRunEnd { worker, gen } => self.worker_run_end(worker, gen, ctx),
            Ev::RxNotif(bytes) => {
                self.rx.queue.push_back(bytes);
                ctx.probe().depth("rx.queue", self.rx.queue.len());
                self.start_rx(ctx);
            }
            Ev::RxDone => {
                self.rx.busy = false;
                self.rx.processed += 1;
                ctx.probe().busy("rx", false);
                ctx.probe().count("rx.notifs");
                if let Some(bytes) = self.rx.queue.pop_front() {
                    ctx.probe().depth("rx.queue", self.rx.queue.len());
                    if let Ok(parsed) = ParsedFrame::parse(&bytes) {
                        if let Some(&w) = self.worker_by_mac.get(&parsed.eth.src_addr) {
                            let msg = parsed.msg;
                            let item = match msg.kind {
                                MsgKind::Done => Some(QmItem::Done {
                                    worker: w,
                                    req_id: msg.req_id,
                                }),
                                MsgKind::Preempted => {
                                    let arrived = self
                                        .task_meta
                                        .get(&msg.req_id)
                                        .copied()
                                        .unwrap_or(ctx.now());
                                    Some(QmItem::Preempted {
                                        worker: w,
                                        task: Task {
                                            req_id: msg.req_id,
                                            client_id: msg.client_id,
                                            service: SimDuration::from_nanos(msg.service_ns),
                                            remaining: SimDuration::from_nanos(msg.remaining_ns),
                                            sent_at: SimTime::from_nanos(msg.sent_at_ns),
                                            arrived_at: arrived,
                                            body_len: msg.body_len,
                                            preemptions: 0,
                                            preempt: PreemptDecision::Inherit,
                                        },
                                    })
                                }
                                MsgKind::Heartbeat => Some(QmItem::Heartbeat { worker: w }),
                                _ => None,
                            };
                            if let Some(item) = item {
                                ctx.schedule_in(self.cfg.profile.stage_hop, Ev::QmPush(item));
                            }
                        }
                    }
                }
                self.start_rx(ctx);
            }
            Ev::ClientResp(bytes) => {
                if let Ok(parsed) = ParsedFrame::parse(&bytes) {
                    if parsed.msg.kind == MsgKind::Nack {
                        ctx.probe().count("client.nacks");
                        let req_id = parsed.msg.req_id;
                        if let TimeoutOutcome::Retry {
                            frame,
                            attempt,
                            timeout,
                        } = self.client.on_nack(ctx.now(), req_id)
                        {
                            ctx.probe().count("client.retries");
                            self.send_request(&frame, ctx);
                            ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                        }
                        return;
                    }
                    ctx.probe().count("client.responses");
                    ctx.probe().finish(parsed.msg.req_id, "path.6_response");
                    self.client.on_response(ctx.now(), &parsed);
                }
            }
            Ev::ClientTimeout { req_id, attempt } => {
                if let TimeoutOutcome::Retry {
                    frame,
                    attempt,
                    timeout,
                } = self.client.on_timeout(ctx.now(), req_id, attempt)
                {
                    ctx.probe().count("client.retries");
                    self.send_request(&frame, ctx);
                    ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                }
            }
            Ev::Heartbeat(w) => {
                let now = ctx.now();
                if now >= self.horizon {
                    return;
                }
                let silenced =
                    ctx.faults().worker_down(w, now) || ctx.faults().feedback_blackout(now);
                let occupancy = self.dispatcher.outstanding(w);
                let busy = self.workers[w].running.is_some();
                let mut assignments = Vec::new();
                let mut next = None;
                if let Some(gov) = self.governor.as_mut() {
                    if !silenced {
                        gov.report(now, w, occupancy, busy);
                    }
                    let was_degraded = gov.is_degraded();
                    gov.evaluate(now, &mut self.dispatcher);
                    if gov.is_degraded() != was_degraded {
                        ctx.probe().count("fallback.switch");
                    }
                    assignments = self.dispatcher.kick(now);
                    next = Some(gov.policy().heartbeat);
                }
                if let Some(policy) = self.recovery {
                    // Worker side: lease renewal rides a real Heartbeat
                    // frame over the notification wire — a silenced worker
                    // (crashed, stalled, or blacked out) cannot renew.
                    if !silenced {
                        let hb = self.notif_spec(
                            w,
                            MsgRepr {
                                kind: MsgKind::Heartbeat,
                                req_id: 0,
                                client_id: 0,
                                service_ns: 0,
                                remaining_ns: occupancy as u64,
                                sent_at_ns: now.as_nanos(),
                                body_len: 0,
                                grant_code: 0,
                            },
                        );
                        ctx.schedule_at(
                            now + self.cfg.profile.from_worker,
                            Ev::RxNotif(hb.build()),
                        );
                    }
                    // NIC side: expire leases and re-dispatch orphans on the
                    // same tick, so detection shares the indexed event queue
                    // with everything else (no wall clocks).
                    let recovered = self.dispatcher.check_health(now);
                    if !recovered.is_empty() {
                        ctx.probe().count("recovery.redispatch");
                    }
                    assignments.extend(recovered);
                    next = Some(
                        next.map_or(policy.heartbeat, |n: SimDuration| n.min(policy.heartbeat)),
                    );
                }
                self.emit_assignments(assignments, ctx);
                if let Some(interval) = next {
                    ctx.schedule_in(interval, Ev::Heartbeat(w));
                }
            }
        }
    }
}

/// Run a Shinjuku-Offload simulation with stage-level observability.
pub fn run_probed(spec: WorkloadSpec, cfg: OffloadConfig, probe: ProbeConfig) -> RunMetrics {
    run_resilient_probed(spec, cfg, probe, ResilienceConfig::default())
}

/// Run a Shinjuku-Offload simulation with fault injection, client
/// retries, admission control, and the stale-feedback governor layered
/// over the fault-free assembly.
pub fn run_resilient_probed(
    spec: WorkloadSpec,
    cfg: OffloadConfig,
    probe: ProbeConfig,
    res: ResilienceConfig,
) -> RunMetrics {
    let mut engine = Engine::new(Offload::new(spec, cfg, res));
    engine.set_probe(Probe::new(probe));
    engine.set_invariants(crate::common::checker_for(&res));
    if res.is_active() {
        engine.set_faults(FaultPlan::new(res.faults, spec.seed ^ FAULT_SEED_SALT));
    }
    engine.schedule_at(SimTime::ZERO, Ev::ClientSend);
    if engine.model().governor.is_some() || engine.model().recovery.is_some() {
        for w in 0..cfg.workers {
            engine.schedule_at(SimTime::ZERO, Ev::Heartbeat(w));
        }
    }
    engine.run_until(spec.horizon());
    let horizon = spec.horizon();
    let model = engine.model();
    let util = model
        .workers
        .iter()
        .map(|w| w.core.utilization(horizon))
        .sum::<f64>()
        / model.workers.len() as f64;
    let ring_dropped = model.nic.total_drops();
    let mut metrics = assemble_metrics(&model.client, ring_dropped, model.preemptions, util);
    let fm = &mut metrics.faults;
    fm.req_link_lost = model.req_lost;
    fm.resp_link_lost = model.resp_lost;
    fm.ring_dropped = ring_dropped;
    fm.stranded = model.stranded;
    fm.shed = model.dispatcher.stats.shed;
    fm.nacks = model.nacks;
    if let Some(gov) = &model.governor {
        fm.fallback_switches = gov.switches;
        fm.fallback_ns = gov.fallback_ns(horizon);
        fm.quarantines = gov.quarantines;
    }
    if let Some(h) = model.dispatcher.health() {
        fm.recovered = model.dispatcher.stats.recovered;
        fm.recovery_duplicates = model.dispatcher.stats.late_duplicates;
        fm.suspicions = h.stats.suspicions;
        fm.readmissions = h.stats.readmissions;
    }
    metrics.dropped = ring_dropped + fm.link_lost() + fm.shed;
    if probe.enabled {
        metrics.stages = Some(engine.probe_mut().report(horizon));
    }
    crate::common::close_invariants(engine.take_invariants(), horizon, &metrics);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::ServiceDist;

    fn run(spec: WorkloadSpec, cfg: OffloadConfig) -> RunMetrics {
        run_probed(spec, cfg, ProbeConfig::disabled())
    }

    fn quick_spec(rps: f64, dist: ServiceDist) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: rps,
            dist,
            body_len: 64,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(20),
            seed: 42,
        }
    }

    #[test]
    fn light_load_completes_everything() {
        let spec = quick_spec(50_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(spec, OffloadConfig::paper(4, 4));
        assert!(m.completed > 500, "completed {}", m.completed);
        assert!(
            !m.saturated(0.05),
            "should not saturate at 50k rps: {}",
            m.row()
        );
        assert_eq!(m.dropped, 0);
    }

    #[test]
    fn latency_includes_the_nic_round_trip() {
        // At near-zero load a 1us request still pays: wire, networker, QM,
        // TX build + 1.88us, worker overheads, 1us work, response path.
        let spec = quick_spec(5_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
        let m = run(spec, OffloadConfig::paper(2, 2));
        assert!(
            m.p50 > SimDuration::from_micros(5),
            "p50 {} should include the NIC path",
            m.p50
        );
        assert!(
            m.p50 < SimDuration::from_micros(20),
            "p50 {} suspiciously high",
            m.p50
        );
    }

    #[test]
    fn saturation_at_overload() {
        // 4 workers at 5us = 800k rps ideal capacity; offer way beyond it.
        let spec = quick_spec(1_500_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(spec, OffloadConfig::paper(4, 4));
        assert!(m.saturated(0.05), "must saturate: {}", m.row());
        assert!(m.achieved_rps < 900_000.0, "achieved {}", m.achieved_rps);
        assert!(m.worker_utilization > 0.9, "workers should be pegged");
    }

    #[test]
    fn preemption_bounds_short_request_tail_under_dispersion() {
        let spec = quick_spec(300_000.0, ServiceDist::paper_bimodal());
        let with = run(spec, OffloadConfig::paper(4, 4));
        let without = run(
            spec,
            OffloadConfig {
                time_slice: None,
                ..OffloadConfig::paper(4, 4)
            },
        );
        assert!(
            with.preemptions > 0,
            "bimodal load must trigger preemptions"
        );
        assert_eq!(without.preemptions, 0);
        assert!(
            with.p99 < without.p99,
            "preemption should cut the tail: with={} without={}",
            with.p99,
            without.p99
        );
    }

    #[test]
    fn queuing_optimization_raises_throughput() {
        // The Figure 3 effect: more outstanding requests hide the NIC
        // round trip on short requests.
        let spec = quick_spec(1_200_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
        let k1 = run(
            spec,
            OffloadConfig {
                time_slice: None,
                ..OffloadConfig::paper(4, 1)
            },
        );
        let k5 = run(
            spec,
            OffloadConfig {
                time_slice: None,
                ..OffloadConfig::paper(4, 5)
            },
        );
        assert!(
            k5.achieved_rps > k1.achieved_rps * 1.5,
            "outstanding=5 ({:.0}) should beat outstanding=1 ({:.0}) by a lot",
            k5.achieved_rps,
            k1.achieved_rps
        );
    }

    #[test]
    fn ideal_profile_beats_stingray_on_short_requests() {
        let spec = quick_spec(1_000_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
        let stingray = run(spec, OffloadConfig::paper(4, 5));
        let ideal = run(
            spec,
            OffloadConfig {
                profile: NicProfile::ideal(),
                ..OffloadConfig::paper(4, 5)
            },
        );
        assert!(
            ideal.achieved_rps >= stingray.achieved_rps,
            "ideal {:.0} vs stingray {:.0}",
            ideal.achieved_rps,
            stingray.achieved_rps
        );
        assert!(
            ideal.p99 < stingray.p99,
            "ideal {} vs stingray {}",
            ideal.p99,
            stingray.p99
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = quick_spec(200_000.0, ServiceDist::paper_bimodal());
        let a = run(spec, OffloadConfig::paper(3, 4));
        let b = run(spec, OffloadConfig::paper(3, 4));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99, b.p99);
        assert_eq!(a.preemptions, b.preemptions);
    }
}

#[cfg(test)]
mod socket_tests {
    use super::*;
    use workload::ServiceDist;

    fn run(spec: WorkloadSpec, cfg: OffloadConfig) -> RunMetrics {
        run_probed(spec, cfg, ProbeConfig::disabled())
    }

    fn quick_spec(rps: f64) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: rps,
            // Short requests with big bodies: the packet-touch cost is a
            // visible fraction of the work.
            dist: ServiceDist::Fixed(SimDuration::from_micros(2)),
            body_len: 1024,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(20),
            seed: 42,
        }
    }

    #[test]
    fn dual_socket_costs_latency_vs_single() {
        let single = run(quick_spec(400_000.0), OffloadConfig::paper(8, 2));
        let dual = run(
            quick_spec(400_000.0),
            OffloadConfig {
                dual_socket: true,
                ..OffloadConfig::paper(8, 2)
            },
        );
        assert!(
            dual.p50 >= single.p50,
            "remote first touches must not make things faster: {} vs {}",
            dual.p50,
            single.p50
        );
    }

    #[test]
    fn socket_aware_selection_recovers_some_of_the_cost() {
        // At moderate load the socket-aware selector can keep most work on
        // socket 0 and avoid the QPI hop.
        let blind = run(
            quick_spec(300_000.0),
            OffloadConfig {
                dual_socket: true,
                ..OffloadConfig::paper(8, 2)
            },
        );
        let aware = run(
            quick_spec(300_000.0),
            OffloadConfig {
                dual_socket: true,
                socket_aware: true,
                ..OffloadConfig::paper(8, 2)
            },
        );
        assert!(
            aware.p50 <= blind.p50,
            "socket-aware selection should not be slower: {} vs {}",
            aware.p50,
            blind.p50
        );
        assert!(!aware.saturated(0.05) && !blind.saturated(0.05));
    }

    #[test]
    fn socket_aware_still_uses_remote_workers_at_high_load() {
        // Work conservation: at load beyond socket 0's capacity the
        // selector must spill to socket 1 rather than queue forever.
        // 4us requests with 64B bodies, so neither the 10GbE wire nor the
        // ARM TX stage binds before the local socket does: 4 local workers
        // cap at 1M; anything beyond proves remote workers are used.
        let spec = WorkloadSpec {
            offered_rps: 1_800_000.0,
            dist: ServiceDist::Fixed(SimDuration::from_micros(4)),
            body_len: 64,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(20),
            seed: 42,
        };
        let m = run(
            spec,
            OffloadConfig {
                dual_socket: true,
                socket_aware: true,
                time_slice: None,
                ..OffloadConfig::paper(8, 2)
            },
        );
        assert!(
            m.achieved_rps > 1_050_000.0,
            "must spill to the remote socket: {:.0}",
            m.achieved_rps
        );
    }
}

#[cfg(test)]
mod jit_tests {
    use super::*;
    use workload::ServiceDist;

    fn run(spec: WorkloadSpec, cfg: OffloadConfig) -> RunMetrics {
        run_probed(spec, cfg, ProbeConfig::disabled())
    }

    fn over_capacity_spec() -> WorkloadSpec {
        // 4 workers x 5.475us mean = ~730k capacity; offer 850k.
        WorkloadSpec {
            offered_rps: 850_000.0,
            dist: ServiceDist::paper_bimodal(),
            body_len: 64,
            warmup: SimDuration::from_millis(5),
            measure: SimDuration::from_millis(30),
            seed: 42,
        }
    }

    #[test]
    fn jit_pacing_bounds_the_tail_under_overload() {
        let open = run(over_capacity_spec(), OffloadConfig::paper(4, 4));
        let jit = run(
            over_capacity_spec(),
            OffloadConfig {
                jit_target_depth: Some(16),
                ..OffloadConfig::paper(4, 4)
            },
        );
        // Open loop over capacity: the centralized queue grows without
        // bound and the tail explodes. JIT throttles to ~capacity and
        // keeps the queue at the setpoint (§5.2: "just in time for
        // processing").
        assert!(
            open.saturated(0.05),
            "open loop must saturate: {}",
            open.row()
        );
        assert!(
            jit.p99 < open.p99 / 4,
            "JIT should collapse the overload tail: {} vs {}",
            jit.p99,
            open.p99
        );
        // The price: JIT gives up some throughput to hold the setpoint.
        assert!(
            jit.achieved_rps > open.achieved_rps * 0.75,
            "JIT throughput {:.0} should stay near capacity {:.0}",
            jit.achieved_rps,
            open.achieved_rps
        );
    }

    #[test]
    fn jit_is_inert_below_capacity() {
        let spec = WorkloadSpec {
            offered_rps: 300_000.0,
            ..over_capacity_spec()
        };
        let open = run(spec, OffloadConfig::paper(4, 4));
        let jit = run(
            spec,
            OffloadConfig {
                jit_target_depth: Some(16),
                ..OffloadConfig::paper(4, 4)
            },
        );
        // Below the setpoint the pacer stays at full rate.
        assert!(!jit.saturated(0.05), "{}", jit.row());
        let ratio = jit.achieved_rps / open.achieved_rps;
        assert!((0.97..1.03).contains(&ratio), "throughput ratio {ratio}");
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use workload::{ArrivalProcess, ServiceDist};

    fn run(spec: WorkloadSpec, cfg: OffloadConfig) -> RunMetrics {
        run_probed(spec, cfg, ProbeConfig::disabled())
    }

    fn quick_spec(rps: f64) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: rps,
            dist: ServiceDist::Fixed(SimDuration::from_micros(5)),
            body_len: 64,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(25),
            seed: 42,
        }
    }

    #[test]
    fn one_percent_wire_loss_costs_about_two_percent_goodput() {
        // Requests and responses each cross a 1%-lossy wire: expect ~2%
        // of round trips to fail — and nothing to wedge.
        let clean = run(quick_spec(300_000.0), OffloadConfig::paper(4, 4));
        let lossy = run(
            quick_spec(300_000.0),
            OffloadConfig {
                wire_loss: 0.01,
                ..OffloadConfig::paper(4, 4)
            },
        );
        let ratio = lossy.achieved_rps / clean.achieved_rps;
        assert!(
            (0.955..0.995).contains(&ratio),
            "goodput ratio {ratio} should reflect ~2% round-trip loss"
        );
        // The tail of *delivered* responses is unaffected — loss is not
        // congestion.
        assert!(lossy.p99 < clean.p99 * 2, "{} vs {}", lossy.p99, clean.p99);
    }

    #[test]
    fn lossy_run_is_deterministic() {
        let cfg = OffloadConfig {
            wire_loss: 0.02,
            ..OffloadConfig::paper(4, 4)
        };
        let a = run(quick_spec(200_000.0), cfg);
        let b = run(quick_spec(200_000.0), cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99, b.p99);
    }

    #[test]
    fn loss_and_crash_accounts_for_every_request() {
        // The ISSUE-2 acceptance scenario: 1% wire loss plus worker 1
        // crashing mid-run, with retries and the staleness governor on.
        let spec = quick_spec(300_000.0);
        let res = crate::common::ResilienceConfig::loss_and_crash(1, SimTime::from_millis(10));
        let m = run_resilient_probed(
            spec,
            OffloadConfig::paper(4, 4),
            ProbeConfig::disabled(),
            res,
        );
        let f = &m.faults;
        assert_eq!(f.unaccounted(), 0, "request ledger must close: {f:?}");
        assert!(f.in_pipe() >= 0, "attempt ledger went negative: {f:?}");
        assert!(
            f.in_pipe() < 200,
            "attempt residue should be pipeline-depth bounded: {f:?}"
        );
        assert!(f.retries > 0, "1% loss must trigger retries");
        assert!(f.link_lost() > 0, "losses must be counted");
        assert!(
            f.quarantines >= 1,
            "the crashed worker must be quarantined: {f:?}"
        );
        assert!(
            f.stranded > 0,
            "work on the crashed worker must be stranded, not lost silently"
        );
        // Three healthy workers still carry the offered load.
        assert!(m.completed > 1000, "completed {}", m.completed);
    }

    #[test]
    fn resilient_run_is_deterministic() {
        let spec = quick_spec(250_000.0);
        let res = crate::common::ResilienceConfig::loss_and_crash(0, SimTime::from_millis(8));
        let cfg = OffloadConfig::paper(4, 4);
        let a = run_resilient_probed(spec, cfg, ProbeConfig::disabled(), res);
        let b = run_resilient_probed(spec, cfg, ProbeConfig::disabled(), res);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99, b.p99);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn feedback_blackout_degrades_then_recovers() {
        use sim_core::faults::FaultConfig;
        let spec = quick_spec(200_000.0);
        let res = crate::common::ResilienceConfig {
            faults: FaultConfig::default()
                .with_blackout(SimTime::from_millis(8), SimTime::from_millis(12)),
            retry: Some(workload::RetryPolicy::paper_default()),
            fallback: Some(crate::common::StalenessPolicy::paper_default()),
            ..Default::default()
        };
        let m = run_resilient_probed(
            spec,
            OffloadConfig::paper(4, 4),
            ProbeConfig::disabled(),
            res,
        );
        let f = &m.faults;
        assert!(
            f.fallback_switches >= 1,
            "a 4 ms blackout must trip the hashed fallback: {f:?}"
        );
        assert!(
            f.fallback_ns > 3_000_000,
            "fallback should cover most of the blackout: {} ns",
            f.fallback_ns
        );
        assert!(
            f.fallback_ns < 8_000_000,
            "fallback must lift after reports resume: {} ns",
            f.fallback_ns
        );
        assert_eq!(f.unaccounted(), 0);
    }

    #[test]
    fn nack_shedding_beats_silent_drops_on_reaction_time() {
        use nicsched::AdmissionPolicy;
        // Overload the system so admission control actually bites.
        let spec = quick_spec(1_200_000.0);
        let base = crate::common::ResilienceConfig {
            retry: Some(workload::RetryPolicy::paper_default()),
            ..Default::default()
        };
        let silent = run_resilient_probed(
            spec,
            OffloadConfig::paper(4, 4),
            ProbeConfig::disabled(),
            crate::common::ResilienceConfig {
                admission: AdmissionPolicy::TailDrop { cap: 64 },
                ..base
            },
        );
        let nacked = run_resilient_probed(
            spec,
            OffloadConfig::paper(4, 4),
            ProbeConfig::disabled(),
            crate::common::ResilienceConfig {
                admission: AdmissionPolicy::NackShed { cap: 64 },
                ..base
            },
        );
        assert!(silent.faults.shed > 0 && nacked.faults.shed > 0);
        assert_eq!(silent.faults.nacks, 0);
        assert!(nacked.faults.nacks > 0, "NACK frames must be sent");
        // NACKs tell the client immediately; silent shedding burns the
        // full timeout per drop, so clients learn late and time out more.
        assert!(
            nacked.faults.timeouts < silent.faults.timeouts,
            "early NACKs should pre-empt timeouts: {} vs {}",
            nacked.faults.timeouts,
            silent.faults.timeouts
        );
        assert_eq!(silent.faults.unaccounted(), 0);
        assert_eq!(nacked.faults.unaccounted(), 0);
    }

    #[test]
    fn bursty_arrivals_inflate_the_tail_at_equal_mean_load() {
        let mean_rate = 400_000.0;
        let poisson = run(quick_spec(mean_rate), OffloadConfig::paper(4, 4));
        let bursty = run(
            quick_spec(mean_rate),
            OffloadConfig {
                // Short dwells so the 25ms window averages many
                // calm/burst cycles; bursts run near the 4-worker
                // capacity (800k) while the long-run mean stays 400k.
                arrivals: Some(ArrivalProcess::Bursty {
                    calm_rps: 100_000.0,
                    burst_rps: 700_000.0,
                    calm_dwell: SimDuration::from_micros(200),
                    burst_dwell: SimDuration::from_micros(200),
                }),
                ..OffloadConfig::paper(4, 4)
            },
        );
        // Same long-run rate...
        assert!(
            (bursty.achieved_rps / poisson.achieved_rps - 1.0).abs() < 0.1,
            "{:.0} vs {:.0}",
            bursty.achieved_rps,
            poisson.achieved_rps
        );
        // ...but bursts above capacity back the queue up.
        assert!(
            bursty.p99 > poisson.p99,
            "bursts must inflate the tail: {} vs {}",
            bursty.p99,
            poisson.p99
        );
    }
}
