//! RPCValet-style NI-integrated scheduling (Daglis et al., ASPLOS '19 —
//! §2.1/§2.2 of the paper).
//!
//! RPCValet integrates a network interface *on each core* and maintains a
//! centralized task queue in hardware: "Due to this integration, the
//! system has fine-grained knowledge of the load on each core" (§2.1), so
//! it balances perfectly with nanosecond-scale dispatch and none of the
//! software dispatcher's throughput cap. What it lacks — the paper's
//! critique (§2.2(2)) — is preemption and configurability: a long request
//! still blocks its core.
//!
//! Model: requests arrive at a hardware global queue (dispatch cost a few
//! nanoseconds, NI-to-core delivery tens of nanoseconds, single request in
//! flight per core — RPCValet's design point), run to completion, respond
//! directly. The same [`nicsched::Dispatcher`] provides the queue
//! semantics, configured with cap 1; the "hardware" is a compute model
//! with near-zero stage costs.

use bytes::Bytes;
use cpu_model::{ContextCosts, ContextPool, Core, CoreId, CoreSpec};
use net_wire::{FrameSpec, MsgKind, MsgRepr, ParsedFrame};
use nic_model::Link;
use nicsched::{params, Dispatcher, Fcfs, LeastOutstanding, RecoveryPolicy, Task};
use sim_core::{Ctx, Engine, FaultPlan, Model, Probe, ProbeConfig, Rng, SimDuration, SimTime};
use workload::{RunMetrics, WorkloadSpec};

use crate::common::{
    assemble_metrics, scale_duration, AddressPlan, Client, ResilienceConfig, TimeoutOutcome,
    FAULT_SEED_SALT,
};

/// Configuration of an RPCValet-style system.
#[derive(Debug, Clone, Copy)]
pub struct RpcValetConfig {
    /// Worker cores, each with an integrated NI.
    pub workers: usize,
}

/// Hardware dispatch decision cost: the NI's queue pop plus arbitration —
/// a couple of pipeline stages, not a CPU core (§2.1: the global queue is
/// implemented in hardware).
const HW_DISPATCH: SimDuration = SimDuration::from_nanos(8);

/// NI-to-core delivery: the payoff of integrating the NI with the core —
/// no PCIe crossing ("putting the NIC 'close' to the cores", §2.1).
const NI_TO_CORE: SimDuration = SimDuration::from_nanos(40);

enum Ev {
    ClientSend,
    /// A request frame arrives at the integrated NI fabric.
    NiArrive(Bytes),
    /// The hardware queue issues a task to a core.
    Deliver(usize, Task),
    WorkerRunEnd(usize),
    ClientResp(Bytes),
    /// A client retransmit timer fires for one attempt of one request.
    ClientTimeout {
        req_id: u64,
        attempt: u32,
    },
    /// The integrated NI's periodic failure-detector sweep (recovery
    /// only). Lease renewal is hardware-observed core liveness — no
    /// heartbeat frames cross a wire in this design.
    HealthTick,
}

struct Worker {
    core: Core,
    running: Option<Task>,
    /// When the worker last went idle (for feedback-gap measurement).
    idle_since: Option<SimTime>,
}

struct RpcValet {
    client: Client,
    horizon: SimTime,
    client_link: Link,
    server_link: Link,
    dispatcher: Dispatcher<Fcfs, LeastOutstanding>,
    workers: Vec<Worker>,
    ctx_pool: ContextPool,
    ctx_costs: ContextCosts,
    host: CoreSpec,

    /// NIC-side failure-detection policy, when recovery is enabled.
    recovery: Option<RecoveryPolicy>,
    req_lost: u64,
    resp_lost: u64,
    stranded: u64,
}

impl RpcValet {
    fn new(spec: WorkloadSpec, cfg: RpcValetConfig, res: ResilienceConfig) -> RpcValet {
        let mut master = Rng::new(spec.seed);
        let mut client = Client::new(spec, &mut master);
        if let Some(policy) = res.retry {
            client.enable_retries(policy);
        }
        let (client_link, server_link) = if res.faults.wire_loss > 0.0 {
            (
                Link::ten_gbe().with_loss(res.faults.wire_loss, master.fork()),
                Link::ten_gbe().with_loss(res.faults.wire_loss, master.fork()),
            )
        } else {
            (Link::ten_gbe(), Link::ten_gbe())
        };
        let t0 = SimTime::ZERO;
        // One request in flight per core: RPCValet's N=1 design point,
        // which its paper shows is optimal for its hardware queue.
        let mut dispatcher = Dispatcher::new(cfg.workers, 1, Fcfs::new(), LeastOutstanding);
        if let Some(policy) = res.recovery {
            dispatcher.enable_recovery(policy);
        }
        RpcValet {
            dispatcher,
            horizon: spec.horizon(),
            client,
            client_link,
            server_link,
            workers: (0..cfg.workers)
                .map(|w| Worker {
                    core: Core::new(CoreId(w as u32), CoreSpec::host_x86(), t0),
                    running: None,
                    idle_since: Some(t0),
                })
                .collect(),
            ctx_pool: ContextPool::new(),
            ctx_costs: ContextCosts::default(),
            host: CoreSpec::host_x86(),
            recovery: res.recovery,
            req_lost: 0,
            resp_lost: 0,
            stranded: 0,
        }
    }

    /// Transmit a client→NI frame over the (possibly lossy) request wire.
    fn send_request(&mut self, spec: &FrameSpec, ctx: &mut Ctx<'_, Ev>) {
        let payload_len = spec.frame_len() - net_wire::ethernet::HEADER_LEN;
        let bytes = spec.build();
        let now = ctx.now();
        if ctx.faults().burst_frame_lost(now) {
            self.req_lost += 1;
            ctx.probe().count("wire.req_lost");
            return;
        }
        match self.client_link.transmit_lossy(now, payload_len) {
            Some(arrive) => ctx.schedule_at(arrive, Ev::NiArrive(bytes)),
            None => {
                self.req_lost += 1;
                ctx.probe().count("wire.req_lost");
            }
        }
    }

    /// Transmit an NI→client response starting at `depart`.
    fn send_response(&mut self, spec: &FrameSpec, depart: SimTime, ctx: &mut Ctx<'_, Ev>) {
        let payload_len = spec.frame_len() - net_wire::ethernet::HEADER_LEN;
        let bytes = spec.build();
        if ctx.faults().burst_frame_lost(depart) {
            self.resp_lost += 1;
            ctx.probe().count("wire.resp_lost");
            return;
        }
        match self.server_link.transmit_lossy(depart, payload_len) {
            Some(arrive) => ctx.schedule_at(arrive, Ev::ClientResp(bytes)),
            None => {
                self.resp_lost += 1;
                ctx.probe().count("wire.resp_lost");
            }
        }
    }

    fn emit(&mut self, assignments: Vec<nicsched::Assignment>, ctx: &mut Ctx<'_, Ev>) {
        for a in assignments {
            ctx.schedule_in(HW_DISPATCH + NI_TO_CORE, Ev::Deliver(a.worker, a.task));
        }
    }
}

impl Model for RpcValet {
    type Event = Ev;

    fn check_invariants(&self, now: SimTime, inv: &mut sim_core::InvariantChecker) {
        self.client.check_invariants(now, inv);
        // Cap-1 hardware dispatch: a worker running a task must not also
        // be marked idle, or the idle-gap accounting double-books time.
        for (w, worker) in self.workers.iter().enumerate() {
            if worker.running.is_some() && worker.idle_since.is_some() {
                inv.record(
                    now,
                    "worker-state",
                    format!("worker {w} runs a task but is still marked idle"),
                );
            }
        }
    }

    fn handle(&mut self, event: Ev, ctx: &mut Ctx<'_, Ev>) {
        match event {
            Ev::ClientSend => {
                if ctx.now() >= self.horizon {
                    return;
                }
                let spec = self.client.make_request(ctx.now());
                ctx.probe().count("client.sent");
                ctx.probe().mark(spec.msg.req_id, "path.0_client_send");
                let req_id = spec.msg.req_id;
                self.send_request(&spec, ctx);
                if let Some((attempt, timeout)) = self.client.arm_timeout(req_id) {
                    ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                }
                let gap = self.client.next_gap();
                ctx.schedule_in(gap, Ev::ClientSend);
            }
            Ev::NiArrive(bytes) => {
                let Ok(parsed) = ParsedFrame::parse(&bytes) else {
                    return;
                };
                if parsed.msg.kind != MsgKind::Request {
                    return;
                }
                let m = parsed.msg;
                ctx.probe().count("ni.requests");
                ctx.probe().mark(m.req_id, "path.1_ni_dispatch");
                let task = Task::new(
                    m.req_id,
                    m.client_id,
                    SimDuration::from_nanos(m.service_ns),
                    SimTime::from_nanos(m.sent_at_ns),
                    ctx.now(),
                    m.body_len,
                );
                let assignments = self.dispatcher.on_request(ctx.now(), task);
                let depth = self.dispatcher.queue_len();
                ctx.probe().depth("ni.queue", depth);
                self.emit(assignments, ctx);
            }
            Ev::Deliver(w, task) => {
                if self.dispatcher.absorb_stale_delivery(w, task.req_id) {
                    // The lease on this copy was reclaimed while it sat in
                    // the NI fabric (e.g. across a stall): the queue already
                    // re-dispatched the request, so the hardware drops the
                    // zombie instead of double-running it.
                    self.ctx_pool.discard(task.req_id);
                    ctx.probe().count("worker.zombie_dropped");
                    return;
                }
                {
                    let now = ctx.now();
                    if ctx.faults().worker_crashed(w, now) {
                        // Delivered into a dead core. The hardware queue
                        // never sees a completion, so its cap-1 slot stays
                        // occupied and no further work lands here.
                        self.ctx_pool.discard(task.req_id);
                        self.stranded += 1;
                        ctx.probe().count("worker.stranded");
                        return;
                    }
                    if let Some(resume) = ctx.faults().worker_stalled_until(w, now) {
                        ctx.schedule_at(resume, Ev::Deliver(w, task));
                        return;
                    }
                }
                debug_assert!(self.workers[w].running.is_none(), "cap-1 violated");
                if let Some(idle_at) = self.workers[w].idle_since.take() {
                    let gap = ctx.now().saturating_duration_since(idle_at);
                    ctx.probe().hop("worker.idle_gap", gap);
                }
                ctx.probe().mark(task.req_id, "path.2_worker_start");
                ctx.probe().busy_i("worker", w, true);
                let overhead = ContextPool::op_cost(
                    self.ctx_pool.begin(task.req_id),
                    &self.ctx_costs,
                    &self.host,
                );
                let slow = {
                    let now = ctx.now();
                    ctx.faults().worker_slowdown(w, now)
                };
                let worker = &mut self.workers[w];
                worker.core.set_busy(ctx.now());
                let remaining = task.remaining;
                worker.running = Some(task);
                let wall = if slow > 1.0 {
                    scale_duration(overhead + remaining, slow)
                } else {
                    overhead + remaining
                };
                ctx.schedule_in(wall, Ev::WorkerRunEnd(w));
            }
            Ev::WorkerRunEnd(w) => {
                let task = self.workers[w].running.take().expect("running");
                let now = ctx.now();
                if ctx.faults().worker_crashed(w, now) {
                    // Died mid-request: no response, no completion signal.
                    self.ctx_pool.discard(task.req_id);
                    self.stranded += 1;
                    ctx.probe().count("worker.stranded");
                    return;
                }
                ctx.probe().count("worker.completed");
                ctx.probe().mark(task.req_id, "path.3_worker_done");
                ctx.probe().busy_i("worker", w, false);
                self.workers[w].idle_since = Some(now);
                let resp_built = now + params::WORKER_TX_COST;
                let resp = FrameSpec {
                    src_mac: AddressPlan::dispatcher_mac(),
                    dst_mac: AddressPlan::client_mac(),
                    src: AddressPlan::worker_ep(w),
                    dst: AddressPlan::client_ep(),
                    msg: MsgRepr {
                        kind: MsgKind::Response,
                        req_id: task.req_id,
                        client_id: task.client_id,
                        service_ns: task.service.as_nanos(),
                        remaining_ns: 0,
                        sent_at_ns: task.sent_at.as_nanos(),
                        body_len: task.body_len,
                        grant_code: 0,
                    },
                };
                // Integrated NI: the response departs without a PCIe hop.
                self.send_response(&resp, resp_built, ctx);
                self.ctx_pool.discard(task.req_id);
                let worker = &mut self.workers[w];
                worker.core.requests_run += 1;
                worker.core.set_idle(resp_built);
                // The hardware queue reacts to the completion within the
                // NI fabric's delivery delay — the "fine-grained knowledge
                // of the load on each core" of §2.1.
                let assignments = self.dispatcher.on_done(now, w, task.req_id);
                self.emit(assignments, ctx);
            }
            Ev::ClientResp(bytes) => {
                if let Ok(parsed) = ParsedFrame::parse(&bytes) {
                    ctx.probe().count("client.responses");
                    ctx.probe().finish(parsed.msg.req_id, "path.4_response");
                    self.client.on_response(ctx.now(), &parsed);
                }
            }
            Ev::ClientTimeout { req_id, attempt } => {
                if let TimeoutOutcome::Retry {
                    frame,
                    attempt,
                    timeout,
                } = self.client.on_timeout(ctx.now(), req_id, attempt)
                {
                    ctx.probe().count("client.retries");
                    self.send_request(&frame, ctx);
                    ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                }
            }
            Ev::HealthTick => {
                let now = ctx.now();
                if now >= self.horizon {
                    return;
                }
                let Some(policy) = self.recovery else {
                    return;
                };
                // The integrated NI reads core liveness directly off the
                // fabric: every core that is not crashed or stalled renews
                // its lease for free. Detection then falls entirely on the
                // cores the hardware cannot see making progress.
                let mut assignments = Vec::new();
                for w in 0..self.workers.len() {
                    if !ctx.faults().worker_down(w, now) {
                        assignments.extend(self.dispatcher.on_heartbeat(now, w));
                    }
                }
                let recovered = self.dispatcher.check_health(now);
                if !recovered.is_empty() {
                    ctx.probe().count("recovery.redispatch");
                }
                assignments.extend(recovered);
                self.emit(assignments, ctx);
                ctx.schedule_in(policy.heartbeat, Ev::HealthTick);
            }
        }
    }
}

/// Run an RPCValet-style simulation with stage-level observability.
pub fn run_probed(spec: WorkloadSpec, cfg: RpcValetConfig, probe: ProbeConfig) -> RunMetrics {
    run_resilient_probed(spec, cfg, probe, ResilienceConfig::default())
}

/// Run an RPCValet-style simulation with fault injection and client
/// retries. The integrated NI has per-nanosecond load knowledge, so the
/// staleness-fallback settings in `res` are ignored (there is no stale
/// feedback to degrade on), as is the admission policy (the hardware
/// global queue is lossless).
pub fn run_resilient_probed(
    spec: WorkloadSpec,
    cfg: RpcValetConfig,
    probe: ProbeConfig,
    res: ResilienceConfig,
) -> RunMetrics {
    let mut engine = Engine::new(RpcValet::new(spec, cfg, res));
    engine.set_probe(Probe::new(probe));
    engine.set_invariants(crate::common::checker_for(&res));
    if res.is_active() {
        engine.set_faults(FaultPlan::new(res.faults, spec.seed ^ FAULT_SEED_SALT));
    }
    engine.schedule_at(SimTime::ZERO, Ev::ClientSend);
    if engine.model().recovery.is_some() {
        engine.schedule_at(SimTime::ZERO, Ev::HealthTick);
    }
    engine.run_until(spec.horizon());
    let horizon = spec.horizon();
    let model = engine.model();
    let util = model
        .workers
        .iter()
        .map(|w| w.core.utilization(horizon))
        .sum::<f64>()
        / model.workers.len() as f64;
    let mut metrics = assemble_metrics(&model.client, 0, 0, util);
    let fm = &mut metrics.faults;
    fm.req_link_lost = model.req_lost;
    fm.resp_link_lost = model.resp_lost;
    fm.stranded = model.stranded;
    if let Some(h) = model.dispatcher.health() {
        fm.recovered = model.dispatcher.stats.recovered;
        fm.recovery_duplicates = model.dispatcher.stats.late_duplicates;
        fm.suspicions = h.stats.suspicions;
        fm.readmissions = h.stats.readmissions;
    }
    metrics.dropped = fm.link_lost();
    if probe.enabled {
        metrics.stages = Some(engine.probe_mut().report(horizon));
    }
    crate::common::close_invariants(engine.take_invariants(), horizon, &metrics);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::ServiceDist;

    fn run(spec: WorkloadSpec, cfg: RpcValetConfig) -> RunMetrics {
        run_probed(spec, cfg, ProbeConfig::disabled())
    }

    fn quick_spec(rps: f64, dist: ServiceDist) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: rps,
            dist,
            body_len: 64,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(15),
            seed: 42,
        }
    }

    #[test]
    fn hardware_queue_scales_past_the_software_dispatcher() {
        // The §2.1 claim: no 5M/s dispatcher cap. 16 workers of 1us work
        // run to the wire's limit (a 64B-body request occupies 172 wire
        // bytes, so 10GbE carries at most ~7.27M of them per second),
        // beating host Shinjuku's dispatcher-capped throughput.
        let spec = quick_spec(7_000_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
        let valet = run(spec, RpcValetConfig { workers: 16 });
        let shinjuku = crate::shinjuku::run_probed(
            spec,
            crate::shinjuku::ShinjukuConfig {
                workers: 16,
                time_slice: None,
                policy: nicsched::PolicySpec::FCFS,
            },
            ProbeConfig::disabled(),
        );
        assert!(
            valet.achieved_rps > shinjuku.achieved_rps * 1.4,
            "hardware queue {:.1}M vs software dispatcher {:.1}M",
            valet.achieved_rps / 1e6,
            shinjuku.achieved_rps / 1e6
        );
        assert!(
            valet.achieved_rps > 6_500_000.0,
            "{:.0}",
            valet.achieved_rps
        );
    }

    #[test]
    fn ultra_low_latency_on_homogeneous_work() {
        // Centralized hardware queue at nanosecond dispatch: unloaded
        // latency beats every software design in the repository.
        let spec = quick_spec(100_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
        let valet = run(spec, RpcValetConfig { workers: 4 });
        let offload = crate::offload::run_probed(
            spec,
            crate::offload::OffloadConfig::paper(4, 4),
            ProbeConfig::disabled(),
        );
        assert!(valet.p50 < offload.p50, "{} vs {}", valet.p50, offload.p50);
    }

    #[test]
    fn no_preemption_means_dispersion_hurts() {
        // The paper's §2.2(2) critique: RPCValet "demonstrate[s] high tail
        // latency for highly-variable request service time distributions".
        // Under a strongly dispersive mix (5% at 200us) near saturation,
        // c-FCFS without preemption parks short requests behind the longs;
        // the preemptive offload bounds them near the slice despite its
        // much costlier communication path.
        let dist = ServiceDist::Bimodal {
            p_long: 0.05,
            short: SimDuration::from_micros(2),
            long: SimDuration::from_micros(200),
        };
        let spec = quick_spec(280_000.0, dist); // rho ~ 0.83 on 4 workers
        let valet = run(spec, RpcValetConfig { workers: 4 });
        let offload = crate::offload::run_probed(
            spec,
            crate::offload::OffloadConfig::paper(4, 4),
            ProbeConfig::disabled(),
        );
        assert!(
            valet.p99_short > offload.p99_short * 2,
            "short requests stuck behind 200us ones: valet {} vs offload {}",
            valet.p99_short,
            offload.p99_short
        );
    }

    #[test]
    fn perfect_balance_no_queueing_below_capacity() {
        let spec = quick_spec(500_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(spec, RpcValetConfig { workers: 4 });
        assert!(!m.saturated(0.05), "{}", m.row());
        // Central queue + perfect knowledge: p99 stays near service time
        // plus the wire at moderate load.
        assert!(m.p99 < SimDuration::from_micros(40), "p99 {}", m.p99);
    }

    #[test]
    fn loss_and_crash_accounts_for_every_request() {
        let spec = quick_spec(300_000.0, ServiceDist::paper_bimodal());
        let res = ResilienceConfig::loss_and_crash(1, SimTime::ZERO + SimDuration::from_millis(10));
        let run = || {
            run_resilient_probed(
                spec,
                RpcValetConfig { workers: 4 },
                ProbeConfig::disabled(),
                res,
            )
        };
        let m = run();
        let f = &m.faults;
        assert_eq!(f.unaccounted(), 0, "request ledger leaks: {f:?}");
        assert!(f.in_pipe() < 64, "attempt residue beyond pipeline: {f:?}");
        assert!(f.retries > 0, "loss never triggered a retry");
        // At most the in-flight task plus one queued delivery strand at the
        // dead core; the hardware queue stops feeding it after that.
        assert!(f.stranded >= 1 && f.stranded <= 2, "stranded {f:?}");
        assert!(m.completed > 1_000, "goodput collapsed: {}", m.row());
        let b = run();
        assert_eq!(m.faults, b.faults);
        assert_eq!(m.p99, b.p99);
    }

    #[test]
    fn deterministic() {
        let spec = quick_spec(300_000.0, ServiceDist::paper_bimodal());
        let a = run(spec, RpcValetConfig { workers: 4 });
        let b = run(spec, RpcValetConfig { workers: 4 });
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99, b.p99);
    }
}
