//! Vanilla Shinjuku: centralized preemptive scheduling on the host
//! (Kaffes et al., NSDI '19 — the baseline the paper compares against).
//!
//! The networking subsystem and the dispatcher run as two hyperthreads on
//! one physical host core (§4.1), so a server with `n` cores gets `n - 1`
//! workers. Requests flow NIC → networker → dispatcher → worker over
//! shared-memory queues whose hop latency is the §2.2 "2 µs of additional
//! tail latency" cost; the dispatcher's 200 ns/request budget is the §1
//! "5M requests per second" scaling limit.
//!
//! The scheduling semantics — centralized FIFO, preemption at the slice,
//! re-enqueue at the tail — are byte-identical to the offloaded system:
//! both embed [`nicsched::Dispatcher`]. Only placement and transport
//! differ, which is the paper's point.

use std::collections::VecDeque;

use bytes::Bytes;
use cpu_model::{ContextCosts, ContextPool, Core, CoreId, CoreSpec, OneShotTimer, TimerMode};
use net_wire::{FrameSpec, MsgKind, MsgRepr, ParsedFrame};
use nic_model::{IfaceId, Link, NicDevice, QueueSteering};
use nicsched::{
    params, AdmitOutcome, Assignment, Dispatcher, LeastOutstanding, PolicySpec, RecoveryPolicy,
    SchedPolicy, Task,
};
use sim_core::{Ctx, Engine, FaultPlan, Model, Probe, ProbeConfig, Rng, SimDuration, SimTime};
use workload::{RunMetrics, WorkloadSpec};

use crate::common::{
    assemble_metrics, scale_duration, AddressPlan, Client, FeedbackGovernor, ResilienceConfig,
    TimeoutOutcome, FAULT_SEED_SALT,
};

/// Configuration of a vanilla Shinjuku instance.
#[derive(Debug, Clone, Copy)]
pub struct ShinjukuConfig {
    /// Worker cores (the networker+dispatcher pair occupies one more
    /// physical core, which is why the paper's figures give Shinjuku one
    /// fewer worker than Shinjuku-Offload).
    pub workers: usize,
    /// Preemption time slice; `None` disables preemption.
    pub time_slice: Option<SimDuration>,
    /// Centralized queue policy (FCFS in the original system); a registry
    /// spec such as `PolicySpec::parse("srpt")`.
    pub policy: PolicySpec,
}

impl ShinjukuConfig {
    /// The paper's §4 configuration with the 10 µs slice.
    pub fn paper(workers: usize) -> ShinjukuConfig {
        ShinjukuConfig {
            workers,
            time_slice: Some(params::TIME_SLICE),
            policy: PolicySpec::FCFS,
        }
    }
}

/// Items crossing into the dispatcher thread.
#[derive(Debug, Clone, Copy)]
enum DispItem {
    NewTask(Task),
    Done {
        worker: usize,
        req_id: u64,
    },
    Preempted {
        worker: usize,
        task: Task,
    },
    /// A decided assignment being written to a worker queue (charged
    /// separately so dispatcher busy-time scales with fan-out).
    Emit(Assignment),
    /// A lease-renewal heartbeat from a worker (recovery only).
    Heartbeat {
        worker: usize,
    },
}

enum Ev {
    ClientSend,
    WireToNic(Bytes),
    NetworkerDone,
    DispPush(DispItem),
    DispDone,
    /// A task becomes visible in a worker's shared-memory inbox.
    WorkerTask(usize, Task),
    WorkerPoll(usize),
    WorkerRunEnd {
        worker: usize,
        gen: u64,
    },
    ClientResp(Bytes),
    /// A client retransmit timer fires for one attempt of one request.
    ClientTimeout {
        req_id: u64,
        attempt: u32,
    },
    /// A worker's periodic liveness heartbeat to the dispatcher governor.
    Heartbeat(usize),
}

struct Worker {
    core: Core,
    timer: OneShotTimer,
    inbox: VecDeque<Task>,
    running: Option<(Task, SimDuration)>,
}

struct Shinjuku {
    cfg: ShinjukuConfig,
    client: Client,
    horizon: SimTime,
    client_link: Link,
    server_link: Link,
    nic: NicDevice,
    net_iface: IfaceId,

    networker_busy: bool,
    disp_queue: VecDeque<DispItem>,
    disp_busy: bool,

    dispatcher: Dispatcher<Box<dyn SchedPolicy>, LeastOutstanding>,
    workers: Vec<Worker>,
    ctx_pool: ContextPool,
    ctx_costs: ContextCosts,
    host: CoreSpec,
    preemptions: u64,

    governor: Option<FeedbackGovernor>,
    /// NIC-side failure-detection policy, when recovery is enabled.
    recovery: Option<RecoveryPolicy>,
    req_lost: u64,
    resp_lost: u64,
    stranded: u64,
    nacks: u64,
}

impl Shinjuku {
    fn new(spec: WorkloadSpec, cfg: ShinjukuConfig, res: ResilienceConfig) -> Shinjuku {
        let mut master = Rng::new(spec.seed);
        let mut client = Client::new(spec, &mut master);
        if let Some(policy) = res.retry {
            client.enable_retries(policy);
        }
        let (client_link, server_link) = if res.faults.wire_loss > 0.0 {
            (
                Link::ten_gbe().with_loss(res.faults.wire_loss, master.fork()),
                Link::ten_gbe().with_loss(res.faults.wire_loss, master.fork()),
            )
        } else {
            (Link::ten_gbe(), Link::ten_gbe())
        };

        let mut nic = NicDevice::new(params::PCIE_DMA);
        let net_iface = nic.add_iface(
            AddressPlan::dispatcher_mac(),
            1,
            1024,
            QueueSteering::Single,
        );

        let t0 = SimTime::ZERO;
        let workers = (0..cfg.workers)
            .map(|w| Worker {
                core: Core::new(CoreId(w as u32), CoreSpec::host_x86(), t0),
                timer: OneShotTimer::new(),
                inbox: VecDeque::new(),
                running: None,
            })
            .collect();

        // Shinjuku keeps exactly one request in flight per worker: the
        // dispatcher assigns to *idle* workers only (§2.1).
        let mut dispatcher = Dispatcher::new(cfg.workers, 1, cfg.policy.build(), LeastOutstanding);
        dispatcher.set_admission(res.admission);
        if let Some(policy) = res.recovery {
            dispatcher.enable_recovery(policy);
        }
        let governor = res
            .fallback
            .map(|p| FeedbackGovernor::new(cfg.workers, params::HOST_QUEUE_HOP, p));

        Shinjuku {
            dispatcher,
            cfg,
            horizon: spec.horizon(),
            client,
            client_link,
            server_link,
            nic,
            net_iface,
            networker_busy: false,
            disp_queue: VecDeque::new(),
            disp_busy: false,
            workers,
            ctx_pool: ContextPool::new(),
            ctx_costs: ContextCosts::default(),
            host: CoreSpec::host_x86(),
            preemptions: 0,
            governor,
            recovery: res.recovery,
            req_lost: 0,
            resp_lost: 0,
            stranded: 0,
            nacks: 0,
        }
    }

    /// Transmit a client→NIC frame over the (possibly lossy) request wire.
    fn send_request(&mut self, spec: &FrameSpec, ctx: &mut Ctx<'_, Ev>) {
        let payload_len = spec.frame_len() - net_wire::ethernet::HEADER_LEN;
        let bytes = spec.build();
        let now = ctx.now();
        if ctx.faults().burst_frame_lost(now) {
            self.req_lost += 1;
            ctx.probe().count("wire.req_lost");
            return;
        }
        match self.client_link.transmit_lossy(now, payload_len) {
            Some(arrive) => ctx.schedule_at(arrive, Ev::WireToNic(bytes)),
            None => {
                self.req_lost += 1;
                ctx.probe().count("wire.req_lost");
            }
        }
    }

    /// Transmit a server→client frame (response or NACK) starting at
    /// `depart`.
    fn send_response(&mut self, spec: &FrameSpec, depart: SimTime, ctx: &mut Ctx<'_, Ev>) {
        let payload_len = spec.frame_len() - net_wire::ethernet::HEADER_LEN;
        let bytes = spec.build();
        if ctx.faults().burst_frame_lost(depart) {
            self.resp_lost += 1;
            ctx.probe().count("wire.resp_lost");
            return;
        }
        match self.server_link.transmit_lossy(depart, payload_len) {
            Some(arrive) => ctx.schedule_at(arrive, Ev::ClientResp(bytes)),
            None => {
                self.resp_lost += 1;
                ctx.probe().count("wire.resp_lost");
            }
        }
    }

    fn start_networker(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if !self.networker_busy && !self.nic.iface(self.net_iface).rx[0].is_empty() {
            self.networker_busy = true;
            ctx.probe().busy("networker", true);
            ctx.schedule_in(params::HOST_NET_PER_PACKET, Ev::NetworkerDone);
        }
    }

    fn disp_item_cost(item: &DispItem) -> SimDuration {
        match item {
            DispItem::NewTask(_) => params::HOST_DISPATCH_ENQUEUE,
            DispItem::Done { .. } | DispItem::Preempted { .. } => params::HOST_DISPATCH_COMPLETE,
            DispItem::Emit(_) => params::HOST_DISPATCH_ASSIGN,
            // A heartbeat is a single timestamp store on the tracker: charge
            // it like a completion notification (queue-op scale).
            DispItem::Heartbeat { .. } => params::HOST_DISPATCH_COMPLETE,
        }
    }

    fn start_dispatcher(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if !self.disp_busy {
            if let Some(item) = self.disp_queue.front() {
                self.disp_busy = true;
                let cost = Self::disp_item_cost(item);
                ctx.probe().busy("dispatcher", true);
                ctx.schedule_in(cost, Ev::DispDone);
            }
        }
    }

    fn worker_poll(&mut self, w: usize, ctx: &mut Ctx<'_, Ev>) {
        if self.workers[w].running.is_some() {
            return;
        }
        let now = ctx.now();
        if ctx.faults().worker_crashed(w, now) {
            return; // dead cores never poll again
        }
        if let Some(resume) = ctx.faults().worker_stalled_until(w, now) {
            ctx.schedule_at(resume, Ev::WorkerPoll(w));
            return;
        }
        let Some(task) = self.workers[w].inbox.pop_front() else {
            self.workers[w].core.set_idle(ctx.now());
            ctx.probe().busy_i("worker", w, false);
            return;
        };
        ctx.probe().mark(task.req_id, "path.3_worker_start");
        ctx.probe().busy_i("worker", w, true);
        ctx.probe()
            .depth_i("worker.inbox", w, self.workers[w].inbox.len());
        let ctx_op = self.ctx_pool.begin(task.req_id);
        let mut overhead = ContextPool::op_cost(ctx_op, &self.ctx_costs, &self.host);
        // The policy's per-dispatch grant (carried on the task — the
        // shared-memory path preserves it exactly) resolves against the
        // configured slice; `Inherit` reproduces the static timer.
        let run = match task.preempt.resolve(self.cfg.time_slice) {
            Some(slice) => {
                // Dune-mapped APIC timers — the mechanism Shinjuku itself
                // introduced (§3.4.4 cites its cost numbers).
                overhead += TimerMode::DuneMapped.set_cost(&self.host);
                task.remaining.min(slice)
            }
            None => task.remaining,
        };
        // A slowdown window stretches wall time; `run` stays in work
        // units so the finish/preempt decision at run end is unchanged.
        let slow = {
            let now = ctx.now();
            ctx.faults().worker_slowdown(w, now)
        };
        let wall = if slow > 1.0 {
            scale_duration(overhead + run, slow)
        } else {
            overhead + run
        };
        let worker = &mut self.workers[w];
        worker.core.set_busy(ctx.now());
        let end = ctx.now() + wall;
        let gen = worker.timer.arm(end);
        worker.running = Some((task, run));
        ctx.schedule_at(end, Ev::WorkerRunEnd { worker: w, gen });
    }

    fn worker_run_end(&mut self, w: usize, gen: u64, ctx: &mut Ctx<'_, Ev>) {
        if !self.workers[w].timer.accept(gen) {
            return;
        }
        let (task, run) = self.workers[w].running.take().expect("running task");
        let now = ctx.now();
        if ctx.faults().worker_crashed(w, now) {
            // The worker died mid-request: no response, no Done.
            self.ctx_pool.discard(task.req_id);
            self.stranded += 1;
            ctx.probe().count("worker.stranded");
            return;
        }
        if task.remaining <= run {
            ctx.probe().count("worker.completed");
            ctx.probe().mark(task.req_id, "path.4_worker_done");
            // Finished: response straight out the NIC; Done notification is
            // a shared-memory write visible one queue hop later.
            let resp_built = now + params::WORKER_TX_COST;
            let resp = FrameSpec {
                src_mac: AddressPlan::dispatcher_mac(),
                dst_mac: AddressPlan::client_mac(),
                src: AddressPlan::worker_ep(w),
                dst: AddressPlan::client_ep(),
                msg: MsgRepr {
                    kind: MsgKind::Response,
                    req_id: task.req_id,
                    client_id: task.client_id,
                    service_ns: task.service.as_nanos(),
                    remaining_ns: 0,
                    sent_at_ns: task.sent_at.as_nanos(),
                    body_len: task.body_len,
                    grant_code: 0,
                },
            };
            let depart = resp_built + self.nic.dma_latency;
            self.send_response(&resp, depart, ctx);

            self.ctx_pool.discard(task.req_id);
            self.workers[w].core.requests_run += 1;
            ctx.schedule_in(
                params::HOST_QUEUE_HOP,
                Ev::DispPush(DispItem::Done {
                    worker: w,
                    req_id: task.req_id,
                }),
            );
            ctx.schedule_at(resp_built, Ev::WorkerPoll(w));
        } else {
            // Slice expiry: posted interrupt, save, hand back via memory.
            let after = task.after_preemption(run);
            if self.ctx_pool.is_saved(after.req_id) {
                // A retransmitted copy of this request is already suspended:
                // kill this copy and free the worker slot via Done.
                ctx.probe().count("worker.dup_killed");
                let free_at = now + TimerMode::DuneMapped.deliver_cost(&self.host);
                ctx.schedule_at(
                    free_at + params::HOST_QUEUE_HOP,
                    Ev::DispPush(DispItem::Done {
                        worker: w,
                        req_id: after.req_id,
                    }),
                );
                ctx.schedule_at(free_at, Ev::WorkerPoll(w));
                return;
            }
            ctx.probe().count("worker.preempted");
            self.preemptions += 1;
            self.workers[w].core.preemptions += 1;
            self.ctx_pool.save(after.req_id);
            let free_at = now
                + TimerMode::DuneMapped.deliver_cost(&self.host)
                + self.ctx_costs.save(&self.host);
            ctx.schedule_at(
                free_at + params::HOST_QUEUE_HOP,
                Ev::DispPush(DispItem::Preempted {
                    worker: w,
                    task: after,
                }),
            );
            ctx.schedule_at(free_at, Ev::WorkerPoll(w));
        }
    }
}

impl Model for Shinjuku {
    type Event = Ev;

    fn check_invariants(&self, now: SimTime, inv: &mut sim_core::InvariantChecker) {
        self.nic.check_invariants(now, inv);
        self.client.check_invariants(now, inv);
    }

    fn handle(&mut self, event: Ev, ctx: &mut Ctx<'_, Ev>) {
        match event {
            Ev::ClientSend => {
                if ctx.now() >= self.horizon {
                    return;
                }
                let spec = self.client.make_request(ctx.now());
                let req_id = spec.msg.req_id;
                ctx.probe().count("client.sent");
                ctx.probe().mark(req_id, "path.0_client_send");
                self.send_request(&spec, ctx);
                if let Some((attempt, timeout)) = self.client.arm_timeout(req_id) {
                    ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                }
                let gap = self.client.next_gap();
                ctx.schedule_in(gap, Ev::ClientSend);
            }
            Ev::WireToNic(bytes) => {
                let Ok(parsed) = ParsedFrame::parse(&bytes) else {
                    return;
                };
                if let Some(d) = self.nic.steer(&parsed) {
                    // DMA into host memory, then the networker can see it.
                    self.nic.iface_mut(d.iface).rx[d.queue].push(ctx.now(), bytes);
                    self.start_networker(ctx);
                }
            }
            Ev::NetworkerDone => {
                self.networker_busy = false;
                ctx.probe().busy("networker", false);
                ctx.probe().count("networker.parsed");
                if let Some(frame) = self.nic.iface_mut(self.net_iface).rx[0].pop() {
                    let depth = self.nic.iface(self.net_iface).rx[0].len();
                    ctx.probe().depth("networker.ring", depth);
                    if let Ok(parsed) = ParsedFrame::parse(&frame.data) {
                        if parsed.msg.kind == MsgKind::Request {
                            let m = parsed.msg;
                            ctx.probe().mark(m.req_id, "path.1_host_net");
                            let task = Task::new(
                                m.req_id,
                                m.client_id,
                                SimDuration::from_nanos(m.service_ns),
                                SimTime::from_nanos(m.sent_at_ns),
                                ctx.now(),
                                m.body_len,
                            );
                            ctx.schedule_in(
                                params::HOST_QUEUE_HOP,
                                Ev::DispPush(DispItem::NewTask(task)),
                            );
                        }
                    }
                }
                self.start_networker(ctx);
            }
            Ev::DispPush(item) => {
                self.disp_queue.push_back(item);
                ctx.probe().depth("dispatcher.inbox", self.disp_queue.len());
                self.start_dispatcher(ctx);
            }
            Ev::DispDone => {
                self.disp_busy = false;
                ctx.probe().busy("dispatcher", false);
                if let Some(item) = self.disp_queue.pop_front() {
                    let now = ctx.now();
                    match item {
                        DispItem::NewTask(task) => match self.dispatcher.offer(now, task) {
                            AdmitOutcome::Admitted(assignments) => {
                                ctx.probe().count("disp.enqueue");
                                ctx.probe().mark(task.req_id, "path.2_dispatch");
                                for a in assignments.into_iter().rev() {
                                    self.disp_queue.push_front(DispItem::Emit(a));
                                }
                            }
                            AdmitOutcome::Shed { nack } => {
                                ctx.probe().count("disp.shed");
                                if nack {
                                    self.nacks += 1;
                                    let spec = FrameSpec {
                                        src_mac: AddressPlan::dispatcher_mac(),
                                        dst_mac: AddressPlan::client_mac(),
                                        src: AddressPlan::dispatcher_ep(),
                                        dst: AddressPlan::client_ep(),
                                        msg: MsgRepr {
                                            kind: MsgKind::Nack,
                                            req_id: task.req_id,
                                            client_id: task.client_id,
                                            service_ns: 0,
                                            remaining_ns: 0,
                                            sent_at_ns: task.sent_at.as_nanos(),
                                            body_len: 0,
                                            grant_code: 0,
                                        },
                                    };
                                    let depart = now + self.nic.dma_latency;
                                    self.send_response(&spec, depart, ctx);
                                }
                            }
                        },
                        DispItem::Done { worker, req_id } => {
                            ctx.probe().count("disp.done");
                            let assignments = self.dispatcher.on_done(now, worker, req_id);
                            for a in assignments.into_iter().rev() {
                                self.disp_queue.push_front(DispItem::Emit(a));
                            }
                        }
                        DispItem::Preempted { worker, task } => {
                            ctx.probe().count("disp.preempt_requeue");
                            ctx.probe().mark(task.req_id, "path.2_dispatch");
                            let assignments = self.dispatcher.on_preempted(now, worker, task);
                            for a in assignments.into_iter().rev() {
                                self.disp_queue.push_front(DispItem::Emit(a));
                            }
                        }
                        DispItem::Emit(a) => {
                            ctx.probe().count("disp.assign");
                            ctx.schedule_in(
                                params::HOST_QUEUE_HOP,
                                Ev::WorkerTask(a.worker, a.task),
                            );
                        }
                        DispItem::Heartbeat { worker } => {
                            ctx.probe().count("disp.heartbeat");
                            let assignments = self.dispatcher.on_heartbeat(now, worker);
                            for a in assignments.into_iter().rev() {
                                self.disp_queue.push_front(DispItem::Emit(a));
                            }
                        }
                    }
                    ctx.probe()
                        .depth("dispatcher.central", self.dispatcher.queue_len());
                }
                self.start_dispatcher(ctx);
            }
            Ev::WorkerTask(w, task) => {
                let now = ctx.now();
                if ctx.faults().worker_crashed(w, now) {
                    // Delivered to a dead worker's inbox: never executed.
                    self.stranded += 1;
                    ctx.probe().count("worker.stranded");
                    return;
                }
                self.workers[w].inbox.push_back(task);
                ctx.probe()
                    .depth_i("worker.inbox", w, self.workers[w].inbox.len());
                if self.workers[w].running.is_none() {
                    ctx.schedule_now(Ev::WorkerPoll(w));
                }
            }
            Ev::WorkerPoll(w) => self.worker_poll(w, ctx),
            Ev::WorkerRunEnd { worker, gen } => self.worker_run_end(worker, gen, ctx),
            Ev::ClientResp(bytes) => {
                if let Ok(parsed) = ParsedFrame::parse(&bytes) {
                    if parsed.msg.kind == MsgKind::Nack {
                        ctx.probe().count("client.nacks");
                        let req_id = parsed.msg.req_id;
                        if let TimeoutOutcome::Retry {
                            frame,
                            attempt,
                            timeout,
                        } = self.client.on_nack(ctx.now(), req_id)
                        {
                            ctx.probe().count("client.retries");
                            self.send_request(&frame, ctx);
                            ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                        }
                        return;
                    }
                    ctx.probe().count("client.responses");
                    ctx.probe().finish(parsed.msg.req_id, "path.5_response");
                    self.client.on_response(ctx.now(), &parsed);
                }
            }
            Ev::ClientTimeout { req_id, attempt } => {
                if let TimeoutOutcome::Retry {
                    frame,
                    attempt,
                    timeout,
                } = self.client.on_timeout(ctx.now(), req_id, attempt)
                {
                    ctx.probe().count("client.retries");
                    self.send_request(&frame, ctx);
                    ctx.schedule_in(timeout, Ev::ClientTimeout { req_id, attempt });
                }
            }
            Ev::Heartbeat(w) => {
                let now = ctx.now();
                if now >= self.horizon {
                    return;
                }
                let silenced =
                    ctx.faults().worker_down(w, now) || ctx.faults().feedback_blackout(now);
                let occupancy = self.dispatcher.outstanding(w);
                let busy = self.workers[w].running.is_some();
                let mut assignments = Vec::new();
                let mut next = None;
                if let Some(gov) = self.governor.as_mut() {
                    if !silenced {
                        gov.report(now, w, occupancy, busy);
                    }
                    let was_degraded = gov.is_degraded();
                    gov.evaluate(now, &mut self.dispatcher);
                    if gov.is_degraded() != was_degraded {
                        ctx.probe().count("fallback.switch");
                    }
                    assignments = self.dispatcher.kick(now);
                    next = Some(gov.policy().heartbeat);
                }
                if let Some(policy) = self.recovery {
                    // Worker side: lease renewal crosses host shared memory
                    // like any other notification — a silenced worker
                    // (crashed, stalled, or blacked out) cannot renew.
                    if !silenced {
                        ctx.schedule_in(
                            params::HOST_QUEUE_HOP,
                            Ev::DispPush(DispItem::Heartbeat { worker: w }),
                        );
                    }
                    // Dispatcher side: expire leases and re-dispatch orphans
                    // on the same tick.
                    let recovered = self.dispatcher.check_health(now);
                    if !recovered.is_empty() {
                        ctx.probe().count("recovery.redispatch");
                    }
                    assignments.extend(recovered);
                    next = Some(
                        next.map_or(policy.heartbeat, |n: SimDuration| n.min(policy.heartbeat)),
                    );
                }
                // Unparked work still pays the dispatcher's per-assignment
                // cost like any other emission.
                for a in assignments {
                    ctx.schedule_now(Ev::DispPush(DispItem::Emit(a)));
                }
                if let Some(interval) = next {
                    ctx.schedule_in(interval, Ev::Heartbeat(w));
                }
            }
        }
    }
}

/// Run a vanilla Shinjuku simulation with stage-level observability.
pub fn run_probed(spec: WorkloadSpec, cfg: ShinjukuConfig, probe: ProbeConfig) -> RunMetrics {
    run_resilient_probed(spec, cfg, probe, ResilienceConfig::default())
}

/// Run a vanilla Shinjuku simulation with fault injection, client
/// retries, admission control, and the stale-feedback governor.
pub fn run_resilient_probed(
    spec: WorkloadSpec,
    cfg: ShinjukuConfig,
    probe: ProbeConfig,
    res: ResilienceConfig,
) -> RunMetrics {
    let mut engine = Engine::new(Shinjuku::new(spec, cfg, res));
    engine.set_probe(Probe::new(probe));
    engine.set_invariants(crate::common::checker_for(&res));
    if res.is_active() {
        engine.set_faults(FaultPlan::new(res.faults, spec.seed ^ FAULT_SEED_SALT));
    }
    engine.schedule_at(SimTime::ZERO, Ev::ClientSend);
    if engine.model().governor.is_some() || engine.model().recovery.is_some() {
        for w in 0..cfg.workers {
            engine.schedule_at(SimTime::ZERO, Ev::Heartbeat(w));
        }
    }
    engine.run_until(spec.horizon());
    let horizon = spec.horizon();
    let model = engine.model();
    let util = model
        .workers
        .iter()
        .map(|w| w.core.utilization(horizon))
        .sum::<f64>()
        / model.workers.len() as f64;
    let ring_dropped = model.nic.total_drops();
    let mut metrics = assemble_metrics(&model.client, ring_dropped, model.preemptions, util);
    let fm = &mut metrics.faults;
    fm.req_link_lost = model.req_lost;
    fm.resp_link_lost = model.resp_lost;
    fm.ring_dropped = ring_dropped;
    fm.stranded = model.stranded;
    fm.shed = model.dispatcher.stats.shed;
    fm.nacks = model.nacks;
    if let Some(gov) = &model.governor {
        fm.fallback_switches = gov.switches;
        fm.fallback_ns = gov.fallback_ns(horizon);
        fm.quarantines = gov.quarantines;
    }
    if let Some(h) = model.dispatcher.health() {
        fm.recovered = model.dispatcher.stats.recovered;
        fm.recovery_duplicates = model.dispatcher.stats.late_duplicates;
        fm.suspicions = h.stats.suspicions;
        fm.readmissions = h.stats.readmissions;
    }
    metrics.dropped = ring_dropped + fm.link_lost() + fm.shed;
    if probe.enabled {
        metrics.stages = Some(engine.probe_mut().report(horizon));
    }
    crate::common::close_invariants(engine.take_invariants(), horizon, &metrics);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::ServiceDist;

    fn run(spec: WorkloadSpec, cfg: ShinjukuConfig) -> RunMetrics {
        run_probed(spec, cfg, ProbeConfig::disabled())
    }

    fn quick_spec(rps: f64, dist: ServiceDist) -> WorkloadSpec {
        WorkloadSpec {
            offered_rps: rps,
            dist,
            body_len: 64,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(20),
            seed: 42,
        }
    }

    #[test]
    fn light_load_completes_everything() {
        let spec = quick_spec(50_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(spec, ShinjukuConfig::paper(3));
        assert!(m.completed > 500);
        assert!(!m.saturated(0.05), "{}", m.row());
        assert_eq!(m.dropped, 0);
    }

    #[test]
    fn host_path_is_faster_than_nic_path_at_low_load() {
        // Without the 2.56us NIC round trips, host Shinjuku's unloaded
        // latency beats Shinjuku-Offload's.
        let spec = quick_spec(5_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
        let host = run(spec, ShinjukuConfig::paper(2));
        let offload = crate::offload::run_probed(
            spec,
            crate::offload::OffloadConfig::paper(2, 2),
            ProbeConfig::disabled(),
        );
        assert!(
            host.p50 < offload.p50,
            "host {} should undercut offload {} at low load",
            host.p50,
            offload.p50
        );
    }

    #[test]
    fn saturates_at_worker_capacity() {
        // 3 workers at 5us => 600k rps ceiling.
        let spec = quick_spec(900_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let m = run(
            spec,
            ShinjukuConfig {
                workers: 3,
                time_slice: None,
                ..ShinjukuConfig::paper(3)
            },
        );
        assert!(m.saturated(0.05), "{}", m.row());
        assert!(m.achieved_rps < 650_000.0, "achieved {:.0}", m.achieved_rps);
        // With one request in flight per worker, each completion costs a
        // dispatcher round trip of idle time — utilization saturates below
        // 100% (the §2.2 inter-thread communication overhead at work).
        assert!(
            m.worker_utilization > 0.75,
            "utilization {:.2}",
            m.worker_utilization
        );
    }

    #[test]
    fn dispatcher_caps_throughput_on_tiny_requests() {
        // 15 workers of 1us work could do 15M, but the dispatcher's 200ns
        // per request caps the system near 5M (§1) — the Figure 6 story.
        let spec = quick_spec(8_000_000.0, ServiceDist::Fixed(SimDuration::from_micros(1)));
        let m = run(
            spec,
            ShinjukuConfig {
                workers: 15,
                time_slice: None,
                ..ShinjukuConfig::paper(15)
            },
        );
        assert!(
            m.achieved_rps < 5_500_000.0,
            "achieved {:.0}",
            m.achieved_rps
        );
        assert!(
            m.achieved_rps > 3_000_000.0,
            "achieved {:.0}",
            m.achieved_rps
        );
    }

    #[test]
    fn preemption_bounds_bimodal_tail() {
        let spec = quick_spec(400_000.0, ServiceDist::paper_bimodal());
        let with = run(spec, ShinjukuConfig::paper(4));
        let without = run(
            spec,
            ShinjukuConfig {
                workers: 4,
                time_slice: None,
                ..ShinjukuConfig::paper(4)
            },
        );
        assert!(with.preemptions > 0);
        assert!(
            with.p99 < without.p99,
            "preemption should cut the tail: with={} without={}",
            with.p99,
            without.p99
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = quick_spec(200_000.0, ServiceDist::paper_bimodal());
        let a = run(spec, ShinjukuConfig::paper(3));
        let b = run(spec, ShinjukuConfig::paper(3));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99, b.p99);
    }

    #[test]
    fn loss_and_crash_accounts_for_every_request() {
        let spec = quick_spec(200_000.0, ServiceDist::Fixed(SimDuration::from_micros(5)));
        let res = crate::common::ResilienceConfig::loss_and_crash(1, SimTime::from_millis(10));
        let m = run_resilient_probed(spec, ShinjukuConfig::paper(4), ProbeConfig::disabled(), res);
        let f = &m.faults;
        assert_eq!(f.unaccounted(), 0, "request ledger must close: {f:?}");
        assert!(f.in_pipe() >= 0, "attempt ledger went negative: {f:?}");
        assert!(f.in_pipe() < 200, "attempt residue too large: {f:?}");
        assert!(f.retries > 0, "1% loss must trigger retries");
        assert!(f.quarantines >= 1, "crashed worker must be quarantined");
        assert!(m.completed > 1000, "completed {}", m.completed);
        // Deterministic under faults.
        let m2 = run_resilient_probed(spec, ShinjukuConfig::paper(4), ProbeConfig::disabled(), res);
        assert_eq!(m.faults, m2.faults);
        assert_eq!(m.p99, m2.p99);
    }
}
