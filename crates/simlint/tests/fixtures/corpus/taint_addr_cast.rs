// A pointer address used as an event key: ASLR makes the address vary
// run to run, so scheduling on it breaks replay. No v2 rule sees this —
// only the v3 taint pass does.
pub struct Sched {
    eq: EventQueue,
}

impl Sched {
    pub fn enqueue(&mut self, task: &Task) {
        let key = task as *const Task as usize;
        self.eq.schedule(SimTime::ZERO, key as u64);
    }
}
