// A local type that merely shares a hazard's name is not a hazard:
// this Instant is a simulated timestamp, not std::time::Instant.
#[derive(Clone, Copy)]
pub struct Instant(pub u64);

impl Instant {
    pub fn now(clock: u64) -> Instant {
        Instant(clock)
    }
}

pub fn stamp(clock: u64) -> Instant {
    Instant::now(clock)
}
