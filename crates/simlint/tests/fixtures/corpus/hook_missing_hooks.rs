// A policy that silently inherits the default no-op failure hooks:
// under fault injection its queue would keep dispatching to dead
// workers. hook-conformance demands the hooks be defined (or waived).
pub struct Naive {
    queue: VecDeque<Request>,
}

impl SchedPolicy for Naive {
    fn admit(&mut self, now: SimTime, req: Request) {
        self.queue.push_back(req);
    }
    fn pick(&mut self, now: SimTime, worker: usize) -> Pick {
        self.queue.pop_front().map_or(Pick::Idle, Pick::Run)
    }
    fn len(&self) -> usize {
        self.queue.len()
    }
}
