// Wall-clock reads inside #[cfg(test)]-gated code are fine: timing
// assertions in tests cannot touch model state. A line scanner with no
// item extents cannot know this.
pub fn model_step(x: u64) -> u64 {
    x + 1
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn step_is_fast_enough() {
        let t0 = Instant::now();
        assert_eq!(super::model_step(1), 2);
        let _elapsed = t0.elapsed();
    }
}
