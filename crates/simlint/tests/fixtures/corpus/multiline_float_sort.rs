// A float sort whose closure spans lines is still a float sort: the
// token pass scans the whole argument list, not one source line.
pub fn order(v: &mut Vec<(f64, u64)>) {
    v.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap()
            .then(a.1.cmp(&b.1))
    });
}
