// A declared ledger field that is only ever debited: reclaimed
// requests accumulate forever and the exactly-once invariant can never
// close. ledger-pairing fires at the lone debit site.
pub struct Leaky {
    reclaimed: BTreeMap<u64, Request>,
}

impl Leaky {
    pub fn reclaim(&mut self, id: u64, req: Request) {
        self.reclaimed.insert(id, req);
    }
}
