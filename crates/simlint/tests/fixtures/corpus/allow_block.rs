// One allow-block covers a multi-line construct; the hazard past its
// span still fires.
// simlint: allow-block(unordered, lines=4, reason=fixed table built once and never iterated)
use std::collections::HashMap;

pub fn table() -> HashMap<u8, u8> {
    HashMap::new()
}

pub fn beyond() -> std::collections::HashSet<u8> {
    std::collections::HashSet::new()
}
