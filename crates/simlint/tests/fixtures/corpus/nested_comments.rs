/* outer comment
   /* nested inner comment */
   still a comment: HashMap::new() and thread_rng() and unsafe
*/
fn clean() -> u32 {
    7
}
