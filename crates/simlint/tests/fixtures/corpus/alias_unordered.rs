// An aliased import must not launder a hash container: `Fast` is
// std::collections::HashMap, and every use site is a finding.
use std::collections::HashMap as Fast;

pub fn build() -> Fast<u32, u32> {
    let mut m = Fast::new();
    m.insert(1, 2);
    m
}
