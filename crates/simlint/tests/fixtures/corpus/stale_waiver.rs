// The hazard this waiver excused was refactored away; the waiver is
// now debt pretending to be documentation, and must itself be flagged.
// simlint: allow(unordered, reason=keys are sorted before iteration)
pub fn sums(v: &[u64]) -> u64 {
    v.iter().sum()
}
