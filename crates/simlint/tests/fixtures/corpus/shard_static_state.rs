// Process-wide mutable state in model code: every one of these would
// couple shards the moment the simulation runs scenarios in parallel.
use std::rc::Rc;
use std::sync::atomic::AtomicU64;

static COMPLETED: AtomicU64 = AtomicU64::new(0);

static mut LAST_SEED: u64 = 0;

thread_local! {
    static SCRATCH: RefCell<Vec<u64>> = RefCell::new(Vec::new());
}

pub struct Shared {
    peers: Rc<Vec<u64>>,
}
