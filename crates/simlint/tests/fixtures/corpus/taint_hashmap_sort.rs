// Iteration order of a HashMap flowing into a comparator-driven sort:
// the v2 `unordered` rule flags the mentions, and the v3 dataflow pass
// flags the *flow* at the sort call.
use std::collections::HashMap;

pub fn ranked(m: &HashMap<u64, u64>) -> Vec<u64> {
    let live: &HashMap<u64, u64> = m;
    let mut v: Vec<u64> = live.keys().copied().collect();
    v.sort_by(|a, b| a.cmp(b));
    v
}
