// Renaming std::thread does not make it deterministic.
use std::thread as host;

pub fn fan_out() {
    let h = host::spawn(|| 42);
    let _ = h.join();
}
