// The clean twin of shard_static_state.rs: consts, immutable statics,
// and owned ordered containers are all shard-safe.
use std::collections::BTreeMap;

const MAX_WORKERS: usize = 64;

static BANNER: &str = "nicsched";

pub struct Owned {
    table: BTreeMap<u64, u64>,
}
