// A resilient entry point that never wires the invariant checker or a
// failure detector: the run would report success without ever checking
// conservation, which is exactly the silent hole hook-conformance
// exists to close.
pub fn run_resilient_probed(spec: WorkloadSpec, res: ResilienceConfig) -> RunMetrics {
    let mut sim = Sim::new(spec);
    sim.inject(res);
    sim.run()
}
