// A declared exactly-once ledger field with both sides present: every
// debit (insert on reclaim) has a matching credit (remove on
// re-dispatch), so the crate-level pairing check stays quiet.
pub struct Recovery {
    reclaimed: BTreeMap<u64, Request>,
}

impl Recovery {
    pub fn reclaim(&mut self, id: u64, req: Request) {
        self.reclaimed.insert(id, req);
    }
    pub fn redispatch(&mut self, id: u64) -> Option<Request> {
        self.reclaimed.remove(&id)
    }
}
