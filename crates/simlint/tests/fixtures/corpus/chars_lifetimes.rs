// Lifetimes and char literals must not confuse the lexer: the `'a` in
// a generic list is not an unterminated char whose "body" swallows the
// rest of the file (which would hide the real hazard at the bottom).
struct Holder<'a> {
    name: &'a str,
}

fn pick<'a, 'b: 'a>(x: &'a str, _y: &'b str) -> (&'a str, char, char, u8) {
    (x, 'I', '\'', b'"')
}

fn real_hazard() {
    let _t = std::time::Instant::now();
}
