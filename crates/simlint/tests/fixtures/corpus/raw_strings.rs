// Hazard names inside raw strings must never fire. The embedded quotes
// are the point: a quote-pair scrubber flips in and out of "string"
// state and leaks the middle of the literal as code.
fn doc_text() -> &'static str {
    let a = r#"call "HashMap::new()" or "unsafe" or "OsRng" here"#;
    let b = br##"bytes: "std::thread::spawn" and "Instant::now()""##;
    let c = r"plain raw SystemTime";
    let _ = (b, c);
    a
}
