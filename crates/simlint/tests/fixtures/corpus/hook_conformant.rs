// The clean twin of hook_missing_hooks.rs: every failure hook is
// defined, even if only to document why nothing needs to happen.
pub struct Careful {
    queue: VecDeque<Request>,
}

impl SchedPolicy for Careful {
    fn admit(&mut self, now: SimTime, req: Request) {
        self.queue.push_back(req);
    }
    fn pick(&mut self, now: SimTime, worker: usize) -> Pick {
        self.queue.pop_front().map_or(Pick::Idle, Pick::Run)
    }
    fn worker_down(&mut self, _now: SimTime, _worker: usize) {}
    fn worker_up(&mut self, _now: SimTime, _worker: usize) {}
    fn feedback(&mut self, _now: SimTime, _event: &FeedbackEvent) {}
    fn len(&self) -> usize {
        self.queue.len()
    }
}
