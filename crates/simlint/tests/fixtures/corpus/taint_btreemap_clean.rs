// The ordered twin of taint_hashmap_sort.rs: BTreeMap iteration is
// deterministic, so the identical flow is clean under both passes.
use std::collections::BTreeMap;

pub fn ranked(m: &BTreeMap<u64, u64>) -> Vec<u64> {
    let live: &BTreeMap<u64, u64> = m;
    let mut v: Vec<u64> = live.keys().copied().collect();
    v.sort_by(|a, b| a.cmp(b));
    v
}
