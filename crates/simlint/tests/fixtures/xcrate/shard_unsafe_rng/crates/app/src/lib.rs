#![forbid(unsafe_code)]
pub struct Engine {
    clock: u64,
}
impl Engine {
    pub fn run(&mut self) {
        self.clock = jitter();
    }
}
fn jitter() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}
