#![forbid(unsafe_code)]
use gen::ping;
pub fn drive(m: &std::collections::HashMap<u64, u64>, q: &mut Queue) {
    let order = ping(3, m);
    q.schedule(order);
}
