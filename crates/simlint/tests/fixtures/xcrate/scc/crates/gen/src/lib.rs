#![forbid(unsafe_code)]
use std::collections::HashMap;
pub fn ping(n: u64, m: &HashMap<u64, u64>) -> Vec<u64> {
    if n == 0 {
        let base: Vec<u64> = m.keys().copied().collect();
        return base;
    }
    pong(n - 1, m)
}
pub fn pong(n: u64, m: &HashMap<u64, u64>) -> Vec<u64> {
    ping(n, m)
}
