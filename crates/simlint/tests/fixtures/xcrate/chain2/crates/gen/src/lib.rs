#![forbid(unsafe_code)]
use std::collections::HashMap;
pub fn pick(m: &HashMap<u64, u64>) -> Vec<u64> {
    let order: Vec<u64> = m.keys().copied().collect();
    order
}
