#![forbid(unsafe_code)]
use gen::pick;
pub fn drive(m: &std::collections::HashMap<u64, u64>, q: &mut Queue) {
    let order = pick(m);
    // simlint: allow(determinism-taint, reason=order is re-sorted by the queue)
    q.schedule(order);
}
