#![forbid(unsafe_code)]
use std::sync::atomic::{AtomicU64, Ordering};
static COUNTER: AtomicU64 = AtomicU64::new(0);
pub fn bump() {
    COUNTER.fetch_add(1, Ordering::Relaxed);
}
