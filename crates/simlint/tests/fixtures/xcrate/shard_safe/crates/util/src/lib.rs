#![forbid(unsafe_code)]
use std::sync::atomic::{AtomicU64, Ordering};
static UNREACHED: AtomicU64 = AtomicU64::new(0);
pub fn never_called_from_root() {
    UNREACHED.fetch_add(1, Ordering::Relaxed);
}
