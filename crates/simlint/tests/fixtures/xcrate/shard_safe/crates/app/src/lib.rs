#![forbid(unsafe_code)]
pub struct Engine {
    clock: u64,
}
impl Engine {
    pub fn run(&mut self) {
        self.clock += 1;
        self.tick();
    }
    fn tick(&mut self) {
        self.clock += 1;
    }
}
