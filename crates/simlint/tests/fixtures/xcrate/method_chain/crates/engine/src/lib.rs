#![forbid(unsafe_code)]
use sampler::Sampler;
pub fn drive(s: &Sampler, q: &mut Queue) {
    let order = s.order();
    q.schedule(order);
}
