#![forbid(unsafe_code)]
use std::collections::HashMap;
pub struct Sampler {
    map: HashMap<u64, u64>,
}
impl Sampler {
    pub fn order(&self) -> Vec<u64> {
        let v: Vec<u64> = self.map.keys().copied().collect();
        v
    }
}
