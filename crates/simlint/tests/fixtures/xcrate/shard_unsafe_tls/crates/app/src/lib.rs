#![forbid(unsafe_code)]
use std::cell::Cell;
thread_local! {
    static SCRATCH: Cell<u64> = Cell::new(0);
}
pub struct Engine {
    clock: u64,
}
impl Engine {
    pub fn run(&mut self) {
        SCRATCH.with(|s| s.set(self.clock));
    }
}
