#![forbid(unsafe_code)]
use mid::relay;
pub fn drive(m: &std::collections::HashMap<u64, u64>, q: &mut Queue) {
    let order = relay(m);
    q.schedule_at(order);
}
