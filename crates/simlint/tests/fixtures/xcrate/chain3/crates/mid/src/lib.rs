#![forbid(unsafe_code)]
use gen::pick;
use std::collections::HashMap;
pub fn relay(m: &HashMap<u64, u64>) -> Vec<u64> {
    pick(m)
}
