#![forbid(unsafe_code)]
use std::collections::BTreeMap;
pub fn pick(m: &BTreeMap<u64, u64>) -> Vec<u64> {
    let order: Vec<u64> = m.keys().copied().collect();
    order
}
