#![forbid(unsafe_code)]
use gen::pick;
pub fn drive(m: &std::collections::HashMap<u64, u64>, q: &mut Queue) {
    let order = pick(m);
    q.schedule(order);
}
