#![forbid(unsafe_code)]
use std::collections::HashMap;
pub fn pick(m: &HashMap<u64, u64>) -> Vec<u64> {
    // simlint: allow(determinism-taint, reason=engine sorts before use)
    let order: Vec<u64> = m.keys().copied().collect();
    order
}
