//! Cross-crate corpus: mini-workspaces under `tests/fixtures/xcrate/`
//! exercising the v4 interprocedural engine end to end — call chains
//! across two and three crates, SCC cycles, impl-method resolution,
//! waiver scoping of cross-file findings, and the shard-safety
//! certificate with its witness paths.
//!
//! Also home of two pipeline-level properties:
//!
//! * **v4 ⊇ v3** over the existing single-file corpus — the
//!   interprocedural pipeline must report a superset of the per-file
//!   pass it replaced (same-file chains dedupe to byte-identical
//!   findings, so equality is the common case).
//! * **warm = cold** for the incremental cache — a fully cached run
//!   must produce the identical report.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use simlint::graph::Layer;
use simlint::rules::tokens::FileCtx;
use simlint::{analyze_source_v3, lint_workspace, lint_workspace_opts, LintOptions, LintOutcome};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/xcrate")
        .join(name)
}

fn outcome(name: &str) -> LintOutcome {
    lint_workspace_opts(&fixture(name), &LintOptions::default()).expect("lint fixture")
}

/// Findings of one rule, as (file, line, message).
fn of_rule(out: &LintOutcome, rule: &str) -> Vec<(String, usize, String)> {
    out.report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.file.clone(), f.line, f.message.clone()))
        .collect()
}

#[test]
fn chain2_cross_crate_flow_is_found_with_source_attached() {
    let out = outcome("chain2");
    let taint = of_rule(&out, "determinism-taint");
    assert_eq!(taint.len(), 1, "{taint:?}");
    let (file, line, msg) = &taint[0];
    assert_eq!(file, "crates/engine/src/lib.rs");
    assert_eq!(*line, 5, "sink line");
    assert!(msg.contains("unordered container"), "{msg}");
    assert!(msg.contains("via `pick()`"), "{msg}");
    assert!(msg.contains("event-queue sink `.schedule(..)`"), "{msg}");
    assert!(msg.contains("(source at crates/gen/src/lib.rs:4)"), "{msg}");
}

#[test]
fn chain3_flow_resolves_through_a_wrapper_crate() {
    let out = outcome("chain3");
    let taint = of_rule(&out, "determinism-taint");
    assert_eq!(taint.len(), 1, "{taint:?}");
    let (file, _, msg) = &taint[0];
    assert_eq!(file, "crates/engine/src/lib.rs");
    assert!(msg.contains("via `relay()`"), "{msg}");
    assert!(msg.contains("(source at crates/gen/src/lib.rs:4)"), "{msg}");
}

#[test]
fn scc_cycle_terminates_and_the_flow_still_resolves() {
    let out = outcome("scc");
    let taint = of_rule(&out, "determinism-taint");
    assert_eq!(taint.len(), 1, "{taint:?}");
    let (file, _, msg) = &taint[0];
    assert_eq!(file, "crates/engine/src/lib.rs");
    assert!(msg.contains("via `ping()`"), "{msg}");
    assert!(msg.contains("(source at crates/gen/src/lib.rs:"), "{msg}");
}

#[test]
fn method_call_resolves_to_a_foreign_impl() {
    let out = outcome("method_chain");
    let taint = of_rule(&out, "determinism-taint");
    assert_eq!(taint.len(), 1, "{taint:?}");
    let (file, _, msg) = &taint[0];
    assert_eq!(file, "crates/engine/src/lib.rs");
    assert!(msg.contains("via `order()`"), "{msg}");
    assert!(
        msg.contains("(source at crates/sampler/src/lib.rs:"),
        "{msg}"
    );
}

#[test]
fn ordered_containers_carry_no_flow() {
    let out = outcome("clean_chain");
    assert!(of_rule(&out, "determinism-taint").is_empty());
}

#[test]
fn shard_safe_root_certifies_safe() {
    let out = outcome("shard_safe");
    let v = out.cert.crates.get("app").expect("app verdict");
    assert!(v.safe, "{v:?}");
    assert!(v.reasons.is_empty(), "{v:?}");
    assert!(of_rule(&out, "shard-cert").is_empty());
}

#[test]
fn cross_crate_static_write_is_unsafe_with_a_witness_path() {
    let out = outcome("shard_unsafe_static");
    let v = out.cert.crates.get("app").expect("app verdict");
    assert!(!v.safe, "{v:?}");
    let r = &v.reasons[0];
    assert!(
        r.detail.contains("interior-mutable static `COUNTER`"),
        "{r:?}"
    );
    assert!(r.detail.contains("crates/util/src/lib.rs"), "{r:?}");
    // The witness chain walks root → hazard, crossing the crate boundary.
    assert!(r.witness[0].contains("app::Engine::run"), "{:?}", r.witness);
    assert!(
        r.witness.last().unwrap().contains("util::bump"),
        "{:?}",
        r.witness
    );
}

#[test]
fn tls_touch_is_unsafe() {
    let out = outcome("shard_unsafe_tls");
    let v = out.cert.crates.get("app").expect("app verdict");
    assert!(!v.safe, "{v:?}");
    assert!(
        v.reasons.iter().any(|r| r.detail.contains("thread_local!")),
        "{v:?}"
    );
}

#[test]
fn ambient_rng_is_unsafe() {
    let out = outcome("shard_unsafe_rng");
    let v = out.cert.crates.get("app").expect("app verdict");
    assert!(!v.safe, "{v:?}");
    assert!(
        v.reasons.iter().any(|r| r.detail.contains("ambient RNG")),
        "{v:?}"
    );
}

#[test]
fn sink_line_waiver_suppresses_and_source_waiver_is_credited() {
    let out = outcome("waiver_sink");
    assert!(
        of_rule(&out, "determinism-taint").is_empty(),
        "suppressed at sink"
    );
    // Neither the sink-side nor the source-side waiver may rot.
    assert!(
        of_rule(&out, "stale-waiver").is_empty(),
        "{:?}",
        out.report.findings
    );
}

#[test]
fn source_only_waiver_does_not_suppress_but_is_not_stale() {
    let out = outcome("waiver_source_only");
    let taint = of_rule(&out, "determinism-taint");
    assert_eq!(
        taint.len(),
        1,
        "cross-file findings are waivable at the sink only: {taint:?}"
    );
    assert_eq!(taint[0].0, "crates/engine/src/lib.rs");
    assert!(
        of_rule(&out, "stale-waiver").is_empty(),
        "{:?}",
        out.report.findings
    );
}

#[test]
fn lying_shard_certificate_fails_the_gate() {
    let root = fixture("shard_unsafe_static");
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args([
            "--root",
            root.to_str().unwrap(),
            "--compare-shard-cert",
            root.join("SHARD_SAFETY.json").to_str().unwrap(),
            "--strict",
        ])
        .output()
        .expect("run simlint");
    assert_ne!(
        out.status.code(),
        Some(0),
        "a safe-claiming cert over an unsafe tree must fail"
    );
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("shard"), "{text}");
}

/// v4 ⊇ v3 over the existing single-file corpus: every post-waiver v3
/// finding appears identically in the v4 pipeline run over a one-crate
/// workspace holding just that file.
#[test]
fn v4_reports_a_superset_of_v3_on_the_corpus() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corpus");
    let scratch = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/simlint-scratch")
        .join(format!("v4-superset-{}", std::process::id()));
    let mut names: Vec<String> = fs::read_dir(&corpus)
        .expect("corpus dir")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(names.len() >= 10, "corpus shrank?");
    for name in &names {
        let source = fs::read_to_string(corpus.join(name)).unwrap();
        let rel = "crates/app/src/lib.rs";
        let v3 = analyze_source_v3(
            FileCtx::new(Layer::Model, rel),
            rel,
            &source,
            &[],
            &[],
            false,
        );
        let v3_set: Vec<(usize, String)> = v3
            .analysis
            .findings
            .iter()
            .map(|f| (f.line, f.rule.to_string()))
            .collect();

        if scratch.exists() {
            fs::remove_dir_all(&scratch).unwrap();
        }
        fs::create_dir_all(scratch.join("crates/app/src")).unwrap();
        fs::write(
            scratch.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\nresolver = \"2\"\n",
        )
        .unwrap();
        fs::write(
            scratch.join("crates/app/Cargo.toml"),
            "[package]\nname = \"app\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n\
             [package.metadata.simlint]\nlayer = \"model\"\n",
        )
        .unwrap();
        fs::write(scratch.join("crates/app/src/lib.rs"), &source).unwrap();
        let v4 = lint_workspace(&scratch).expect("v4 lint");
        let v4_set: Vec<(usize, String)> = v4
            .findings
            .iter()
            .filter(|f| f.file == rel)
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        for probe in &v3_set {
            assert!(
                v4_set.contains(probe),
                "{name}: v3 finding {probe:?} missing from v4 ({v4_set:?})"
            );
        }
    }
    let _ = fs::remove_dir_all(&scratch);
}

/// A fully warm cache run must equal the cold run, finding for finding
/// and waiver for waiver.
#[test]
fn warm_cache_run_is_identical_to_cold() {
    let root = fixture("chain3");
    let cache =
        std::env::temp_dir().join(format!("simlint-xcrate-cache-{}.json", std::process::id()));
    let _ = fs::remove_file(&cache);
    let opts = LintOptions {
        cache_path: Some(cache.clone()),
    };
    let cold = lint_workspace_opts(&root, &opts).expect("cold run");
    assert_eq!(cold.cache_hits, 0, "first run must be cold");
    assert!(cold.cache_misses > 0);
    let warm = lint_workspace_opts(&root, &opts).expect("warm run");
    assert!(warm.cache_hits > 0, "second run must hit the cache");
    assert_eq!(warm.cache_misses, 0, "nothing changed on disk");

    let render = |o: &LintOutcome| {
        let f: Vec<String> = o.report.findings.iter().map(|f| f.render()).collect();
        let w: Vec<String> = o
            .report
            .waivers
            .iter()
            .map(|w| format!("{}:{} {:?}", w.file, w.line, w.rules))
            .collect();
        (f, w, o.cert.to_json())
    };
    assert_eq!(render(&cold), render(&warm));
    let _ = fs::remove_file(&cache);
}
