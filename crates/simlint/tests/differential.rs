//! Differential test: the v1 line-oriented pass is kept in
//! `simlint::legacy` as an executable specification, and the v2 token
//! pass must report a strict superset of it — minus the false positives
//! the lexer provably removes, each of which is named here.
//!
//! Two properties, over the fixture corpus and the live workspace:
//!
//! 1. **Superset**: every legacy finding is also a token-pass finding,
//!    unless its (fixture, rule) pair is in [`KNOWN_LEGACY_FPS`].
//! 2. **Strictness**: the passes genuinely diverge — at least three
//!    fixtures where the finding sets differ, in both directions (false
//!    negatives caught, false positives removed).

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use simlint::graph::Layer;
use simlint::legacy::lint_source_legacy;
use simlint::rules::tokens::{analyze_source, FileCtx};
use simlint::{find_workspace_root, lint_workspace, lint_workspace_legacy};

/// Legacy findings the token pass intentionally does not reproduce.
/// Every entry is a class of false positive the lexer removes:
///
/// * `allow_block.rs` — v1 does not understand the `allow-block` waiver
///   form, so it reports the directive as `bad-waiver` and the waived
///   span's `unordered` hazards as live.
/// * `cfg_test_wallclock.rs` — v1 has no item extents, so it cannot see
///   that the `Instant` reads are `#[cfg(test)]`-gated.
/// * `local_shadow_instant.rs` — v1 matches the token `Instant` with no
///   name resolution, so a local type of that name fires six times.
const KNOWN_LEGACY_FPS: &[(&str, &str)] = &[
    ("allow_block.rs", "bad-waiver"),
    ("allow_block.rs", "unordered"),
    ("cfg_test_wallclock.rs", "wall-clock"),
    ("local_shadow_instant.rs", "wall-clock"),
];

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corpus")
}

fn corpus_files() -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    names
}

type FindingSet = BTreeSet<(usize, String)>;

fn both_passes(name: &str) -> (FindingSet, FindingSet) {
    let source = fs::read_to_string(corpus_dir().join(name)).unwrap();
    let rel = format!("crates/systems/src/{name}");
    let token: FindingSet = analyze_source(FileCtx::new(Layer::Model, &rel), &rel, &source)
        .findings
        .into_iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    let legacy: FindingSet = lint_source_legacy(&rel, &source)
        .into_iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    (token, legacy)
}

#[test]
fn token_pass_is_a_superset_of_legacy_on_the_corpus() {
    for name in corpus_files() {
        let (token, legacy) = both_passes(&name);
        for (line, rule) in &legacy {
            let known_fp = KNOWN_LEGACY_FPS
                .iter()
                .any(|(f, r)| *f == name && r == rule);
            assert!(
                token.contains(&(*line, rule.clone())) || known_fp,
                "{name}:{line} [{rule}] found by legacy but not by the token \
                 pass, and not a documented false positive"
            );
        }
    }
}

#[test]
fn the_passes_diverge_in_both_directions() {
    let mut divergent = Vec::new();
    let mut fn_caught = 0usize; // token finds what legacy missed
    let mut fp_removed = 0usize; // legacy fired where token stays silent
    for name in corpus_files() {
        let (token, legacy) = both_passes(&name);
        if token != legacy {
            divergent.push(name.clone());
        }
        if token.difference(&legacy).next().is_some() {
            fn_caught += 1;
        }
        if legacy.difference(&token).next().is_some() {
            fp_removed += 1;
        }
    }
    assert!(
        divergent.len() >= 3,
        "need at least 3 divergence fixtures, got {divergent:?}"
    );
    assert!(
        fn_caught >= 2,
        "no fixtures show false negatives being caught"
    );
    assert!(
        fp_removed >= 2,
        "no fixtures show false positives being removed"
    );
}

#[test]
fn every_known_fp_entry_is_live() {
    // The FP allowlist must not rot: each entry must correspond to an
    // actual legacy-only finding, or it is itself stale.
    for (file, rule) in KNOWN_LEGACY_FPS {
        let (token, legacy) = both_passes(file);
        let live = legacy
            .iter()
            .any(|(l, r)| r == rule && !token.contains(&(*l, r.clone())));
        assert!(
            live,
            "KNOWN_LEGACY_FPS entry ({file}, {rule}) no longer fires"
        );
    }
}

#[test]
fn workspace_token_pass_superset_of_legacy_modulo_tests_dir_scoping() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
    let token: BTreeSet<(String, usize, String)> = lint_workspace(&root)
        .expect("token pass")
        .findings
        .into_iter()
        .map(|f| (f.file, f.line, f.rule.to_string()))
        .collect();
    let legacy = lint_workspace_legacy(&root).expect("legacy pass");
    let mut fp_removed = 0usize;
    for f in &legacy {
        // Two scoping changes the current pass makes on the live tree:
        // files in `tests/` directories may read time as floats and the
        // wall clock — assertions there cannot touch model state — and
        // sim-core's declared `time_boundary` file holds every audited
        // float↔duration conversion, replacing the per-line waivers the
        // legacy pass would still demand.
        let known_fp = (f.file.contains("/tests/")
            && matches!(f.rule, "time-float-cast" | "wall-clock"))
            || (f.file.ends_with("sim-core/src/time.rs") && f.rule == "time-float-cast");
        if known_fp {
            fp_removed += 1;
            continue;
        }
        assert!(
            token.contains(&(f.file.clone(), f.line, f.rule.to_string())),
            "{}:{} [{}] found by legacy but not by the token pass",
            f.file,
            f.line,
            f.rule
        );
    }
    // The probe chain-vs-client tolerance comparison used to need two
    // waivers; under v2 scoping they are gone, not waived.
    assert!(
        fp_removed >= 2,
        "expected the probe.rs tests-dir casts to show up as removed FPs"
    );
}
