//! The rule registry has one source of truth: `simlint::rules::TABLE`.
//! `RULES.md` (included into the crate docs) and the README table are
//! generated from it; this test fails if either drifted.

use std::fs;
use std::path::Path;

use simlint::find_workspace_root;
use simlint::rules::{render_rules_doc, render_rules_table};

#[test]
fn rules_md_matches_the_table() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/rules/RULES.md");
    let on_disk = fs::read_to_string(&path).expect("RULES.md");
    assert_eq!(
        on_disk,
        render_rules_doc(),
        "RULES.md drifted from rules::TABLE; run `cargo run -p simlint -- --write-rules-doc`"
    );
}

#[test]
fn readme_table_matches_the_table() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
    let readme = fs::read_to_string(root.join("README.md")).expect("README.md");
    let begin = "<!-- simlint-rules:begin -->\n";
    let end = "<!-- simlint-rules:end -->";
    let start = readme
        .find(begin)
        .expect("README missing simlint-rules:begin marker")
        + begin.len();
    let stop = readme
        .find(end)
        .expect("README missing simlint-rules:end marker");
    assert_eq!(
        &readme[start..stop],
        render_rules_table(),
        "README rules table drifted from rules::TABLE; paste the output of \
         render_rules_table() between the markers"
    );
}

#[test]
fn every_rule_appears_in_architecture_docs() {
    // Weaker than exact sync, but keeps prose honest: each rule name is
    // at least mentioned in ARCHITECTURE.md's correctness section.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
    let arch = fs::read_to_string(root.join("ARCHITECTURE.md")).expect("ARCHITECTURE.md");
    for rule in simlint::rules::RULES {
        assert!(
            arch.contains(rule),
            "ARCHITECTURE.md never mentions `{rule}`"
        );
    }
}
