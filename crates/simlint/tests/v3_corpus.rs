//! Exact-findings assertions for the v3 pipeline (dataflow + semantic
//! rules) over the fixture corpus, plus the v2-vs-v3 differential: v3
//! runs the v2 token pass unchanged before adding its own candidates,
//! so on every fixture the v3 finding set must be a superset of v2's —
//! the v2 behaviour is the executable spec the refactor must preserve.

use std::fs;
use std::path::{Path, PathBuf};

use simlint::graph::Layer;
use simlint::rules::tokens::{analyze_source, FileCtx};
use simlint::{analyze_source_v3, V3Analysis};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corpus")
}

fn fixture(name: &str) -> String {
    let path = corpus_dir().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn v3(name: &str, ledger_fields: &[String]) -> V3Analysis {
    let rel = format!("crates/systems/src/{name}");
    let source = fixture(name);
    analyze_source_v3(
        FileCtx::new(Layer::Model, &rel),
        &rel,
        &source,
        ledger_fields,
        &[],
        false,
    )
}

fn v3_findings(name: &str) -> Vec<(usize, &'static str)> {
    v3(name, &[])
        .analysis
        .findings
        .iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn hashmap_into_sort_fires_both_passes() {
    assert_eq!(
        v3_findings("taint_hashmap_sort.rs"),
        vec![
            (4, "unordered"),
            (6, "unordered"),
            (7, "unordered"),
            (9, "determinism-taint"),
        ]
    );
}

#[test]
fn btreemap_twin_is_clean() {
    assert_eq!(v3_findings("taint_btreemap_clean.rs"), vec![]);
}

#[test]
fn address_cast_into_schedule_fires_only_in_v3() {
    let rel = "crates/systems/src/taint_addr_cast.rs";
    let source = fixture("taint_addr_cast.rs");
    assert_eq!(
        analyze_source(FileCtx::new(Layer::Model, rel), rel, &source).findings,
        vec![],
        "no v2 rule sees an address-as-key flow"
    );
    assert_eq!(
        v3_findings("taint_addr_cast.rs"),
        vec![(11, "determinism-taint")]
    );
}

#[test]
fn policy_impl_missing_hooks_fires_at_the_impl() {
    let fs = v3("hook_missing_hooks.rs", &[]).analysis.findings;
    assert_eq!(fs.len(), 1, "{fs:?}");
    assert_eq!((fs[0].line, fs[0].rule), (8, "hook-conformance"));
    for hook in ["worker_down", "worker_up", "feedback"] {
        assert!(fs[0].message.contains(hook), "{:?}", fs[0].message);
    }
}

#[test]
fn fully_hooked_policy_impl_is_clean() {
    assert_eq!(v3_findings("hook_conformant.rs"), vec![]);
}

#[test]
fn unwired_resilient_entry_point_fires() {
    let fs = v3("hook_unwired_recovery.rs", &[]).analysis.findings;
    assert_eq!(fs.len(), 1, "{fs:?}");
    assert_eq!((fs[0].line, fs[0].rule), (5, "hook-conformance"));
}

#[test]
fn process_wide_mutable_state_fires_per_site() {
    assert_eq!(
        v3_findings("shard_static_state.rs"),
        vec![
            (6, "shard-isolation"),
            (8, "shard-isolation"),
            (10, "shard-isolation"),
            (11, "shard-isolation"),
            (15, "shard-isolation"),
        ]
    );
}

#[test]
fn consts_and_immutable_statics_are_clean() {
    assert_eq!(v3_findings("shard_clean.rs"), vec![]);
}

#[test]
fn paired_ledger_field_has_both_sides() {
    let fields = vec!["reclaimed".to_string()];
    let a = v3("ledger_paired.rs", &fields);
    assert_eq!(a.analysis.findings, vec![]);
    let (field, sites) = &a.ledger[0];
    assert_eq!(field, "reclaimed");
    assert_eq!(sites.debits, vec![10]);
    assert_eq!(sites.credits, vec![13]);
}

#[test]
fn unpaired_ledger_field_exposes_the_lone_debit() {
    let fields = vec!["reclaimed".to_string()];
    let a = v3("ledger_unpaired.rs", &fields);
    let (field, sites) = &a.ledger[0];
    assert_eq!(field, "reclaimed");
    assert_eq!(sites.debits, vec![10]);
    assert_eq!(
        sites.credits,
        Vec::<usize>::new(),
        "the firing condition lint_workspace reports"
    );
}

/// The differential: on every corpus fixture, v3 must report everything
/// v2 reports (same file, line, rule, and message), and on at least
/// four fixtures it must report strictly more — the new passes earn
/// their keep without eating the old ones.
#[test]
fn v3_is_a_superset_of_v2_on_every_fixture() {
    let mut fixtures: Vec<String> = fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    fixtures.sort();
    assert!(fixtures.len() >= 18, "corpus shrank: {fixtures:?}");

    let mut strictly_more = 0usize;
    for name in &fixtures {
        let rel = format!("crates/systems/src/{name}");
        let source = fixture(name);
        let v2 = analyze_source(FileCtx::new(Layer::Model, &rel), &rel, &source).findings;
        let v3 = analyze_source_v3(
            FileCtx::new(Layer::Model, &rel),
            &rel,
            &source,
            &[],
            &[],
            false,
        )
        .analysis
        .findings;
        for f in &v2 {
            assert!(
                v3.contains(f),
                "{name}: v2 finding lost in v3: {f:?}\nv3 = {v3:?}"
            );
        }
        if v3.len() > v2.len() {
            strictly_more += 1;
        }
    }
    assert!(
        strictly_more >= 4,
        "expected >=4 fixtures where v3 adds findings, got {strictly_more}"
    );
}
