//! The two acceptance gates for simlint: the merged tree itself is clean,
//! and a synthetic workspace with a freshly-introduced hazard fails.

use std::fs;
use std::path::PathBuf;

use simlint::{find_workspace_root, lint_workspace, run};

fn repo_root() -> PathBuf {
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(&here).expect("simlint must live inside the workspace")
}

#[test]
fn the_merged_tree_is_clean() {
    let report = lint_workspace(&repo_root()).expect("scan must succeed");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {report:?}"
    );
    assert!(
        report.is_clean(),
        "workspace has determinism findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn cli_exits_zero_on_the_merged_tree() {
    let root = repo_root();
    let args = vec![
        "--deny-all".to_string(),
        "--root".to_string(),
        root.display().to_string(),
    ];
    assert_eq!(run(&args), 0);
}

/// Build a throwaway mini-workspace with one model crate, inject a hazard,
/// and check the CLI reports failure (exit code 1).
#[test]
fn cli_exits_nonzero_when_a_hazard_enters_a_model_crate() {
    let dir = std::env::temp_dir().join(format!("simlint-fixture-{}", std::process::id()));
    let src = dir.join("crates/systems/src");
    fs::create_dir_all(&src).unwrap();
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
    fs::write(
        src.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         use std::collections::HashMap;\n\
         pub fn seed() -> u64 { thread_rng().gen() }\n\
         pub fn fanout() { std::thread::spawn(|| {}); }\n",
    )
    .unwrap();

    let args = vec![
        "--deny-all".to_string(),
        "--root".to_string(),
        dir.display().to_string(),
    ];
    assert_eq!(run(&args), 1, "hazardous model crate must fail the lint");

    let report = lint_workspace(&dir).unwrap();
    let rules: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"unordered"), "{rules:?}");
    assert!(rules.contains(&"ambient-rng"), "{rules:?}");
    assert!(rules.contains(&"host-thread"), "{rules:?}");

    fs::remove_dir_all(&dir).unwrap();
}
