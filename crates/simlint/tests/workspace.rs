//! Integration tests over the live workspace and over throwaway fixture
//! workspaces: the merged tree must be clean, the layer-violation rule
//! must fail a workspace whose model crate depends on a harness crate,
//! stale waivers must fail the build, and the baseline gate must hold.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use simlint::{find_workspace_root, lint_workspace};

fn repo_root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(args)
        .output()
        .expect("run simlint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Build a throwaway workspace under the target dir (inside the repo, so
/// no sandbox issues) and return its root.
fn scratch_ws(name: &str, crates: &[(&str, &str, &str, &str)]) -> PathBuf {
    // crates: (dir_name, layer, extra_manifest, lib_source)
    let root = repo_root()
        .join("target/simlint-scratch")
        .join(format!("{name}-{}", std::process::id()));
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    fs::create_dir_all(root.join("crates")).unwrap();
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\nresolver = \"2\"\n",
    )
    .unwrap();
    for (dir, layer, extra, lib) in crates {
        let cdir = root.join("crates").join(dir);
        fs::create_dir_all(cdir.join("src")).unwrap();
        fs::write(
            cdir.join("Cargo.toml"),
            format!(
                "[package]\nname = \"{dir}\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n\
                 [package.metadata.simlint]\nlayer = \"{layer}\"\n\n{extra}"
            ),
        )
        .unwrap();
        fs::write(
            cdir.join("src/lib.rs"),
            format!("#![forbid(unsafe_code)]\n{lib}"),
        )
        .unwrap();
    }
    root
}

#[test]
fn merged_tree_is_clean_with_a_bounded_waiver_ledger() {
    let report = lint_workspace(&repo_root()).expect("lint workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has findings:\n{}",
        rendered.join("\n")
    );
    // The waiver ledger may only shrink: 3 waivers as of the v3
    // dataflow migration, which burned down every time-float-cast
    // waiver via the SimDuration float accessors (the `time_boundary`
    // metadata audits that one file instead). What remains: 1
    // hook-conformance on the dispatcherless resilient baseline, 2
    // shard-isolation on nicsched's write-once registries. If you
    // legitimately removed one, lower this number; never raise it.
    assert!(
        report.waivers.len() <= 3,
        "waiver ledger grew to {}: the ledger may only shrink",
        report.waivers.len()
    );
    for w in &report.waivers {
        assert!(
            w.rules == vec!["hook-conformance".to_string()]
                || w.rules == vec!["shard-isolation".to_string()],
            "unexpected waiver on the live tree: {w:?}"
        );
    }
}

#[test]
fn cli_passes_on_the_live_workspace() {
    let root = repo_root();
    let (code, out, err) = run_cli(&["--deny-all", "--root", root.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout:\n{out}\nstderr:\n{err}");
    assert!(out.contains("0 finding(s)"), "{out}");
}

#[test]
fn self_lint_passes_with_zero_waivers() {
    let root = repo_root();
    let (code, out, err) = run_cli(&["--self", "--root", root.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout:\n{out}\nstderr:\n{err}");
    assert!(out.contains("0 waiver(s)"), "{out}");
}

#[test]
fn model_crate_depending_on_harness_crate_fails_the_build() {
    let ws = scratch_ws(
        "layer",
        &[
            (
                "modelcrate",
                "model",
                "[dependencies]\nharnesscrate = { path = \"../harnesscrate\" }\n",
                "pub fn step() {}\n",
            ),
            ("harnesscrate", "harness", "", "pub fn drive() {}\n"),
        ],
    );
    let (code, out, _err) = run_cli(&["--deny-all", "--root", ws.to_str().unwrap()]);
    assert_eq!(code, 1, "expected failure, got:\n{out}");
    assert!(out.contains("layer-violation"), "{out}");
    assert!(out.contains("harnesscrate"), "{out}");
    fs::remove_dir_all(&ws).ok();
}

#[test]
fn crate_without_layer_metadata_fails_the_build() {
    let ws = scratch_ws("nolayer", &[("plain", "model", "", "pub fn ok() {}\n")]);
    // Strip the metadata table the helper wrote.
    let manifest = ws.join("crates/plain/Cargo.toml");
    let text = fs::read_to_string(&manifest)
        .unwrap()
        .replace("[package.metadata.simlint]\nlayer = \"model\"\n", "");
    fs::write(&manifest, text).unwrap();
    let (code, out, _err) = run_cli(&["--deny-all", "--root", ws.to_str().unwrap()]);
    assert_eq!(code, 1, "expected failure, got:\n{out}");
    assert!(out.contains("declares no architectural layer"), "{out}");
    fs::remove_dir_all(&ws).ok();
}

#[test]
fn stale_waiver_fails_the_build() {
    let ws = scratch_ws(
        "stale",
        &[(
            "modelcrate",
            "model",
            "",
            "// simlint: allow(unordered, reason=was needed once)\npub fn clean() {}\n",
        )],
    );
    let (code, out, _err) = run_cli(&["--deny-all", "--root", ws.to_str().unwrap()]);
    assert_eq!(code, 1, "expected failure, got:\n{out}");
    assert!(out.contains("stale-waiver"), "{out}");
    fs::remove_dir_all(&ws).ok();
}

#[test]
fn hazardous_model_crate_fails_with_alias_resolution() {
    let ws = scratch_ws(
        "hazard",
        &[(
            "modelcrate",
            "model",
            "",
            "use std::collections::HashMap as Fast;\npub fn t() -> Fast<u8, u8> { Fast::new() }\n",
        )],
    );
    let (code, out, _err) = run_cli(&["--deny-all", "--root", ws.to_str().unwrap()]);
    assert_eq!(code, 1, "expected failure, got:\n{out}");
    assert!(out.contains("unordered"), "{out}");
    assert!(out.contains("aliasing HashMap"), "{out}");
    fs::remove_dir_all(&ws).ok();
}

#[test]
fn baseline_gate_passes_then_rejects_growth() {
    let root = repo_root();
    let baseline = root.join("SIMLINT_BASELINE.json");
    assert!(
        baseline.is_file(),
        "SIMLINT_BASELINE.json must be checked in"
    );
    let (code, out, err) = run_cli(&[
        "--root",
        root.to_str().unwrap(),
        "--compare",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stdout:\n{out}\nstderr:\n{err}");
    assert!(out.contains("baseline gate: OK"), "{out}");

    // Tamper: a baseline allowing fewer waivers than the tree carries
    // must fail the gate (this is what catches ledger growth in CI).
    let tampered = root.join("target/simlint-scratch");
    fs::create_dir_all(&tampered).unwrap();
    let tampered = tampered.join(format!("tampered-{}.json", std::process::id()));
    fs::write(&tampered, "{\"findings\": [], \"waiver_counts\": {}}").unwrap();
    let (code, _out, err) = run_cli(&[
        "--root",
        root.to_str().unwrap(),
        "--compare",
        tampered.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "tampered baseline must fail");
    assert!(err.contains("waiver ledger grew"), "{err}");
    fs::remove_file(&tampered).ok();
}

#[test]
fn strict_gate_fails_on_unratcheted_shrinkage() {
    // A baseline carrying a finding the tree no longer has: the plain
    // gate notes the improvement and passes; `--strict` (what CI runs)
    // fails until --write-baseline re-ratchets, so the checked-in
    // ledger can never silently overstate the debt.
    let root = repo_root();
    let real = fs::read_to_string(root.join("SIMLINT_BASELINE.json")).unwrap();
    let phantom = real.replace(
        "\"findings\": [\n  ]",
        "\"findings\": [\n    {\"file\": \"crates/sim-core/src/lib.rs\", \
         \"line\": 1, \"rule\": \"unordered\"}\n  ]",
    );
    assert_ne!(phantom, real, "baseline format changed under the test");
    let dir = root.join("target/simlint-scratch");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("phantom-{}.json", std::process::id()));
    fs::write(&path, phantom).unwrap();

    let (code, out, err) = run_cli(&[
        "--root",
        root.to_str().unwrap(),
        "--compare",
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "plain gate must tolerate shrinkage:\n{out}\n{err}");
    assert!(out.contains("baseline gate: OK"), "{out}");

    let (code, _out, err) = run_cli(&[
        "--root",
        root.to_str().unwrap(),
        "--compare",
        path.to_str().unwrap(),
        "--strict",
    ]);
    assert_eq!(code, 1, "strict gate must fail on shrinkage:\n{err}");
    assert!(err.contains("baseline gate (strict)"), "{err}");
    assert!(err.contains("--write-baseline"), "{err}");
    fs::remove_file(&path).ok();
}

#[test]
fn sarif_output_is_written_and_well_formed() {
    let root = repo_root();
    let dir = root.join("target/simlint-scratch");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("sarif-{}.sarif", std::process::id()));
    let (code, out, err) = run_cli(&[
        "--root",
        root.to_str().unwrap(),
        "--sarif",
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stdout:\n{out}\nstderr:\n{err}");
    let sarif = fs::read_to_string(&path).unwrap();
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"name\": \"simlint\""), "{sarif}");
    for rule in simlint::rules::RULES {
        assert!(sarif.contains(rule), "SARIF rules array missing {rule}");
    }
    fs::remove_file(&path).ok();
}

#[test]
fn list_rules_and_explain_share_one_source_of_truth() {
    let (code, out, _) = run_cli(&["--list-rules"]);
    assert_eq!(code, 0);
    for rule in simlint::rules::RULES {
        assert!(out.contains(rule), "--list-rules missing {rule}");
    }
    let (code, out, _) = run_cli(&["--explain", "stale-waiver"]);
    assert_eq!(code, 0);
    let spec = simlint::rules::spec("stale-waiver").unwrap();
    assert!(
        out.contains(spec.detail.split_whitespace().next().unwrap()),
        "{out}"
    );
    assert!(out.contains("waivable: no"), "{out}");
    let (code, _, err) = run_cli(&["--explain", "no-such-rule"]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown rule"), "{err}");
}
