//! Exact-findings assertions over the lexer edge-case fixture corpus.
//!
//! Each fixture is analyzed as if it lived in a model-layer crate
//! (`crates/systems/src/<fixture>`), and the test pins the *complete*
//! (line, rule) finding set — not just presence — so a lexer regression
//! that adds or drops a finding anywhere in a fixture fails loudly.

use std::fs;
use std::path::Path;

use simlint::graph::Layer;
use simlint::rules::tokens::{analyze_source, FileCtx};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/corpus")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn token_findings(name: &str) -> Vec<(usize, &'static str)> {
    let rel = format!("crates/systems/src/{name}");
    let source = fixture(name);
    analyze_source(FileCtx::new(Layer::Model, &rel), &rel, &source)
        .findings
        .iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn raw_strings_with_embedded_quotes_never_fire() {
    assert_eq!(token_findings("raw_strings.rs"), vec![]);
}

#[test]
fn nested_block_comments_never_fire() {
    assert_eq!(token_findings("nested_comments.rs"), vec![]);
}

#[test]
fn lifetimes_do_not_hide_the_real_hazard() {
    assert_eq!(
        token_findings("chars_lifetimes.rs"),
        vec![(13, "wall-clock")]
    );
}

#[test]
fn cfg_test_gated_wall_clock_is_exempt() {
    assert_eq!(token_findings("cfg_test_wallclock.rs"), vec![]);
}

#[test]
fn aliased_hashmap_fires_at_import_and_every_use() {
    assert_eq!(
        token_findings("alias_unordered.rs"),
        vec![(3, "unordered"), (5, "unordered"), (6, "unordered")]
    );
}

#[test]
fn local_instant_type_is_not_a_wall_clock() {
    assert_eq!(token_findings("local_shadow_instant.rs"), vec![]);
}

#[test]
fn multiline_float_sort_fires_once_at_the_call() {
    assert_eq!(
        token_findings("multiline_float_sort.rs"),
        vec![(4, "float-sort")]
    );
}

#[test]
fn aliased_thread_fires_at_import_and_spawn() {
    assert_eq!(
        token_findings("alias_thread.rs"),
        vec![(2, "host-thread"), (5, "host-thread")]
    );
}

#[test]
fn unused_waiver_is_itself_a_finding() {
    assert_eq!(token_findings("stale_waiver.rs"), vec![(3, "stale-waiver")]);
}

#[test]
fn allow_block_covers_its_span_and_no_more() {
    assert_eq!(
        token_findings("allow_block.rs"),
        vec![(10, "unordered"), (11, "unordered")]
    );
}
