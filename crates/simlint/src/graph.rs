//! The workspace dependency graph and the `layer-violation` rule.
//!
//! Every workspace crate declares its architectural layer in its
//! manifest:
//!
//! ```toml
//! [package.metadata.simlint]
//! layer = "model"
//! ```
//!
//! The layers form the architecture DAG the repository promises:
//!
//! ```text
//!        app      (mindgap root package: binaries + re-exports)
//!         │
//!      harness    (experiments, bench — may use std::thread; bins may
//!         │        read the wall clock: they time real builds)
//!       model     (net-wire, nic-model, cpu-model, workload, nicsched,
//!         │        systems — deterministic simulation state)
//!        core     (sim-core — depends on no internal crate)
//!
//!       [tool]    (simlint — depends on nothing; nothing depends on it)
//! ```
//!
//! A crate may depend only on layers at or below its own (`tool` and
//! `core` on none), so a model crate can never pull in a harness crate —
//! the dependency direction that would let wall clocks, OS threads and
//! ambient entropy leak into simulation state. Vendored stand-ins under
//! `vendor/` (bytes, proptest, criterion) are third-party surface and
//! exempt, like any external dependency.
//!
//! This module parses each `Cargo.toml` with a small section-aware
//! scanner (no TOML dependency), builds the graph, and emits
//! `layer-violation` findings for: missing or unknown layer metadata,
//! forbidden edges (normal, dev, or build dependencies alike), and
//! cycles. It also *feeds* the token pass: the `host-thread` and
//! `wall-clock` scopes come from these layers, replacing the
//! hand-maintained path allowlist of simlint v1.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::Finding;

/// Architectural layer of one workspace crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// `sim-core`: the deterministic kernel; no internal dependencies.
    Core,
    /// Simulation-state crates; may depend on core + model.
    Model,
    /// Host-side drivers (experiments, bench); may fan OS threads.
    Harness,
    /// The workspace-root package; may depend on anything below.
    App,
    /// Standalone tooling (simlint); depends on nothing internal.
    Tool,
}

impl Layer {
    /// Parse the manifest string form.
    pub fn parse(s: &str) -> Option<Layer> {
        match s {
            "core" => Some(Layer::Core),
            "model" => Some(Layer::Model),
            "harness" => Some(Layer::Harness),
            "app" => Some(Layer::App),
            "tool" => Some(Layer::Tool),
            _ => None,
        }
    }

    /// The manifest string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Core => "core",
            Layer::Model => "model",
            Layer::Harness => "harness",
            Layer::App => "app",
            Layer::Tool => "tool",
        }
    }

    /// May a crate of layer `self` depend on an internal crate of layer
    /// `dep`? This is the architecture DAG in one function.
    pub fn may_depend_on(self, dep: Layer) -> bool {
        match self {
            Layer::Core | Layer::Tool => false,
            Layer::Model => matches!(dep, Layer::Core | Layer::Model),
            Layer::Harness => matches!(dep, Layer::Core | Layer::Model | Layer::Harness),
            Layer::App => matches!(dep, Layer::Core | Layer::Model | Layer::Harness),
        }
    }
}

/// One internal dependency edge as written in a manifest.
#[derive(Debug, Clone)]
pub struct DepEdge {
    /// Dependency crate name.
    pub to: String,
    /// 1-based line in the manifest where the edge is declared.
    pub line: usize,
    /// `dependencies`, `dev-dependencies`, or `build-dependencies`.
    pub section: String,
}

/// One workspace crate as the graph sees it.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `[package] name`.
    pub name: String,
    /// Workspace-relative manifest path with forward slashes.
    pub manifest: String,
    /// Workspace-relative crate directory ("" for the root package).
    pub dir: String,
    /// Declared layer, if any.
    pub layer: Option<Layer>,
    /// Raw layer string when it failed to parse.
    pub layer_raw: Option<String>,
    /// All declared dependency names (internal and external).
    pub deps: Vec<DepEdge>,
    /// Crate-relative path of the declared float-to-time boundary file
    /// (`time_boundary = "src/time.rs"`): the one audited file where the
    /// canonical `*_f64` conversions may cast between time and floats
    /// without per-line waivers.
    pub time_boundary: Option<String>,
    /// Exactly-once ledger fields (`ledger = ["reclaimed"]`): every
    /// declared field must have matched debit and credit sites somewhere
    /// in the crate (the `ledger-pairing` rule).
    pub ledger: Vec<String>,
    /// Additional event-queue scheduling entry points (`sched_sinks =
    /// ["push_handle"]`): method names the determinism-taint pass treats
    /// as ordering-sensitive sinks in this crate's files, alongside the
    /// built-in `schedule*` family — how a crate that grows its own
    /// queue lanes (e.g. the timer wheel) keeps them under taint
    /// analysis without a lint release.
    pub sched_sinks: Vec<String>,
    /// Shard entry points (`shard_roots = ["Dispatcher::on_request"]`):
    /// the functions a future intra-run shard calls into. The shard
    /// certification pass proves everything reachable from these roots
    /// touches only shard-local state and records the per-crate verdict
    /// in `SHARD_SAFETY.json`. `Type::method` names an impl method; a
    /// bare name matches free functions of that name in the crate.
    pub shard_roots: Vec<String>,
}

/// The parsed workspace graph.
#[derive(Debug, Default)]
pub struct WorkspaceGraph {
    /// Crates by package name, deterministic order.
    pub crates: BTreeMap<String, CrateInfo>,
}

impl WorkspaceGraph {
    /// Load the graph from a workspace root: every `crates/*` member with
    /// a manifest, plus the root package if the root manifest has a
    /// `[package]` section. `vendor/*` members are exempt third-party
    /// stand-ins and are not graph nodes.
    pub fn load(root: &Path) -> io::Result<WorkspaceGraph> {
        let mut graph = WorkspaceGraph::default();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut entries: Vec<_> = fs::read_dir(&crates_dir)?.collect::<Result<_, _>>()?;
            entries.sort_by_key(|e| e.file_name());
            for entry in entries {
                let manifest = entry.path().join("Cargo.toml");
                if !manifest.is_file() {
                    continue;
                }
                let dir = format!("crates/{}", entry.file_name().to_string_lossy());
                let text = fs::read_to_string(&manifest)?;
                if let Some(info) = parse_manifest(&text, &format!("{dir}/Cargo.toml"), &dir) {
                    graph.crates.insert(info.name.clone(), info);
                }
            }
        }
        let root_manifest = root.join("Cargo.toml");
        if root_manifest.is_file() {
            let text = fs::read_to_string(&root_manifest)?;
            if let Some(info) = parse_manifest(&text, "Cargo.toml", "") {
                graph.crates.insert(info.name.clone(), info);
            }
        }
        Ok(graph)
    }

    /// The layer of the crate owning `rel_path` (workspace-relative with
    /// forward slashes), if the path belongs to a known crate.
    pub fn layer_of_file(&self, rel_path: &str) -> Option<Layer> {
        let dir = rel_path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .map(|c| format!("crates/{c}"))
            .unwrap_or_default();
        self.crates
            .values()
            .find(|c| c.dir == dir)
            .and_then(|c| c.layer)
    }

    /// Evaluate the `layer-violation` rule over the whole graph.
    pub fn check(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        let layer_of: BTreeMap<&str, Option<Layer>> = self
            .crates
            .values()
            .map(|c| (c.name.as_str(), c.layer))
            .collect();

        for c in self.crates.values() {
            match (&c.layer, &c.layer_raw) {
                (Some(_), _) => {}
                (None, Some(raw)) => findings.push(Finding {
                    file: c.manifest.clone(),
                    line: 1,
                    rule: "layer-violation",
                    message: format!(
                        "unknown layer `{raw}`; declare one of \
                         core/model/harness/app/tool in [package.metadata.simlint]"
                    ),
                }),
                (None, None) => findings.push(Finding {
                    file: c.manifest.clone(),
                    line: 1,
                    rule: "layer-violation",
                    message: "crate declares no architectural layer; add \
                              `[package.metadata.simlint] layer = \"…\"` so the \
                              dependency DAG stays machine-checkable"
                        .into(),
                }),
            }
            let Some(from) = c.layer else { continue };
            for dep in &c.deps {
                // Only internal crates are graph edges; vendor and
                // registry dependencies are external surface.
                let Some(&to_layer) = layer_of.get(dep.to.as_str()) else {
                    continue;
                };
                let Some(to_layer) = to_layer else { continue };
                if !from.may_depend_on(to_layer) {
                    findings.push(Finding {
                        file: c.manifest.clone(),
                        line: dep.line,
                        rule: "layer-violation",
                        message: format!(
                            "`{}` (layer {}) must not depend on `{}` (layer {}): \
                             {} may only depend on {}; this edge would let \
                             harness-side nondeterminism reach simulation state",
                            c.name,
                            from.as_str(),
                            dep.to,
                            to_layer.as_str(),
                            from.as_str(),
                            allowed_list(from),
                        ),
                    });
                }
            }
        }

        findings.extend(self.cycle_findings());
        findings
    }

    /// Cycle detection over internal edges (DFS, deterministic order).
    fn cycle_findings(&self) -> Vec<Finding> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let names: Vec<&str> = self.crates.keys().map(String::as_str).collect();
        let mut marks: BTreeMap<&str, Mark> = names.iter().map(|n| (*n, Mark::White)).collect();
        let mut findings = Vec::new();

        fn visit(
            graph: &WorkspaceGraph,
            name: &str,
            marks: &mut BTreeMap<&str, Mark>,
            stack: &mut Vec<String>,
            findings: &mut Vec<Finding>,
        ) {
            let Some(info) = graph.crates.get(name) else {
                return;
            };
            match marks.get(name) {
                Some(Mark::Black) => return,
                Some(Mark::Grey) => {
                    let start = stack.iter().position(|n| n == name).unwrap_or(0);
                    findings.push(Finding {
                        file: info.manifest.clone(),
                        line: 1,
                        rule: "layer-violation",
                        message: format!(
                            "dependency cycle: {} -> {}",
                            stack[start..].join(" -> "),
                            name
                        ),
                    });
                    return;
                }
                _ => {}
            }
            if let Some(m) = marks.get_mut(name) {
                *m = Mark::Grey;
            }
            stack.push(name.to_string());
            let deps: Vec<String> = info.deps.iter().map(|d| d.to.clone()).collect();
            for dep in deps {
                if graph.crates.contains_key(dep.as_str()) {
                    visit(graph, &dep, marks, stack, findings);
                }
            }
            stack.pop();
            if let Some(m) = marks.get_mut(name) {
                *m = Mark::Black;
            }
        }

        for name in names {
            visit(self, name, &mut marks, &mut Vec::new(), &mut findings);
        }
        findings
    }
}

fn allowed_list(from: Layer) -> &'static str {
    match from {
        Layer::Core => "no internal crate",
        Layer::Tool => "no internal crate",
        Layer::Model => "core and model crates",
        Layer::Harness => "core, model and harness crates",
        Layer::App => "core, model and harness crates",
    }
}

/// Parse one manifest with a minimal section-aware scanner. Returns
/// `None` when the manifest has no `[package]` section (e.g. a pure
/// `[workspace]` root).
fn parse_manifest(text: &str, manifest_rel: &str, dir_rel: &str) -> Option<CrateInfo> {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        Package,
        Metadata,
        Deps,
        DevDeps,
        BuildDeps,
        Other,
    }
    let mut section = Section::Other;
    let mut name = None;
    let mut layer_raw: Option<String> = None;
    let mut time_boundary: Option<String> = None;
    let mut ledger: Vec<String> = Vec::new();
    let mut sched_sinks: Vec<String> = Vec::new();
    let mut shard_roots: Vec<String> = Vec::new();
    let mut deps = Vec::new();
    let mut saw_package = false;

    for (idx, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.starts_with('[') {
            section = match line {
                "[package]" => {
                    saw_package = true;
                    Section::Package
                }
                "[package.metadata.simlint]" => Section::Metadata,
                "[dependencies]" => Section::Deps,
                "[dev-dependencies]" => Section::DevDeps,
                "[build-dependencies]" => Section::BuildDeps,
                _ => Section::Other,
            };
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match section {
            Section::Package => {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(v) = rest.strip_prefix('=') {
                        name = Some(v.trim().trim_matches('"').to_string());
                    }
                }
            }
            Section::Metadata => {
                if let Some(rest) = line.strip_prefix("layer") {
                    let rest = rest.trim_start();
                    if let Some(v) = rest.strip_prefix('=') {
                        layer_raw = Some(v.trim().trim_matches('"').to_string());
                    }
                } else if let Some(rest) = line.strip_prefix("time_boundary") {
                    let rest = rest.trim_start();
                    if let Some(v) = rest.strip_prefix('=') {
                        time_boundary = Some(v.trim().trim_matches('"').to_string());
                    }
                } else if let Some(rest) = line.strip_prefix("ledger") {
                    let rest = rest.trim_start();
                    if let Some(v) = rest.strip_prefix('=') {
                        let inner = v.trim().trim_start_matches('[').trim_end_matches(']');
                        ledger = inner
                            .split(',')
                            .map(|s| s.trim().trim_matches('"').to_string())
                            .filter(|s| !s.is_empty())
                            .collect();
                    }
                } else if let Some(rest) = line.strip_prefix("sched_sinks") {
                    let rest = rest.trim_start();
                    if let Some(v) = rest.strip_prefix('=') {
                        let inner = v.trim().trim_start_matches('[').trim_end_matches(']');
                        sched_sinks = inner
                            .split(',')
                            .map(|s| s.trim().trim_matches('"').to_string())
                            .filter(|s| !s.is_empty())
                            .collect();
                    }
                } else if let Some(rest) = line.strip_prefix("shard_roots") {
                    let rest = rest.trim_start();
                    if let Some(v) = rest.strip_prefix('=') {
                        let inner = v.trim().trim_start_matches('[').trim_end_matches(']');
                        shard_roots = inner
                            .split(',')
                            .map(|s| s.trim().trim_matches('"').to_string())
                            .filter(|s| !s.is_empty())
                            .collect();
                    }
                }
            }
            Section::Deps | Section::DevDeps | Section::BuildDeps => {
                // `key = …`, `key.workspace = true`, `key = { … }`.
                let key: String = line
                    .chars()
                    .take_while(|c| !matches!(c, '=' | '.' | ' ' | '\t'))
                    .collect();
                if !key.is_empty() {
                    deps.push(DepEdge {
                        to: key.trim_matches('"').to_string(),
                        line: idx + 1,
                        section: match section {
                            Section::DevDeps => "dev-dependencies",
                            Section::BuildDeps => "build-dependencies",
                            _ => "dependencies",
                        }
                        .to_string(),
                    });
                }
            }
            Section::Other => {}
        }
    }
    if !saw_package {
        return None;
    }
    let name = name?;
    let (layer, layer_raw) = match layer_raw {
        Some(raw) => match Layer::parse(&raw) {
            Some(l) => (Some(l), None),
            None => (None, Some(raw)),
        },
        None => (None, None),
    };
    Some(CrateInfo {
        name,
        manifest: manifest_rel.to_string(),
        dir: dir_rel.to_string(),
        layer,
        layer_raw,
        deps,
        time_boundary,
        ledger,
        sched_sinks,
        shard_roots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(name: &str, dir: &str, layer: &str, deps: &[&str]) -> CrateInfo {
        let text = format!(
            "[package]\nname = \"{name}\"\n\n[package.metadata.simlint]\nlayer = \"{layer}\"\n\n\
             [dependencies]\n{}",
            deps.iter()
                .map(|d| format!("{d}.workspace = true\n"))
                .collect::<String>()
        );
        parse_manifest(&text, &format!("{dir}/Cargo.toml"), dir).unwrap()
    }

    fn graph(crates: Vec<CrateInfo>) -> WorkspaceGraph {
        WorkspaceGraph {
            crates: crates.into_iter().map(|c| (c.name.clone(), c)).collect(),
        }
    }

    #[test]
    fn manifest_parsing_extracts_name_layer_and_deps() {
        let c = mk("systems", "crates/systems", "model", &["sim-core", "bytes"]);
        assert_eq!(c.name, "systems");
        assert_eq!(c.layer, Some(Layer::Model));
        let names: Vec<_> = c.deps.iter().map(|d| d.to.as_str()).collect();
        assert_eq!(names, vec!["sim-core", "bytes"]);
        assert!(c.deps[0].line > 0);
    }

    #[test]
    fn manifest_parsing_extracts_boundary_and_ledger_metadata() {
        let text = "[package]\nname = \"sim-core\"\n\n[package.metadata.simlint]\n\
                    layer = \"core\"\ntime_boundary = \"src/time.rs\"\n\
                    ledger = [\"reclaimed\", \"in_flight\"]\n";
        let c = parse_manifest(text, "crates/sim-core/Cargo.toml", "crates/sim-core").unwrap();
        assert_eq!(c.time_boundary.as_deref(), Some("src/time.rs"));
        assert_eq!(c.ledger, vec!["reclaimed", "in_flight"]);
        let plain = mk("net-wire", "crates/net-wire", "model", &[]);
        assert_eq!(plain.time_boundary, None);
        assert!(plain.ledger.is_empty());
        assert!(plain.sched_sinks.is_empty());
    }

    #[test]
    fn manifest_parsing_extracts_sched_sink_metadata() {
        let text = "[package]\nname = \"sim-core\"\n\n[package.metadata.simlint]\n\
                    layer = \"core\"\nsched_sinks = [\"push_handle\", \"schedule_far\"]\n";
        let c = parse_manifest(text, "crates/sim-core/Cargo.toml", "crates/sim-core").unwrap();
        assert_eq!(c.sched_sinks, vec!["push_handle", "schedule_far"]);
        assert!(c.shard_roots.is_empty());
    }

    #[test]
    fn manifest_parsing_extracts_shard_root_metadata() {
        let text = "[package]\nname = \"nicsched\"\n\n[package.metadata.simlint]\n\
                    layer = \"model\"\n\
                    shard_roots = [\"Dispatcher::on_request\", \"kick\"]\n";
        let c = parse_manifest(text, "crates/nicsched/Cargo.toml", "crates/nicsched").unwrap();
        assert_eq!(c.shard_roots, vec!["Dispatcher::on_request", "kick"]);
    }

    #[test]
    fn model_depending_on_harness_is_a_violation() {
        let g = graph(vec![
            mk("sim-core", "crates/sim-core", "core", &[]),
            mk(
                "systems",
                "crates/systems",
                "model",
                &["sim-core", "experiments"],
            ),
            mk(
                "experiments",
                "crates/experiments",
                "harness",
                &["sim-core"],
            ),
        ]);
        let f = g.check();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "layer-violation");
        assert!(f[0].message.contains("experiments"), "{}", f[0].message);
        assert_eq!(f[0].file, "crates/systems/Cargo.toml");
    }

    #[test]
    fn core_depending_on_anything_internal_is_a_violation() {
        let g = graph(vec![
            mk("sim-core", "crates/sim-core", "core", &["net-wire"]),
            mk("net-wire", "crates/net-wire", "model", &[]),
        ]);
        let f = g.check();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("sim-core"));
    }

    #[test]
    fn external_deps_are_not_edges() {
        let g = graph(vec![mk(
            "net-wire",
            "crates/net-wire",
            "model",
            &["bytes", "proptest"],
        )]);
        assert!(g.check().is_empty());
    }

    #[test]
    fn missing_layer_is_a_violation() {
        let text = "[package]\nname = \"mystery\"\n";
        let c = parse_manifest(text, "crates/mystery/Cargo.toml", "crates/mystery").unwrap();
        let g = graph(vec![c]);
        let f = g.check();
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no architectural layer"));
    }

    #[test]
    fn unknown_layer_is_a_violation() {
        let c = mk("odd", "crates/odd", "quantum", &[]);
        assert!(c.layer.is_none());
        let g = graph(vec![c]);
        let f = g.check();
        assert!(f[0].message.contains("quantum"));
    }

    #[test]
    fn cycles_are_violations() {
        let g = graph(vec![
            mk("a", "crates/a", "model", &["b"]),
            mk("b", "crates/b", "model", &["a"]),
        ]);
        let f = g.check();
        assert!(f.iter().any(|f| f.message.contains("cycle")), "{f:?}");
    }

    #[test]
    fn the_real_dag_shape_is_clean() {
        let g = graph(vec![
            mk("sim-core", "crates/sim-core", "core", &[]),
            mk("net-wire", "crates/net-wire", "model", &["bytes"]),
            mk(
                "nic-model",
                "crates/nic-model",
                "model",
                &["sim-core", "net-wire"],
            ),
            mk(
                "systems",
                "crates/systems",
                "model",
                &["sim-core", "nic-model"],
            ),
            mk("experiments", "crates/experiments", "harness", &["systems"]),
            mk("bench", "crates/bench", "harness", &["experiments"]),
            mk("mindgap", "", "app", &["systems", "experiments"]),
            mk("simlint", "crates/simlint", "tool", &[]),
        ]);
        assert!(g.check().is_empty(), "{:?}", g.check());
    }

    #[test]
    fn layer_of_file_maps_paths_to_crates() {
        let g = graph(vec![
            mk("sim-core", "crates/sim-core", "core", &[]),
            mk("mindgap", "", "app", &[]),
        ]);
        assert_eq!(
            g.layer_of_file("crates/sim-core/src/engine.rs"),
            Some(Layer::Core)
        );
        assert_eq!(g.layer_of_file("src/lib.rs"), Some(Layer::App));
        assert_eq!(g.layer_of_file("crates/unknown/src/x.rs"), None);
    }
}
