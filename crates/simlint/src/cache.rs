//! Incremental analysis cache: per-file facts keyed by content hash.
//!
//! Phase A of the v4 pipeline (lex, parse, token rules, semantic rules,
//! local taint, fact extraction) is a pure function of one file's bytes
//! plus its crate's manifest metadata. That makes it cacheable: the CLI
//! persists every file's [`FileFacts`] keyed by an FNV-1a-64 content
//! hash, and a re-run only re-analyzes files whose bytes changed. The
//! global passes (call graph, summaries, shard certificate, waiver
//! finalize) always run fresh — they are cheap and depend on *every*
//! file — so cached and cold runs produce identical findings by
//! construction, which a test pins.
//!
//! The whole cache is salted with the rule inventory and every crate's
//! simlint manifest metadata (layer, `time_boundary`, `ledger`,
//! `sched_sinks`, `shard_roots`). Any change to either invalidates all
//! entries at once: manifest metadata changes analysis behavior without
//! touching file bytes, so it must participate in the key. An
//! unreadable, unparsable, or version-skewed cache file degrades to a
//! cold run — the cache can never change results, only skip work.
//! `--no-cache` skips both load and store.

use std::collections::BTreeMap;

use std::fs;
use std::io;
use std::path::Path;

use crate::dataflow::{CallFact, FnTaintFacts, OriginFact, SinkFact};
use crate::interproc::{FileFacts, FnFact, GlobalRef, StaticFact};
use crate::report::{json_str, parse_json, Value};
use crate::rules;
use crate::rules::semantic::LedgerSites;
use crate::rules::waivers::Waiver;
use crate::Finding;

/// Bumped whenever the serialized fact layout changes.
const CACHE_VERSION: &str = "simlint-cache-v1";

/// FNV-1a 64-bit.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash the environment a cached entry depends on besides file bytes:
/// cache layout version, the rule inventory, and every crate's simlint
/// manifest metadata (pre-rendered by the caller into `meta`).
pub fn salt(meta: &str) -> String {
    let mut text = String::from(CACHE_VERSION);
    text.push('\n');
    text.push_str(&rules::RULES.join(","));
    text.push('\n');
    text.push_str(meta);
    format!("{:016x}", fnv64(text.as_bytes()))
}

/// The loaded (or fresh) cache.
#[derive(Debug, Default)]
pub struct Cache {
    salt: String,
    files: BTreeMap<String, (String, FileFacts)>,
}

impl Cache {
    /// Load from `path`; any problem (missing file, parse error, salt or
    /// version mismatch) yields an empty cache with the given salt.
    pub fn load(path: &Path, salt: &str) -> Cache {
        let mut cache = Cache {
            salt: salt.to_string(),
            files: BTreeMap::new(),
        };
        let Ok(text) = fs::read_to_string(path) else {
            return cache;
        };
        let Ok(v) = parse_json(&text) else {
            return cache;
        };
        if v.get("schema").and_then(|s| s.as_usize()) != Some(1)
            || v.get("salt").and_then(|s| s.as_str()) != Some(salt)
        {
            return cache;
        }
        if let Some(Value::Object(files)) = v.get("files") {
            for (rel, entry) in files {
                let Some(hash) = entry.get("hash").and_then(|h| h.as_str()) else {
                    continue;
                };
                let Some(facts) = entry.get("facts").and_then(facts_from_json) else {
                    continue;
                };
                cache.files.insert(rel.clone(), (hash.to_string(), facts));
            }
        }
        cache
    }

    /// The cached facts for `rel` if the content hash still matches.
    pub fn lookup(&self, rel: &str, hash: &str) -> Option<&FileFacts> {
        self.files
            .get(rel)
            .filter(|(h, _)| h == hash)
            .map(|(_, f)| f)
    }

    /// Record freshly computed facts.
    pub fn insert(&mut self, rel: &str, hash: &str, facts: FileFacts) {
        self.files
            .insert(rel.to_string(), (hash.to_string(), facts));
    }

    /// Drop entries for files that no longer exist in the scan set.
    pub fn retain_files(&mut self, live: &[String]) {
        self.files.retain(|rel, _| live.iter().any(|l| l == rel));
    }

    /// Persist to `path` (creating parent directories).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = String::from("{\"schema\": 1, \"salt\": ");
        out.push_str(&json_str(&self.salt));
        out.push_str(", \"files\": {");
        let mut first = true;
        for (rel, (hash, facts)) in &self.files {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&json_str(rel));
            out.push_str(": {\"hash\": ");
            out.push_str(&json_str(hash));
            out.push_str(", \"facts\": ");
            out.push_str(&facts_to_json(facts));
            out.push('}');
        }
        out.push_str("\n}}\n");
        fs::write(path, out)
    }
}

fn arr<T>(items: &[T], f: impl Fn(&T) -> String) -> String {
    let inner: Vec<String> = items.iter().map(f).collect();
    format!("[{}]", inner.join(","))
}

fn str_arr(items: &[String]) -> String {
    arr(items, |s| json_str(s))
}

fn usize_arr(items: &[usize]) -> String {
    arr(items, usize::to_string)
}

fn origin_json(o: &OriginFact) -> String {
    format!(
        "{{\"call\": {}, \"label\": {}, \"line\": {}}}",
        o.call
            .as_deref()
            .map(json_str)
            .unwrap_or_else(|| "null".into()),
        json_str(&o.label),
        o.line
    )
}

/// Serialize one file's facts (compact JSON, deterministic).
pub fn facts_to_json(f: &FileFacts) -> String {
    let candidates = arr(&f.candidates, |c| {
        format!(
            "{{\"line\": {}, \"rule\": {}, \"message\": {}}}",
            c.line,
            json_str(c.rule),
            json_str(&c.message)
        )
    });
    let waivers = arr(&f.waivers, |w| {
        format!(
            "{{\"line\": {}, \"rules\": {}, \"first\": {}, \"last\": {}, \"block\": {}}}",
            w.line,
            str_arr(&w.rules),
            w.first,
            w.last,
            w.block
        )
    });
    let bad = arr(&f.bad_waivers, |(line, msg)| {
        format!("{{\"line\": {line}, \"message\": {}}}", json_str(msg))
    });
    let ledger = arr(&f.ledger, |(field, s)| {
        format!(
            "{{\"field\": {}, \"debits\": {}, \"credits\": {}}}",
            json_str(field),
            usize_arr(&s.debits),
            usize_arr(&s.credits)
        )
    });
    let bindings = {
        let inner: Vec<String> = f
            .bindings
            .iter()
            .map(|(k, v)| format!("{}: {}", json_str(k), str_arr(v)))
            .collect();
        format!("{{{}}}", inner.join(","))
    };
    let fns = arr(&f.fns, |fun| {
        let sinks = arr(&fun.taint.sinks, |s: &SinkFact| {
            format!(
                "{{\"line\": {}, \"label\": {}, \"callees\": {}}}",
                s.line,
                json_str(&s.label),
                str_arr(&s.callees)
            )
        });
        let calls = arr(&fun.taint.calls, |c: &CallFact| {
            format!(
                "{{\"name\": {}, \"method\": {}, \"path\": {}}}",
                json_str(&c.name),
                c.method,
                str_arr(&c.path)
            )
        });
        let refs = arr(&fun.global_refs, |g: &GlobalRef| {
            format!(
                "{{\"name\": {}, \"line\": {}, \"write\": {}}}",
                json_str(&g.name),
                g.line,
                g.write
            )
        });
        format!(
            "{{\"name\": {}, \"line\": {}, \"impl_type\": {}, \"sinks\": {}, \
             \"ret\": {}, \"calls\": {}, \"rng\": {}, \"refs\": {}}}",
            json_str(&fun.name),
            fun.line,
            fun.impl_type
                .as_deref()
                .map(json_str)
                .unwrap_or_else(|| "null".into()),
            sinks,
            arr(&fun.taint.ret, origin_json),
            calls,
            usize_arr(&fun.taint.rng_lines),
            refs
        )
    });
    let statics = arr(&f.statics, |s: &StaticFact| {
        format!(
            "{{\"name\": {}, \"line\": {}, \"mutable\": {}, \"tls\": {}, \"interior\": {}}}",
            json_str(&s.name),
            s.line,
            s.mutable,
            s.tls,
            s.interior
        )
    });
    format!(
        "{{\"rel\": {}, \"crate\": {}, \"candidates\": {}, \"waivers\": {}, \
         \"bad\": {}, \"ledger\": {}, \"bindings\": {}, \"fns\": {}, \
         \"statics\": {}, \"taint_scope\": {}, \"has_forbid\": {}}}",
        json_str(&f.rel),
        json_str(&f.crate_name),
        candidates,
        waivers,
        bad,
        ledger,
        bindings,
        fns,
        statics,
        f.taint_scope,
        f.has_forbid
    )
}

fn origin_from(v: &Value) -> Option<OriginFact> {
    Some(OriginFact {
        call: match v.get("call") {
            Some(Value::Null) | None => None,
            Some(c) => Some(c.as_str()?.to_string()),
        },
        label: v.get("label")?.as_str()?.to_string(),
        line: v.get("line")?.as_usize()?,
    })
}

fn str_vec(v: Option<&Value>) -> Option<Vec<String>> {
    v?.as_array()?
        .iter()
        .map(|s| s.as_str().map(str::to_string))
        .collect()
}

fn usize_vec(v: Option<&Value>) -> Option<Vec<usize>> {
    v?.as_array()?.iter().map(Value::as_usize).collect()
}

/// Deserialize one file's facts; `None` on any shape mismatch (the
/// caller treats that as a cache miss).
pub fn facts_from_json(v: &Value) -> Option<FileFacts> {
    let rel = v.get("rel")?.as_str()?.to_string();
    let mut candidates = Vec::new();
    for c in v.get("candidates")?.as_array()? {
        // Rule names round-trip through the static table; an unknown
        // name means the inventory changed and the entry is stale.
        let rule = rules::spec(c.get("rule")?.as_str()?)?.name;
        candidates.push(Finding {
            file: rel.clone(),
            line: c.get("line")?.as_usize()?,
            rule,
            message: c.get("message")?.as_str()?.to_string(),
        });
    }
    let mut waivers = Vec::new();
    for w in v.get("waivers")?.as_array()? {
        waivers.push(Waiver {
            line: w.get("line")?.as_usize()?,
            rules: str_vec(w.get("rules"))?,
            first: w.get("first")?.as_usize()?,
            last: w.get("last")?.as_usize()?,
            block: w.get("block")?.as_bool()?,
        });
    }
    let mut bad_waivers = Vec::new();
    for b in v.get("bad")?.as_array()? {
        bad_waivers.push((
            b.get("line")?.as_usize()?,
            b.get("message")?.as_str()?.to_string(),
        ));
    }
    let mut ledger = Vec::new();
    for l in v.get("ledger")?.as_array()? {
        ledger.push((
            l.get("field")?.as_str()?.to_string(),
            LedgerSites {
                debits: usize_vec(l.get("debits"))?,
                credits: usize_vec(l.get("credits"))?,
            },
        ));
    }
    let mut bindings = BTreeMap::new();
    if let Some(Value::Object(map)) = v.get("bindings") {
        for (k, p) in map {
            bindings.insert(k.clone(), str_vec(Some(p))?);
        }
    }
    let mut fns = Vec::new();
    for f in v.get("fns")?.as_array()? {
        let mut sinks = Vec::new();
        for s in f.get("sinks")?.as_array()? {
            sinks.push(SinkFact {
                line: s.get("line")?.as_usize()?,
                label: s.get("label")?.as_str()?.to_string(),
                callees: str_vec(s.get("callees"))?,
            });
        }
        let mut ret = Vec::new();
        for o in f.get("ret")?.as_array()? {
            ret.push(origin_from(o)?);
        }
        let mut calls = Vec::new();
        for c in f.get("calls")?.as_array()? {
            calls.push(CallFact {
                name: c.get("name")?.as_str()?.to_string(),
                method: c.get("method")?.as_bool()?,
                path: str_vec(c.get("path"))?,
            });
        }
        let mut global_refs = Vec::new();
        for g in f.get("refs")?.as_array()? {
            global_refs.push(GlobalRef {
                name: g.get("name")?.as_str()?.to_string(),
                line: g.get("line")?.as_usize()?,
                write: g.get("write")?.as_bool()?,
            });
        }
        fns.push(FnFact {
            name: f.get("name")?.as_str()?.to_string(),
            line: f.get("line")?.as_usize()?,
            impl_type: match f.get("impl_type") {
                Some(Value::Null) | None => None,
                Some(t) => Some(t.as_str()?.to_string()),
            },
            taint: FnTaintFacts {
                sinks,
                ret,
                calls,
                rng_lines: usize_vec(f.get("rng"))?,
            },
            global_refs,
        });
    }
    let mut statics = Vec::new();
    for s in v.get("statics")?.as_array()? {
        statics.push(StaticFact {
            name: s.get("name")?.as_str()?.to_string(),
            line: s.get("line")?.as_usize()?,
            mutable: s.get("mutable")?.as_bool()?,
            tls: s.get("tls")?.as_bool()?,
            interior: s.get("interior")?.as_bool()?,
        });
    }
    Some(FileFacts {
        rel,
        crate_name: v.get("crate")?.as_str()?.to_string(),
        candidates,
        waivers,
        bad_waivers,
        ledger,
        bindings,
        fns,
        statics,
        taint_scope: v.get("taint_scope")?.as_bool()?,
        has_forbid: v.get("has_forbid")?.as_bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }

    #[test]
    fn salt_changes_with_metadata() {
        assert_ne!(salt("layer=core"), salt("layer=model"));
        assert_eq!(salt("x"), salt("x"));
    }

    #[test]
    fn facts_round_trip_through_json() {
        let facts = FileFacts {
            rel: "crates/x/src/lib.rs".into(),
            crate_name: "x".into(),
            candidates: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "unordered",
                message: "m \"quoted\"".into(),
            }],
            waivers: vec![Waiver {
                line: 2,
                rules: vec!["unordered".into()],
                first: 2,
                last: 3,
                block: false,
            }],
            bad_waivers: vec![(9, "bad".into())],
            ledger: vec![(
                "in_flight".into(),
                LedgerSites {
                    debits: vec![4],
                    credits: vec![7, 9],
                },
            )],
            bindings: BTreeMap::from([("pick".to_string(), vec!["gen".into(), "pick".into()])]),
            fns: vec![FnFact {
                name: "drive".into(),
                line: 5,
                impl_type: Some("Engine".into()),
                taint: FnTaintFacts {
                    sinks: vec![SinkFact {
                        line: 6,
                        label: "event-queue sink `.schedule(..)`".into(),
                        callees: vec!["pick".into()],
                    }],
                    ret: vec![OriginFact {
                        call: None,
                        label: "unseeded RNG (`OsRng`)".into(),
                        line: 8,
                    }],
                    calls: vec![CallFact {
                        name: "pick".into(),
                        method: false,
                        path: vec![],
                    }],
                    rng_lines: vec![8],
                },
                global_refs: vec![GlobalRef {
                    name: "REG".into(),
                    line: 6,
                    write: true,
                }],
            }],
            statics: vec![StaticFact {
                name: "REG".into(),
                line: 1,
                mutable: false,
                tls: false,
                interior: true,
            }],
            taint_scope: true,
            has_forbid: false,
        };
        let json = facts_to_json(&facts);
        let parsed = parse_json(&json).expect("valid json");
        let back = facts_from_json(&parsed).expect("round trip");
        assert_eq!(facts_to_json(&back), json);
    }

    #[test]
    fn cache_lookup_respects_hash_and_salt() {
        let dir = std::env::temp_dir().join("simlint-cache-test");
        let path = dir.join("cache.json");
        let s = salt("meta");
        let mut cache = Cache {
            salt: s.clone(),
            files: BTreeMap::new(),
        };
        let facts = FileFacts {
            rel: "a.rs".into(),
            crate_name: "x".into(),
            taint_scope: false,
            ..FileFacts::default()
        };
        cache.insert("a.rs", "h1", facts);
        cache.save(&path).expect("save");
        let loaded = Cache::load(&path, &s);
        assert!(loaded.lookup("a.rs", "h1").is_some());
        assert!(loaded.lookup("a.rs", "h2").is_none());
        let other = Cache::load(&path, &salt("other-meta"));
        assert!(other.lookup("a.rs", "h1").is_none());
        let _ = std::fs::remove_file(&path);
    }
}
