//! simlint — determinism and architecture lints for the simulation
//! workspace.
//!
//! v2 is a token-stream analyzer: a dependency-free lexer
//! ([`lexer`]) feeds alias-aware rules ([`rules::tokens`]) scoped by the
//! workspace dependency graph ([`graph`]), with a waiver lifecycle that
//! detects its own dead entries ([`rules::waivers`]) and a checked-in
//! findings baseline ([`report`]) gating CI the same way the perf gate
//! (`BENCH_4.json`) does. The v1 line-oriented pass survives verbatim in
//! [`legacy`] as an executable specification: a differential test keeps
//! the token pass a strict superset of it modulo the known false
//! positives the lexer removes.
//!
//! CLI:
//!
//! v4 lifts the analysis to the workspace: every file is first reduced
//! to cacheable per-file facts ([`interproc::FileFacts`], served
//! incrementally by [`cache`]), then a cross-file, cross-crate call
//! graph with SCC condensation and bottom-up taint summaries
//! ([`interproc`]) propagates determinism taint through any call chain
//! in the workspace, and a shard-safety certification pass ([`shard`])
//! proves manifest-declared entry points touch only shard-local state,
//! emitting the checked-in `SHARD_SAFETY.json` gate.
//!
//! ```text
//! simlint [--root DIR] [--deny-all] [--json] [--out FILE]
//!         [--annotations] [--sarif FILE] [--compare BASELINE] [--strict]
//!         [--write-baseline FILE] [--self] [--legacy] [--list-rules]
//!         [--explain RULE] [--write-rules-doc] [--no-cache]
//!         [--shard-cert FILE] [--compare-shard-cert FILE]
//! ```
//!
#![doc = include_str!("rules/RULES.md")]
#![forbid(unsafe_code)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod cache;
pub mod dataflow;
pub mod graph;
pub mod interproc;
pub mod items;
pub mod legacy;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod shard;

use std::collections::BTreeSet;

use graph::WorkspaceGraph;
use interproc::{FileFacts, FnFact};
use report::{Report, WaiverRecord};
use rules::semantic::LedgerSites;
use rules::tokens::{Analysis, FileCtx};
use rules::waivers::WaiverSet;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule name (one of [`rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with remediation.
    pub message: String,
}

impl Finding {
    /// `file:line: [rule] message` — the human-readable form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collect `.rs` files under `dir`, sorted for deterministic output.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The result of the v3 per-file analysis: the merged token + semantic
/// findings, plus the file's ledger debit/credit sites for the caller to
/// aggregate per crate.
#[derive(Debug, Default)]
pub struct V3Analysis {
    /// Post-waiver findings and the file's waiver ledger.
    pub analysis: Analysis,
    /// Per declared ledger field: this file's non-test sites.
    pub ledger: Vec<(String, LedgerSites)>,
}

/// Analyze one file with the full v3 pipeline: the v2 token scan, the
/// item parser, the determinism-taint dataflow pass, and the semantic
/// rules — all contributing *pre-waiver* candidates, so one waiver
/// application at the end serves every rule family (a waiver for a
/// semantic rule is never falsely stale).
///
/// `exempt_time_boundary` drops `time-float-cast` candidates: the owning
/// crate declared this file as its audited float/time conversion
/// boundary (`time_boundary` metadata), which replaces per-line waivers.
///
/// `sched_sinks` extends the taint pass's built-in `schedule*` sink
/// family with the owning crate's declared scheduling entry points
/// (`sched_sinks` metadata) — e.g. the timer-wheel lane's `schedule_far`
/// and the handle-returning `push_handle`/`reschedule` surface.
pub fn analyze_source_v3(
    ctx: FileCtx,
    rel_path: &str,
    source: &str,
    ledger_fields: &[String],
    sched_sinks: &[String],
    exempt_time_boundary: bool,
) -> V3Analysis {
    let scan = rules::tokens::scan_source(ctx, rel_path, source);
    let rules::tokens::Scan {
        mut candidates,
        wset,
        lexed,
        test_lines,
    } = scan;
    if exempt_time_boundary {
        candidates.retain(|f| f.rule != "time-float-cast");
    }
    let is_test = |line: usize| test_lines.get(line).copied().unwrap_or(false);
    let model_scope = matches!(ctx.layer, graph::Layer::Core | graph::Layer::Model);
    let parsed = items::parse_items(&lexed.tokens);

    if model_scope && !ctx.tests_dir {
        for tf in dataflow::analyze_taint(&lexed.tokens, &parsed, sched_sinks) {
            if is_test(tf.line) {
                continue;
            }
            candidates.push(Finding {
                file: rel_path.to_string(),
                line: tf.line,
                rule: "determinism-taint",
                message: format!(
                    "{}; break the flow (ordered container, stable key, seeded \
                     stream) or waive with a reason",
                    tf.message
                ),
            });
        }
        for (line, message) in rules::semantic::shard_isolation(&parsed) {
            if is_test(line) {
                continue;
            }
            candidates.push(Finding {
                file: rel_path.to_string(),
                line,
                rule: "shard-isolation",
                message,
            });
        }
    }
    if ctx.layer == graph::Layer::Model && !ctx.tests_dir {
        for (line, message) in rules::semantic::hook_conformance(&lexed.tokens, &parsed) {
            if is_test(line) {
                continue;
            }
            candidates.push(Finding {
                file: rel_path.to_string(),
                line,
                rule: "hook-conformance",
                message,
            });
        }
    }
    let mut ledger = Vec::new();
    if !ledger_fields.is_empty() && !ctx.tests_dir {
        let sites = rules::semantic::ledger_sites(&lexed.tokens, &parsed, ledger_fields);
        for (field, mut s) in ledger_fields.iter().cloned().zip(sites) {
            s.debits.retain(|&l| !is_test(l));
            s.credits.retain(|&l| !is_test(l));
            ledger.push((field, s));
        }
    }
    V3Analysis {
        analysis: rules::tokens::finalize(rel_path, candidates, wset),
        ledger,
    }
}

/// Collect one file's cacheable facts: the v3 pre-waiver candidates
/// (token rules, semantic rules, local taint — byte-identical to what
/// [`analyze_source_v3`] would produce before waiver application) plus
/// the interprocedural facts the global passes consume. A pure function
/// of the source and the manifest metadata, which is what lets the
/// incremental cache key it by content hash.
pub fn collect_file_facts(
    ctx: FileCtx,
    rel_path: &str,
    crate_name: &str,
    source: &str,
    ledger_fields: &[String],
    sched_sinks: &[String],
    exempt_time_boundary: bool,
) -> FileFacts {
    let scan = rules::tokens::scan_source(ctx, rel_path, source);
    let rules::tokens::Scan {
        mut candidates,
        wset,
        lexed,
        test_lines,
    } = scan;
    if exempt_time_boundary {
        candidates.retain(|f| f.rule != "time-float-cast");
    }
    let is_test = |line: usize| test_lines.get(line).copied().unwrap_or(false);
    let model_scope = matches!(ctx.layer, graph::Layer::Core | graph::Layer::Model);
    let parsed = items::parse_items(&lexed.tokens);

    if model_scope && !ctx.tests_dir {
        for tf in dataflow::analyze_taint(&lexed.tokens, &parsed, sched_sinks) {
            if is_test(tf.line) {
                continue;
            }
            candidates.push(Finding {
                file: rel_path.to_string(),
                line: tf.line,
                rule: "determinism-taint",
                message: format!(
                    "{}; break the flow (ordered container, stable key, seeded \
                     stream) or waive with a reason",
                    tf.message
                ),
            });
        }
        for (line, message) in rules::semantic::shard_isolation(&parsed) {
            if is_test(line) {
                continue;
            }
            candidates.push(Finding {
                file: rel_path.to_string(),
                line,
                rule: "shard-isolation",
                message,
            });
        }
    }
    if ctx.layer == graph::Layer::Model && !ctx.tests_dir {
        for (line, message) in rules::semantic::hook_conformance(&lexed.tokens, &parsed) {
            if is_test(line) {
                continue;
            }
            candidates.push(Finding {
                file: rel_path.to_string(),
                line,
                rule: "hook-conformance",
                message,
            });
        }
    }
    let mut ledger = Vec::new();
    if !ledger_fields.is_empty() && !ctx.tests_dir {
        let sites = rules::semantic::ledger_sites(&lexed.tokens, &parsed, ledger_fields);
        for (field, mut s) in ledger_fields.iter().cloned().zip(sites) {
            s.debits.retain(|&l| !is_test(l));
            s.credits.retain(|&l| !is_test(l));
            ledger.push((field, s));
        }
    }

    let taint_facts = dataflow::collect_fn_facts(&lexed.tokens, &parsed, sched_sinks);
    let fns = parsed
        .fns
        .iter()
        .zip(taint_facts)
        .map(|(f, mut t)| {
            // Interprocedural findings obey the same test-extent filter
            // as the v3 pass: sinks inside #[cfg(test)] never fire.
            t.sinks.retain(|s| !is_test(s.line));
            FnFact {
                name: f.name.clone(),
                line: f.line,
                impl_type: f.owner.map(|o| parsed.impls[o].type_name.clone()),
                taint: t,
                global_refs: interproc::collect_global_refs(&lexed.tokens, f.body),
            }
        })
        .collect();

    FileFacts {
        rel: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        candidates,
        waivers: wset.waivers.clone(),
        bad_waivers: wset.bad.clone(),
        ledger,
        bindings: rules::tokens::collect_bindings(&lexed.tokens),
        fns,
        statics: interproc::collect_statics(&lexed.tokens, &parsed),
        taint_scope: model_scope && !ctx.tests_dir,
        has_forbid: source.contains("#![forbid(unsafe_code)]"),
    }
}

/// Options for [`lint_workspace_opts`].
#[derive(Debug, Default)]
pub struct LintOptions {
    /// When set, load/store per-file facts at this path, keyed by
    /// content hash and salted with rules + manifest metadata.
    pub cache_path: Option<PathBuf>,
}

/// The full v4 result: the findings report, the shard-safety
/// certificate, and cache statistics.
#[derive(Debug)]
pub struct LintOutcome {
    /// Post-waiver findings and waiver records.
    pub report: Report,
    /// Per-crate shard-safety verdicts (empty when no crate declares
    /// `shard_roots`).
    pub cert: shard::ShardCert,
    /// Files served from the incremental cache.
    pub cache_hits: usize,
    /// Files analyzed cold.
    pub cache_misses: usize,
}

/// Lint the whole workspace with the v3 per-file pipeline. Kept as the
/// plain-`Report` entry point; delegates to [`lint_workspace_opts`].
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    Ok(lint_workspace_opts(root, &LintOptions::default())?.report)
}

/// Lint the whole workspace with the v4 three-phase pipeline.
///
/// * **Phase A (per file, cacheable):** graph rules first, then every
///   `src/` and `tests/` file of every workspace crate (the simlint
///   crate included; `tests/fixtures` trees excluded — they exist to
///   contain hazards) is reduced to [`FileFacts`], via the incremental
///   cache when enabled.
/// * **Phase B (global):** the workspace call graph is built and
///   condensed ([`interproc::Workspace`]), bottom-up taint summaries
///   resolve cross-file/cross-crate flows, and the shard-safety
///   certificate is computed from manifest-declared roots
///   ([`shard::certify`]).
/// * **Phase C (per file):** interprocedural findings join the file's
///   candidates (deduplicated against the same-file chains the v3 pass
///   already reported), source-side waivers of cross-file flows are
///   credited so they do not rot into `stale-waiver`, and one waiver
///   application finalizes each file. Crate-level ledger pairing and
///   the `missing-forbid` check close out the report.
pub fn lint_workspace_opts(root: &Path, opts: &LintOptions) -> io::Result<LintOutcome> {
    let graph = WorkspaceGraph::load(root)?;
    let mut report = Report {
        findings: graph.check(),
        ..Report::default()
    };

    // Cache salt: the rule inventory plus every crate's analysis-shaping
    // manifest metadata.
    let mut meta = String::new();
    for info in graph.crates.values() {
        meta.push_str(&format!(
            "{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}\n",
            info.name,
            info.dir,
            info.layer,
            info.time_boundary,
            info.ledger,
            info.sched_sinks,
            info.shard_roots,
        ));
    }
    let salt = cache::salt(&meta);
    let mut file_cache = opts
        .cache_path
        .as_deref()
        .map(|p| cache::Cache::load(p, &salt));
    let (mut cache_hits, mut cache_misses) = (0usize, 0usize);

    // Phase A: reduce every file to facts.
    let mut files: Vec<FileFacts> = Vec::new();
    for info in graph.crates.values() {
        let crate_dir = root.join(&info.dir);
        let boundary_rel = info.time_boundary.as_ref().map(|b| {
            if info.dir.is_empty() {
                b.clone()
            } else {
                format!("{}/{}", info.dir, b)
            }
        });
        for sub in ["src", "tests"] {
            let dir = crate_dir.join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut paths = Vec::new();
            collect_rs_files(&dir, &mut paths)?;
            for path in paths {
                let rel = rel_to(root, &path);
                if rel.contains("tests/fixtures") {
                    continue;
                }
                let source = fs::read_to_string(&path)?;
                report.files_scanned += 1;
                let hash = format!("{:016x}", cache::fnv64(source.as_bytes()));
                if let Some(facts) = file_cache.as_ref().and_then(|c| c.lookup(&rel, &hash)) {
                    cache_hits += 1;
                    files.push(facts.clone());
                    continue;
                }
                cache_misses += 1;
                let layer = info.layer.unwrap_or(graph::Layer::Model);
                let exempt = boundary_rel.as_deref() == Some(rel.as_str());
                let facts = collect_file_facts(
                    FileCtx::new(layer, &rel),
                    &rel,
                    &info.name,
                    &source,
                    &info.ledger,
                    &info.sched_sinks,
                    exempt,
                );
                if let Some(c) = file_cache.as_mut() {
                    c.insert(&rel, &hash, facts.clone());
                }
                files.push(facts);
            }
        }
    }
    if let (Some(c), Some(p)) = (file_cache.as_mut(), opts.cache_path.as_deref()) {
        let live: Vec<String> = files.iter().map(|f| f.rel.clone()).collect();
        c.retain_files(&live);
        let _ = c.save(p); // best-effort: an unwritable cache is a cold run next time
    }

    // Phase B: global passes over the fact base.
    let ws = interproc::Workspace::new(&files);
    let sums = ws.summaries();
    let inter = ws.interproc_findings(&sums);
    let specs: Vec<shard::RootSpec> = graph
        .crates
        .values()
        .filter(|i| !i.shard_roots.is_empty())
        .map(|i| shard::RootSpec {
            crate_name: i.name.clone(),
            manifest: i.manifest.clone(),
            roots: i.shard_roots.clone(),
        })
        .collect();
    let (cert, cert_findings) = shard::certify(&specs, &ws);
    report.findings.extend(cert_findings);

    // Route each interprocedural finding to its sink file; collect
    // source-side waiver credits for cross-file flows.
    let mut extra: Vec<Vec<Finding>> = vec![Vec::new(); files.len()];
    let mut credits: Vec<Vec<usize>> = vec![Vec::new(); files.len()];
    for f in inter {
        let mut message = f.message;
        if let Some((sf, sl)) = f.source {
            message = format!("{message} (source at {}:{})", files[sf].rel, sl);
            credits[sf].push(sl);
        }
        extra[f.file].push(Finding {
            file: files[f.file].rel.clone(),
            line: f.line,
            rule: "determinism-taint",
            message: format!(
                "{message}; break the flow (ordered container, stable key, \
                 seeded stream) or waive with a reason"
            ),
        });
    }

    // Phase C: finalize each file once, with interprocedural candidates
    // deduplicated against the v3 same-file chains by (line, message).
    for (idx, facts) in files.iter().enumerate() {
        let mut candidates = facts.candidates.clone();
        let mut seen: BTreeSet<(usize, String)> = candidates
            .iter()
            .map(|c| (c.line, c.message.clone()))
            .collect();
        for f in &extra[idx] {
            if seen.insert((f.line, f.message.clone())) {
                candidates.push(f.clone());
            }
        }
        let mut wset = WaiverSet::from_parts(facts.waivers.clone(), facts.bad_waivers.clone());
        for &line in &credits[idx] {
            wset.credit(line, "determinism-taint");
        }
        let analysis = rules::tokens::finalize(&facts.rel, candidates, wset);
        report.findings.extend(analysis.findings);
        report
            .waivers
            .extend(analysis.waivers.into_iter().map(|w| WaiverRecord {
                file: facts.rel.clone(),
                line: w.line,
                rules: w.rules,
                block: w.block,
            }));
    }

    // Crate-level rules from the aggregated facts.
    for info in graph.crates.values() {
        type Site = (String, usize);
        let mut ledger: Vec<(String, Vec<Site>, Vec<Site>)> = info
            .ledger
            .iter()
            .map(|f| (f.clone(), Vec::new(), Vec::new()))
            .collect();
        for facts in files.iter().filter(|f| f.crate_name == info.name) {
            for (field, sites) in &facts.ledger {
                if let Some(entry) = ledger.iter_mut().find(|(f, _, _)| f == field) {
                    entry
                        .1
                        .extend(sites.debits.iter().map(|&l| (facts.rel.clone(), l)));
                    entry
                        .2
                        .extend(sites.credits.iter().map(|&l| (facts.rel.clone(), l)));
                }
            }
        }
        for (field, debits, credits) in ledger {
            let manifest = &info.manifest;
            match (debits.first(), credits.first()) {
                (None, None) => report.findings.push(Finding {
                    file: manifest.clone(),
                    line: 1,
                    rule: "ledger-pairing",
                    message: format!(
                        "manifest declares exactly-once ledger field `{field}` \
                         but no debit or credit site exists in the crate; \
                         remove the declaration or wire the ledger"
                    ),
                }),
                (Some((file, line)), None) => report.findings.push(Finding {
                    file: file.clone(),
                    line: *line,
                    rule: "ledger-pairing",
                    message: format!(
                        "ledger field `{field}` is debited here but never \
                         credited (`-=` / `.remove(` / `.clear(`) anywhere in \
                         the crate; exactly-once accounting needs both sides"
                    ),
                }),
                (None, Some((file, line))) => report.findings.push(Finding {
                    file: file.clone(),
                    line: *line,
                    rule: "ledger-pairing",
                    message: format!(
                        "ledger field `{field}` is credited here but never \
                         debited (`+=` / `.insert(`) anywhere in the crate; \
                         exactly-once accounting needs both sides"
                    ),
                }),
                (Some(_), Some(_)) => {}
            }
        }
        let lib_rel = if info.dir.is_empty() {
            "src/lib.rs".to_string()
        } else {
            format!("{}/src/lib.rs", info.dir)
        };
        if let Some(facts) = files.iter().find(|f| f.rel == lib_rel) {
            if !facts.has_forbid {
                report.findings.push(Finding {
                    file: lib_rel,
                    line: 1,
                    rule: "missing-forbid",
                    message: "crate root lacks #![forbid(unsafe_code)]; every crate \
                              must carry the guarantee locally"
                        .into(),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .waivers
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintOutcome {
        report,
        cert,
        cache_hits,
        cache_misses,
    })
}

/// Run the v1 line-oriented pass over the file set it historically
/// covered (everything but the simlint crate itself). Kept for
/// `--legacy` and the differential test.
pub fn lint_workspace_legacy(root: &Path) -> io::Result<Vec<Finding>> {
    let graph = WorkspaceGraph::load(root)?;
    let mut findings = Vec::new();
    for info in graph.crates.values() {
        if info.name == "simlint" {
            continue;
        }
        for sub in ["src", "tests"] {
            let dir = root.join(&info.dir).join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&dir, &mut files)?;
            for path in files {
                let rel = rel_to(root, &path);
                if rel.contains("tests/fixtures") {
                    continue;
                }
                let source = fs::read_to_string(&path)?;
                findings.extend(legacy::lint_source_legacy(&rel, &source));
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// CLI entry point; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let mut root_arg: Option<PathBuf> = None;
    let mut json = false;
    let mut out_file: Option<PathBuf> = None;
    let mut annotations = false;
    let mut compare_file: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut self_lint = false;
    let mut use_legacy = false;
    let mut sarif_file: Option<PathBuf> = None;
    let mut strict = false;
    let mut no_cache = false;
    let mut shard_cert_file: Option<PathBuf> = None;
    let mut compare_shard_cert: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny-all" => {} // compatibility: findings always fail
            "--json" => json = true,
            "--annotations" => annotations = true,
            "--self" => self_lint = true,
            "--legacy" => use_legacy = true,
            "--strict" => strict = true,
            "--no-cache" => no_cache = true,
            "--shard-cert" => {
                i += 1;
                shard_cert_file = args.get(i).map(PathBuf::from);
            }
            "--compare-shard-cert" => {
                i += 1;
                compare_shard_cert = args.get(i).map(PathBuf::from);
            }
            "--sarif" => {
                i += 1;
                sarif_file = args.get(i).map(PathBuf::from);
            }
            "--list-rules" => {
                for r in rules::TABLE {
                    println!("{:<16} {}", r.name, r.fires_on.replace('\n', " "));
                }
                return 0;
            }
            "--explain" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--explain needs a rule name; try --list-rules");
                    return 2;
                };
                let Some(spec) = rules::spec(name) else {
                    eprintln!("unknown rule `{name}`; try --list-rules");
                    return 2;
                };
                println!("{}", spec.name);
                println!("  scope:    {}", spec.scope);
                println!("  fires on: {}", spec.fires_on.replace('\n', " "));
                println!("  waivable: {}", if spec.waivable { "yes" } else { "no" });
                println!("\n{}", spec.detail);
                return 0;
            }
            "--root" => {
                i += 1;
                root_arg = args.get(i).map(PathBuf::from);
            }
            "--out" => {
                i += 1;
                out_file = args.get(i).map(PathBuf::from);
            }
            "--compare" => {
                i += 1;
                compare_file = args.get(i).map(PathBuf::from);
            }
            "--write-baseline" => {
                i += 1;
                write_baseline = args.get(i).map(PathBuf::from);
            }
            "--write-rules-doc" => {
                let root = match resolve_root(root_arg.as_deref()) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("simlint: {e}");
                        return 2;
                    }
                };
                let path = root.join("crates/simlint/src/rules/RULES.md");
                if let Err(e) = fs::write(&path, rules::render_rules_doc()) {
                    eprintln!("simlint: cannot write {}: {e}", path.display());
                    return 2;
                }
                println!("wrote {}", path.display());
                return 0;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}`");
                return 2;
            }
        }
        i += 1;
    }

    let root = match resolve_root(root_arg.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return 2;
        }
    };

    if use_legacy {
        let findings = match lint_workspace_legacy(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("simlint: {e}");
                return 2;
            }
        };
        for f in &findings {
            println!("{}", f.render());
        }
        println!("simlint (legacy pass): {} finding(s)", findings.len());
        return i32::from(!findings.is_empty());
    }

    let opts = LintOptions {
        cache_path: (!no_cache).then(|| root.join("target/simlint-cache.json")),
    };
    let outcome = match lint_workspace_opts(&root, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simlint: {e}");
            return 2;
        }
    };
    let LintOutcome {
        mut report,
        cert,
        cache_hits,
        cache_misses,
    } = outcome;

    if self_lint {
        report
            .findings
            .retain(|f| f.file.starts_with("crates/simlint/"));
        report
            .waivers
            .retain(|w| w.file.starts_with("crates/simlint/"));
        if !report.waivers.is_empty() {
            for w in &report.waivers {
                eprintln!(
                    "{}:{}: the linter may not waive its own rules ({})",
                    w.file,
                    w.line,
                    w.rules.join(", ")
                );
            }
            return 1;
        }
    }

    let mut failed = !report.findings.is_empty();
    for f in &report.findings {
        println!("{}", f.render());
    }
    if annotations {
        print!("{}", report.to_annotations());
    }
    if json {
        print!("{}", report.to_json());
    }
    if let Some(path) = out_file {
        if let Err(e) = fs::write(&path, report.to_json()) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return 2;
        }
    }
    if let Some(path) = sarif_file {
        if let Err(e) = fs::write(&path, report.to_sarif()) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return 2;
        }
        println!("wrote SARIF {}", path.display());
    }
    if let Some(path) = write_baseline {
        if let Err(e) = fs::write(&path, report.to_baseline_json()) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return 2;
        }
        println!("wrote baseline {}", path.display());
    }
    if let Some(path) = compare_file {
        match fs::read_to_string(&path) {
            Ok(text) => match report::compare(&report, &text) {
                Ok(notes) if strict && !notes.is_empty() => {
                    // Under --strict, drift in *either* direction fails:
                    // unexplained disappearances mean the baseline lies.
                    for n in notes {
                        eprintln!("baseline gate (strict): {n}");
                    }
                    eprintln!(
                        "baseline gate (strict): findings disappeared without a \
                         baseline update; re-ratchet with --write-baseline"
                    );
                    failed = true;
                }
                Ok(notes) => {
                    for n in notes {
                        println!("note: {n}");
                    }
                    println!("baseline gate: OK ({})", path.display());
                }
                Err(errors) => {
                    for e in errors {
                        eprintln!("baseline gate: {e}");
                    }
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("simlint: cannot read baseline {}: {e}", path.display());
                return 2;
            }
        }
    }
    if let Some(path) = shard_cert_file {
        if let Err(e) = fs::write(&path, cert.to_json()) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return 2;
        }
        println!("wrote shard certificate {}", path.display());
    }
    if let Some(path) = compare_shard_cert {
        match fs::read_to_string(&path) {
            Ok(text) => match shard::compare(&cert, &text, strict) {
                Ok(notes) => {
                    for n in notes {
                        println!("note: {n}");
                    }
                    println!("shard-safety gate: OK ({})", path.display());
                }
                Err(errors) => {
                    for e in errors {
                        eprintln!("shard-safety gate: {e}");
                    }
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!(
                    "simlint: cannot read shard certificate {}: {e}",
                    path.display()
                );
                return 2;
            }
        }
    }
    if !json {
        println!(
            "simlint: scanned {} files ({cache_hits} cached, {cache_misses} cold), \
             {} finding(s), {} waiver(s)",
            report.files_scanned,
            report.findings.len(),
            report.waivers.len()
        );
    }
    i32::from(failed)
}

fn resolve_root(arg: Option<&Path>) -> Result<PathBuf, String> {
    match arg {
        Some(p) => Ok(p.to_path_buf()),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd).ok_or_else(|| "no workspace root found above cwd".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_render_is_stable() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            rule: "unordered",
            message: "m".into(),
        };
        assert_eq!(f.render(), "crates/x/src/lib.rs:3: [unordered] m");
    }

    #[test]
    fn workspace_root_is_found_from_nested_dir() {
        let here = std::env::current_dir().unwrap();
        let root = find_workspace_root(&here).expect("inside the workspace");
        assert!(root.join("crates/simlint").is_dir());
    }
}
