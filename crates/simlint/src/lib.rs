//! # simlint — determinism & invariant static analysis for the workspace
//!
//! The mindgap reproduction stakes everything on bit-for-bit deterministic
//! simulation: CI runs every experiment twice and diffs the JSON. That
//! guarantee is easy to break with one careless line — a `HashMap`
//! iteration in a model crate, a `thread_rng()` call, a float sort keyed
//! on `partial_cmp().unwrap()` — and the double-run diff only catches the
//! breakage *after* it happens, on whichever workload happens to tickle
//! it. `simlint` closes the gap statically: it is a dependency-free,
//! offline lexical pass over the workspace sources that fails the build
//! the moment a determinism hazard is introduced.
//!
//! It is deliberately *not* a compiler plugin: the scan is line-based over
//! comment- and string-stripped source, so it runs in milliseconds, needs
//! no nightly toolchain, and its rules are greppable one-liners anyone can
//! audit. The price is lexical precision — which is why every rule has an
//! explicit waiver syntax that forces the author to leave a reason at the
//! site:
//!
//! ```text
//! // simlint: allow(time-float-cast, reason=canonical float boundary)
//! ```
//!
//! A waiver covers its own line and the next line. A waiver without a
//! `reason=` is itself a finding (`bad-waiver`).
//!
//! ## Rules
//!
//! | rule | scope | fires on |
//! |------|-------|----------|
//! | `unordered` | model crates | `HashMap` / `HashSet` (hasher iteration order) |
//! | `wall-clock` | all but harness binaries | `Instant::now`, `SystemTime`, `UNIX_EPOCH` |
//! | `ambient-rng` | all but harness binaries | `thread_rng`, `rand::random`, `from_entropy`, `OsRng` |
//! | `host-thread` | all but harness crates | `std::thread`, `thread::spawn`, `thread::scope` |
//! | `float-sort` | everywhere | `sort_by*` with `partial_cmp` on one line |
//! | `time-float-cast` | model crates | bare `as` casts between u64 time and floats |
//! | `unsafe-code` | everywhere | `unsafe` blocks/fns |
//! | `missing-forbid` | every crate root | `src/lib.rs` without `#![forbid(unsafe_code)]` |
//! | `bad-waiver` | everywhere | waiver comment without a reason |
//!
//! Model crates are the ones whose state feeds simulation results:
//! sim-core, nic-model, nicsched, cpu-model, systems, workload. Harness
//! crates (`experiments`, `bench`) drive many independent simulations from
//! the host side and may fan them across OS threads; harness *binaries*
//! (`crates/experiments/src/bin/`, `crates/bench/src/bin/`) may also time
//! real builds with the wall clock. The simulation itself stays
//! single-threaded — one engine, one model, one queue — which is what
//! `host-thread` enforces for every model crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose in-memory state feeds simulation results, where iteration
/// order and lossy numeric casts are correctness hazards, not style.
pub const MODEL_CRATES: &[&str] = &[
    "sim-core",
    "nic-model",
    "nicsched",
    "cpu-model",
    "systems",
    "workload",
];

/// Every rule simlint knows, in severity-agnostic listing order.
pub const RULES: &[&str] = &[
    "unordered",
    "wall-clock",
    "ambient-rng",
    "host-thread",
    "float-sort",
    "time-float-cast",
    "unsafe-code",
    "missing-forbid",
    "bad-waiver",
];

/// One lint finding, pointing at a workspace-relative file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// What was matched and what to do about it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Source scrubbing: blank out comments and string/char literals while
// preserving the line structure, and keep the comment text separately so
// waivers can be parsed from it.
// ---------------------------------------------------------------------------

struct Scrubbed {
    /// Source lines with comments and literals replaced by spaces.
    code: Vec<String>,
    /// Comment text per line (concatenated if a line has several).
    comments: Vec<String>,
}

fn scrub(source: &str) -> Scrubbed {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let mut st = St::Code;
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    code_line.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    code_line.push_str("  ");
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    code_line.push(' ');
                    i += 1;
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            code_line.push(' ');
                        }
                        i = j + 1;
                    } else {
                        code_line.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with a
                    // quote after one (possibly escaped) character.
                    if next == Some('\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        for _ in i..=j.min(chars.len() - 1) {
                            code_line.push(' ');
                        }
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        code_line.push_str("   ");
                        i += 3;
                    } else {
                        // A lifetime; keep the tick so tokens stay apart.
                        code_line.push(c);
                        i += 1;
                    }
                }
                _ => {
                    code_line.push(c);
                    i += 1;
                }
            },
            St::LineComment => {
                comment_line.push(c);
                code_line.push(' ');
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    comment_line.push_str("/*");
                    code_line.push_str("  ");
                    i += 2;
                } else {
                    comment_line.push(c);
                    code_line.push(' ');
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    code_line.push(' ');
                    i += 1;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        for _ in i..j {
                            code_line.push(' ');
                        }
                        i = j;
                    } else {
                        code_line.push(' ');
                        i += 1;
                    }
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
        }
    }
    code.push(code_line);
    comments.push(comment_line);
    Scrubbed { code, comments }
}

/// True when `line` contains `tok` as a whole word (identifier boundary
/// on both sides; `_` counts as a word character).
fn has_token(line: &str, tok: &str) -> bool {
    let bytes = line.as_bytes();
    let is_word = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let mut start = 0;
    while let Some(pos) = line[start..].find(tok) {
        let at = start + pos;
        let before_ok = at == 0 || !is_word(bytes[at - 1]);
        let after = at + tok.len();
        let after_ok = after >= bytes.len() || !is_word(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        start = at + tok.len().max(1);
    }
    false
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

/// Waivers parsed from one file: for each line, the rules allowed there.
struct Waivers {
    /// `allowed[i]` holds rules waived on 0-based line `i`.
    allowed: Vec<Vec<String>>,
    /// Malformed waiver findings (missing reason, unknown rule).
    bad: Vec<(usize, String)>,
}

fn parse_waivers(comments: &[String]) -> Waivers {
    let mut allowed = vec![Vec::new(); comments.len() + 1];
    let mut bad = Vec::new();
    for (idx, comment) in comments.iter().enumerate() {
        let Some(pos) = comment.find("simlint:") else {
            continue;
        };
        let rest = comment[pos + "simlint:".len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            bad.push((idx, "waiver must use `allow(rule, reason=...)`".into()));
            continue;
        };
        let Some(close) = body.find(')') else {
            bad.push((idx, "unterminated waiver: missing `)`".into()));
            continue;
        };
        let inner = &body[..close];
        // Everything after `reason=` is the reason, commas included;
        // rule names come before it.
        let (rule_part, reason) = match inner.find("reason=") {
            Some(at) => (
                inner[..at].trim_end_matches([' ', ',']),
                Some(inner[at + "reason=".len()..].trim().to_string()),
            ),
            None => (inner, None),
        };
        let rules: Vec<String> = rule_part
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_string)
            .collect();
        match reason {
            Some(r) if !r.is_empty() => {
                for rule in &rules {
                    if !RULES.contains(&rule.as_str()) {
                        bad.push((idx, format!("waiver names unknown rule `{rule}`")));
                    }
                }
                if rules.is_empty() {
                    bad.push((idx, "waiver allows no rule".into()));
                } else {
                    // A waiver covers its own line and the next.
                    allowed[idx].extend(rules.iter().cloned());
                    if idx + 1 < allowed.len() {
                        allowed[idx + 1].extend(rules);
                    }
                }
            }
            _ => bad.push((
                idx,
                "waiver is missing a non-empty `reason=`: every exception \
                 must say why it is sound"
                    .into(),
            )),
        }
    }
    Waivers { allowed, bad }
}

// ---------------------------------------------------------------------------
// Per-file context and rule evaluation
// ---------------------------------------------------------------------------

/// What kind of file a workspace-relative path is, for rule scoping.
struct FileCtx {
    model_crate: bool,
    experiment_bin: bool,
    harness_crate: bool,
}

fn classify(rel_path: &str) -> FileCtx {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next());
    let model_crate = crate_name.is_some_and(|c| MODEL_CRATES.contains(&c));
    // Experiment and perf-bench drivers are allowed to look at the wall
    // clock or seed from entropy (they time real builds, not simulated
    // ones).
    let experiment_bin = rel_path.starts_with("crates/experiments/src/bin/")
        || rel_path.starts_with("crates/bench/src/bin/");
    // Harness crates fan independent simulations across OS threads; every
    // other crate — the model crates above all — must stay thread-free so
    // a simulation is one deterministic sequential event loop.
    let harness_crate = crate_name.is_some_and(|c| c == "experiments" || c == "bench");
    FileCtx {
        model_crate,
        experiment_bin,
        harness_crate,
    }
}

fn time_token(line: &str) -> bool {
    has_token(line, "SimTime")
        || has_token(line, "SimDuration")
        || has_token(line, "as_nanos")
        || has_token(line, "from_nanos")
        || line
            .split(|c: char| !(c == '_' || c.is_ascii_alphanumeric()))
            .any(|w| w.ends_with("_ns"))
}

fn float_cast(line: &str) -> bool {
    if line.contains(" as f64") || line.contains(" as f32") {
        return true;
    }
    line.contains(" as u64")
        && (line.contains(".round()") || line.contains(".mean()") || line.contains("f64"))
}

/// Lint one file's source. `rel_path` must be workspace-relative with
/// forward slashes (it drives rule scoping).
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let ctx = classify(rel_path);
    let scrubbed = scrub(source);
    let waivers = parse_waivers(&scrubbed.comments);
    let mut findings: Vec<Finding> = waivers
        .bad
        .iter()
        .map(|(idx, msg)| Finding {
            file: rel_path.to_string(),
            line: idx + 1,
            rule: "bad-waiver",
            message: msg.clone(),
        })
        .collect();
    let mut push = |line_idx: usize, rule: &'static str, message: String| {
        if waivers.allowed[line_idx].iter().any(|r| r == rule) {
            return;
        }
        findings.push(Finding {
            file: rel_path.to_string(),
            line: line_idx + 1,
            rule,
            message,
        });
    };

    for (idx, line) in scrubbed.code.iter().enumerate() {
        if ctx.model_crate {
            for tok in ["HashMap", "HashSet"] {
                if has_token(line, tok) {
                    push(
                        idx,
                        "unordered",
                        format!(
                            "{tok} iterates in hasher order, which is not stable \
                             across runs; use BTreeMap/BTreeSet or waive with \
                             `// simlint: allow(unordered, reason=...)`"
                        ),
                    );
                }
            }
            if time_token(line) && float_cast(line) {
                push(
                    idx,
                    "time-float-cast",
                    "bare `as` cast between u64 time and float loses \
                     nanoseconds silently; go through SimDuration's *_f64 \
                     constructors/accessors or waive with a reason"
                        .into(),
                );
            }
        }
        if !ctx.experiment_bin {
            for tok in ["Instant", "SystemTime", "UNIX_EPOCH"] {
                if has_token(line, tok) {
                    push(
                        idx,
                        "wall-clock",
                        format!(
                            "{tok} reads the wall clock, which differs across \
                             runs and machines; simulated time must come from \
                             the engine clock"
                        ),
                    );
                }
            }
            for tok in ["thread_rng", "from_entropy", "OsRng"] {
                if has_token(line, tok) {
                    push(
                        idx,
                        "ambient-rng",
                        format!(
                            "{tok} draws from ambient entropy; all randomness \
                             must come from seeded sim_core::Rng streams"
                        ),
                    );
                }
            }
            if line.contains("rand::random") {
                push(
                    idx,
                    "ambient-rng",
                    "rand::random draws from ambient entropy; all randomness \
                     must come from seeded sim_core::Rng streams"
                        .into(),
                );
            }
        }
        if !ctx.harness_crate {
            for tok in ["std::thread", "thread::spawn", "thread::scope"] {
                if line.contains(tok) {
                    push(
                        idx,
                        "host-thread",
                        format!(
                            "{tok} puts OS threads inside the simulation; \
                             models run on one deterministic event loop, and \
                             only the host-side harness crates (experiments, \
                             bench) may fan runs across threads"
                        ),
                    );
                    break;
                }
            }
        }
        if (line.contains("sort_by") || line.contains("sort_unstable_by"))
            && line.contains("partial_cmp")
        {
            push(
                idx,
                "float-sort",
                "float sort via partial_cmp panics on NaN and invites \
                 platform-dependent totalization; sort on integer keys \
                 (e.g. nanoseconds) instead"
                    .into(),
            );
        }
        if has_token(line, "unsafe") {
            push(
                idx,
                "unsafe-code",
                "unsafe block in a workspace that promises #![forbid(unsafe_code)] \
                 everywhere; the simulation has no business touching raw memory"
                    .into(),
            );
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Walk upward from `start` until a directory holding a `Cargo.toml` with
/// a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Crate directories subject to the scan: every `crates/*` member except
/// simlint itself, plus the workspace-root package. Vendored stand-ins
/// under `vendor/` are third-party code and out of scope.
fn scan_roots(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() && entry.file_name() != "simlint" {
                roots.push(path);
            }
        }
    }
    roots.push(root.to_path_buf());
    Ok(roots)
}

/// Lint every workspace source file under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for crate_root in scan_roots(root)? {
        // Rule `missing-forbid`: every crate root must forbid unsafe code
        // at the source level, so the guarantee survives even if the
        // Cargo-level lint table is edited away.
        let lib = crate_root.join("src/lib.rs");
        if lib.is_file() {
            let text = fs::read_to_string(&lib)?;
            if !text.contains("#![forbid(unsafe_code)]") {
                report.findings.push(Finding {
                    file: rel_to(root, &lib),
                    line: 1,
                    rule: "missing-forbid",
                    message: "crate root lacks #![forbid(unsafe_code)]".into(),
                });
            }
        }
        for sub in ["src", "tests", "examples", "benches"] {
            let dir = crate_root.join(sub);
            // The workspace root package shares `root` with the crates/
            // tree; only descend into its own src/tests dirs.
            if crate_root == root && (sub == "examples" || sub == "benches") {
                continue;
            }
            if !dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&dir, &mut files)?;
            for file in files {
                let source = fs::read_to_string(&file)?;
                report.files_scanned += 1;
                report
                    .findings
                    .extend(lint_source(&rel_to(root, &file), &source));
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

/// CLI entry point; returns the process exit code. `--deny-all` (the only
/// mode) fails on any finding; `--root <dir>` overrides workspace-root
/// discovery from the current directory.
pub fn run(args: &[String]) -> i32 {
    let mut root_override = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-all" => {} // all rules are deny; accepted for CI clarity
            "--root" => match it.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("simlint: --root needs a directory argument");
                    return 2;
                }
            },
            other => {
                eprintln!("simlint: unknown argument `{other}`");
                eprintln!("usage: simlint [--deny-all] [--root <dir>]");
                return 2;
            }
        }
    }
    let root = match root_override.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("simlint: no workspace root found (Cargo.toml with [workspace])");
            return 2;
        }
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: io error while scanning {}: {e}", root.display());
            return 2;
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "simlint: {} file(s) scanned, {} finding(s)",
        report.files_scanned,
        report.findings.len()
    );
    if report.is_clean() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hashmap_in_model_crate_is_flagged() {
        let f = lint_source(
            "crates/systems/src/x.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
        );
        assert!(f.iter().all(|f| f.rule == "unordered"), "{f:?}");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn hashmap_outside_model_crates_is_fine() {
        let f = lint_source(
            "crates/experiments/src/x.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn waiver_with_reason_suppresses_same_and_next_line() {
        let src = "\
// simlint: allow(unordered, reason=keys are never iterated)
use std::collections::HashSet;
";
        let f = lint_source("crates/nic-model/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn waiver_without_reason_is_itself_a_finding() {
        let src = "// simlint: allow(unordered)\nuse std::collections::HashSet;\n";
        let f = lint_source("crates/nic-model/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["bad-waiver", "unordered"]);
    }

    #[test]
    fn waiver_naming_unknown_rule_is_flagged() {
        let src = "// simlint: allow(no-such-rule, reason=whatever)\n";
        let f = lint_source("crates/sim-core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["bad-waiver"]);
    }

    #[test]
    fn ambient_rng_and_wall_clock_flagged_everywhere_but_experiment_bins() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/workload/src/x.rs", src)),
            vec!["wall-clock", "ambient-rng"]
        );
        assert_eq!(
            rules_of(&lint_source("crates/bench/benches/x.rs", src)),
            vec!["wall-clock", "ambient-rng"]
        );
        assert!(lint_source("crates/experiments/src/bin/x.rs", src).is_empty());
    }

    #[test]
    fn host_threads_flagged_everywhere_but_harness_crates() {
        let src = "std::thread::scope(|s| { s.spawn(|| {}); });\n";
        // A thread in a model crate is a determinism hazard…
        assert_eq!(
            rules_of(&lint_source("crates/sim-core/src/x.rs", src)),
            vec!["host-thread"]
        );
        assert_eq!(
            rules_of(&lint_source("crates/nicsched/src/x.rs", src)),
            vec!["host-thread"]
        );
        // …and in the workspace root package.
        assert_eq!(
            rules_of(&lint_source("src/lib.rs", src)),
            vec!["host-thread"]
        );
        // The harness crates fan independent runs across threads by design.
        assert!(lint_source("crates/experiments/src/sweep.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/bin/perf.rs", src).is_empty());
        assert!(lint_source("crates/bench/benches/engine.rs", src).is_empty());
    }

    #[test]
    fn bench_bins_may_read_the_wall_clock_but_benches_may_not() {
        let src = "let t = std::time::Instant::now();\n";
        assert!(lint_source("crates/bench/src/bin/perf.rs", src).is_empty());
        assert_eq!(
            rules_of(&lint_source("crates/bench/benches/engine.rs", src)),
            vec!["wall-clock"]
        );
        assert_eq!(
            rules_of(&lint_source("crates/bench/src/lib.rs", src)),
            vec!["wall-clock"]
        );
    }

    #[test]
    fn rand_random_path_is_flagged() {
        let f = lint_source("src/lib.rs", "fn f() -> f64 { rand::random() }\n");
        assert_eq!(rules_of(&f), vec!["ambient-rng"]);
    }

    #[test]
    fn float_sort_flagged() {
        let src = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert_eq!(
            rules_of(&lint_source("crates/experiments/src/x.rs", src)),
            vec!["float-sort"]
        );
    }

    #[test]
    fn partial_ord_impls_are_not_float_sorts() {
        let src = "fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n";
        assert!(lint_source("crates/sim-core/src/x.rs", src).is_empty());
    }

    #[test]
    fn time_float_cast_flagged_only_with_time_context() {
        let model = "crates/cpu-model/src/x.rs";
        let f = lint_source(model, "let d = SimDuration::from_nanos(x as f64 as u64);\n");
        assert_eq!(rules_of(&f), vec!["time-float-cast"]);
        // A plain integer widening with a _ns field is not a float cast.
        assert!(lint_source(model, "let n = queue_len_ns as u64;\n").is_empty());
        // Float casts with no time units in sight are someone else's problem.
        assert!(lint_source(model, "let share = busy as f64 / total;\n").is_empty());
    }

    #[test]
    fn unsafe_block_flagged_but_forbid_attribute_is_not() {
        let f = lint_source("crates/net-wire/src/x.rs", "unsafe { *p }\n");
        assert_eq!(rules_of(&f), vec!["unsafe-code"]);
        assert!(lint_source("crates/net-wire/src/x.rs", "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_trip_rules() {
        let src = "\
// Instant of the crash, a HashMap in prose, unsafe in a comment.
let s = \"HashMap thread_rng Instant unsafe\";
/* SystemTime in a block comment */
let r = r#\"OsRng in a raw string\"#;
";
        let f = lint_source("crates/sim-core/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lifetimes_survive_scrubbing() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet e = '\\n';\n";
        assert!(lint_source("crates/sim-core/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_does_not_leak_past_the_next_line() {
        let src = "\
// simlint: allow(unordered, reason=scoped narrowly)
use std::collections::HashSet;
use std::collections::HashMap;
";
        let f = lint_source("crates/systems/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["unordered"]);
        assert_eq!(f[0].line, 3);
    }
}
