//! simlint — determinism and architecture lints for the simulation
//! workspace.
//!
//! v2 is a token-stream analyzer: a dependency-free lexer
//! ([`lexer`]) feeds alias-aware rules ([`rules::tokens`]) scoped by the
//! workspace dependency graph ([`graph`]), with a waiver lifecycle that
//! detects its own dead entries ([`rules::waivers`]) and a checked-in
//! findings baseline ([`report`]) gating CI the same way the perf gate
//! (`BENCH_4.json`) does. The v1 line-oriented pass survives verbatim in
//! [`legacy`] as an executable specification: a differential test keeps
//! the token pass a strict superset of it modulo the known false
//! positives the lexer removes.
//!
//! CLI:
//!
//! ```text
//! simlint [--root DIR] [--deny-all] [--json] [--out FILE]
//!         [--annotations] [--sarif FILE] [--compare BASELINE] [--strict]
//!         [--write-baseline FILE] [--self] [--legacy] [--list-rules]
//!         [--explain RULE] [--write-rules-doc]
//! ```
//!
#![doc = include_str!("rules/RULES.md")]
#![forbid(unsafe_code)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod dataflow;
pub mod graph;
pub mod items;
pub mod legacy;
pub mod lexer;
pub mod report;
pub mod rules;

use graph::WorkspaceGraph;
use report::{Report, WaiverRecord};
use rules::semantic::LedgerSites;
use rules::tokens::{Analysis, FileCtx};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule name (one of [`rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with remediation.
    pub message: String,
}

impl Finding {
    /// `file:line: [rule] message` — the human-readable form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collect `.rs` files under `dir`, sorted for deterministic output.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The result of the v3 per-file analysis: the merged token + semantic
/// findings, plus the file's ledger debit/credit sites for the caller to
/// aggregate per crate.
#[derive(Debug, Default)]
pub struct V3Analysis {
    /// Post-waiver findings and the file's waiver ledger.
    pub analysis: Analysis,
    /// Per declared ledger field: this file's non-test sites.
    pub ledger: Vec<(String, LedgerSites)>,
}

/// Analyze one file with the full v3 pipeline: the v2 token scan, the
/// item parser, the determinism-taint dataflow pass, and the semantic
/// rules — all contributing *pre-waiver* candidates, so one waiver
/// application at the end serves every rule family (a waiver for a
/// semantic rule is never falsely stale).
///
/// `exempt_time_boundary` drops `time-float-cast` candidates: the owning
/// crate declared this file as its audited float/time conversion
/// boundary (`time_boundary` metadata), which replaces per-line waivers.
///
/// `sched_sinks` extends the taint pass's built-in `schedule*` sink
/// family with the owning crate's declared scheduling entry points
/// (`sched_sinks` metadata) — e.g. the timer-wheel lane's `schedule_far`
/// and the handle-returning `push_handle`/`reschedule` surface.
pub fn analyze_source_v3(
    ctx: FileCtx,
    rel_path: &str,
    source: &str,
    ledger_fields: &[String],
    sched_sinks: &[String],
    exempt_time_boundary: bool,
) -> V3Analysis {
    let scan = rules::tokens::scan_source(ctx, rel_path, source);
    let rules::tokens::Scan {
        mut candidates,
        wset,
        lexed,
        test_lines,
    } = scan;
    if exempt_time_boundary {
        candidates.retain(|f| f.rule != "time-float-cast");
    }
    let is_test = |line: usize| test_lines.get(line).copied().unwrap_or(false);
    let model_scope = matches!(ctx.layer, graph::Layer::Core | graph::Layer::Model);
    let parsed = items::parse_items(&lexed.tokens);

    if model_scope && !ctx.tests_dir {
        for tf in dataflow::analyze_taint(&lexed.tokens, &parsed, sched_sinks) {
            if is_test(tf.line) {
                continue;
            }
            candidates.push(Finding {
                file: rel_path.to_string(),
                line: tf.line,
                rule: "determinism-taint",
                message: format!(
                    "{}; break the flow (ordered container, stable key, seeded \
                     stream) or waive with a reason",
                    tf.message
                ),
            });
        }
        for (line, message) in rules::semantic::shard_isolation(&parsed) {
            if is_test(line) {
                continue;
            }
            candidates.push(Finding {
                file: rel_path.to_string(),
                line,
                rule: "shard-isolation",
                message,
            });
        }
    }
    if ctx.layer == graph::Layer::Model && !ctx.tests_dir {
        for (line, message) in rules::semantic::hook_conformance(&lexed.tokens, &parsed) {
            if is_test(line) {
                continue;
            }
            candidates.push(Finding {
                file: rel_path.to_string(),
                line,
                rule: "hook-conformance",
                message,
            });
        }
    }
    let mut ledger = Vec::new();
    if !ledger_fields.is_empty() && !ctx.tests_dir {
        let sites = rules::semantic::ledger_sites(&lexed.tokens, &parsed, ledger_fields);
        for (field, mut s) in ledger_fields.iter().cloned().zip(sites) {
            s.debits.retain(|&l| !is_test(l));
            s.credits.retain(|&l| !is_test(l));
            ledger.push((field, s));
        }
    }
    V3Analysis {
        analysis: rules::tokens::finalize(rel_path, candidates, wset),
        ledger,
    }
}

/// Lint the whole workspace with the v3 pipeline: graph rules first,
/// then every `src/` and `tests/` file of every workspace crate (the
/// simlint crate included; `tests/fixtures` trees excluded — they exist
/// to contain hazards), then crate-level ledger pairing.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let graph = WorkspaceGraph::load(root)?;
    let mut report = Report {
        findings: graph.check(),
        ..Report::default()
    };
    for info in graph.crates.values() {
        let crate_dir = root.join(&info.dir);
        let boundary_rel = info.time_boundary.as_ref().map(|b| {
            if info.dir.is_empty() {
                b.clone()
            } else {
                format!("{}/{}", info.dir, b)
            }
        });
        // field → (debit sites, credit sites) across the crate's files.
        type Site = (String, usize);
        let mut ledger: Vec<(String, Vec<Site>, Vec<Site>)> = info
            .ledger
            .iter()
            .map(|f| (f.clone(), Vec::new(), Vec::new()))
            .collect();
        for sub in ["src", "tests"] {
            let dir = crate_dir.join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&dir, &mut files)?;
            for path in files {
                let rel = rel_to(root, &path);
                if rel.contains("tests/fixtures") {
                    continue;
                }
                let source = fs::read_to_string(&path)?;
                report.files_scanned += 1;
                let layer = info.layer.unwrap_or(graph::Layer::Model);
                let exempt = boundary_rel.as_deref() == Some(rel.as_str());
                let v3 = analyze_source_v3(
                    FileCtx::new(layer, &rel),
                    &rel,
                    &source,
                    &info.ledger,
                    &info.sched_sinks,
                    exempt,
                );
                report.findings.extend(v3.analysis.findings);
                report
                    .waivers
                    .extend(v3.analysis.waivers.into_iter().map(|w| WaiverRecord {
                        file: rel.clone(),
                        line: w.line,
                        rules: w.rules,
                        block: w.block,
                    }));
                for (field, sites) in v3.ledger {
                    if let Some(entry) = ledger.iter_mut().find(|(f, _, _)| *f == field) {
                        entry
                            .1
                            .extend(sites.debits.iter().map(|&l| (rel.clone(), l)));
                        entry
                            .2
                            .extend(sites.credits.iter().map(|&l| (rel.clone(), l)));
                    }
                }
            }
        }
        for (field, debits, credits) in ledger {
            let manifest = &info.manifest;
            match (debits.first(), credits.first()) {
                (None, None) => report.findings.push(Finding {
                    file: manifest.clone(),
                    line: 1,
                    rule: "ledger-pairing",
                    message: format!(
                        "manifest declares exactly-once ledger field `{field}` \
                         but no debit or credit site exists in the crate; \
                         remove the declaration or wire the ledger"
                    ),
                }),
                (Some((file, line)), None) => report.findings.push(Finding {
                    file: file.clone(),
                    line: *line,
                    rule: "ledger-pairing",
                    message: format!(
                        "ledger field `{field}` is debited here but never \
                         credited (`-=` / `.remove(` / `.clear(`) anywhere in \
                         the crate; exactly-once accounting needs both sides"
                    ),
                }),
                (None, Some((file, line))) => report.findings.push(Finding {
                    file: file.clone(),
                    line: *line,
                    rule: "ledger-pairing",
                    message: format!(
                        "ledger field `{field}` is credited here but never \
                         debited (`+=` / `.insert(`) anywhere in the crate; \
                         exactly-once accounting needs both sides"
                    ),
                }),
                (Some(_), Some(_)) => {}
            }
        }
        let lib = crate_dir.join("src/lib.rs");
        if lib.is_file() {
            let text = fs::read_to_string(&lib)?;
            if !text.contains("#![forbid(unsafe_code)]") {
                report.findings.push(Finding {
                    file: rel_to(root, &lib),
                    line: 1,
                    rule: "missing-forbid",
                    message: "crate root lacks #![forbid(unsafe_code)]; every crate \
                              must carry the guarantee locally"
                        .into(),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .waivers
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Run the v1 line-oriented pass over the file set it historically
/// covered (everything but the simlint crate itself). Kept for
/// `--legacy` and the differential test.
pub fn lint_workspace_legacy(root: &Path) -> io::Result<Vec<Finding>> {
    let graph = WorkspaceGraph::load(root)?;
    let mut findings = Vec::new();
    for info in graph.crates.values() {
        if info.name == "simlint" {
            continue;
        }
        for sub in ["src", "tests"] {
            let dir = root.join(&info.dir).join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&dir, &mut files)?;
            for path in files {
                let rel = rel_to(root, &path);
                if rel.contains("tests/fixtures") {
                    continue;
                }
                let source = fs::read_to_string(&path)?;
                findings.extend(legacy::lint_source_legacy(&rel, &source));
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// CLI entry point; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let mut root_arg: Option<PathBuf> = None;
    let mut json = false;
    let mut out_file: Option<PathBuf> = None;
    let mut annotations = false;
    let mut compare_file: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut self_lint = false;
    let mut use_legacy = false;
    let mut sarif_file: Option<PathBuf> = None;
    let mut strict = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny-all" => {} // compatibility: findings always fail
            "--json" => json = true,
            "--annotations" => annotations = true,
            "--self" => self_lint = true,
            "--legacy" => use_legacy = true,
            "--strict" => strict = true,
            "--sarif" => {
                i += 1;
                sarif_file = args.get(i).map(PathBuf::from);
            }
            "--list-rules" => {
                for r in rules::TABLE {
                    println!("{:<16} {}", r.name, r.fires_on.replace('\n', " "));
                }
                return 0;
            }
            "--explain" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--explain needs a rule name; try --list-rules");
                    return 2;
                };
                let Some(spec) = rules::spec(name) else {
                    eprintln!("unknown rule `{name}`; try --list-rules");
                    return 2;
                };
                println!("{}", spec.name);
                println!("  scope:    {}", spec.scope);
                println!("  fires on: {}", spec.fires_on.replace('\n', " "));
                println!("  waivable: {}", if spec.waivable { "yes" } else { "no" });
                println!("\n{}", spec.detail);
                return 0;
            }
            "--root" => {
                i += 1;
                root_arg = args.get(i).map(PathBuf::from);
            }
            "--out" => {
                i += 1;
                out_file = args.get(i).map(PathBuf::from);
            }
            "--compare" => {
                i += 1;
                compare_file = args.get(i).map(PathBuf::from);
            }
            "--write-baseline" => {
                i += 1;
                write_baseline = args.get(i).map(PathBuf::from);
            }
            "--write-rules-doc" => {
                let root = match resolve_root(root_arg.as_deref()) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("simlint: {e}");
                        return 2;
                    }
                };
                let path = root.join("crates/simlint/src/rules/RULES.md");
                if let Err(e) = fs::write(&path, rules::render_rules_doc()) {
                    eprintln!("simlint: cannot write {}: {e}", path.display());
                    return 2;
                }
                println!("wrote {}", path.display());
                return 0;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}`");
                return 2;
            }
        }
        i += 1;
    }

    let root = match resolve_root(root_arg.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return 2;
        }
    };

    if use_legacy {
        let findings = match lint_workspace_legacy(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("simlint: {e}");
                return 2;
            }
        };
        for f in &findings {
            println!("{}", f.render());
        }
        println!("simlint (legacy pass): {} finding(s)", findings.len());
        return i32::from(!findings.is_empty());
    }

    let mut report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return 2;
        }
    };

    if self_lint {
        report
            .findings
            .retain(|f| f.file.starts_with("crates/simlint/"));
        report
            .waivers
            .retain(|w| w.file.starts_with("crates/simlint/"));
        if !report.waivers.is_empty() {
            for w in &report.waivers {
                eprintln!(
                    "{}:{}: the linter may not waive its own rules ({})",
                    w.file,
                    w.line,
                    w.rules.join(", ")
                );
            }
            return 1;
        }
    }

    let mut failed = !report.findings.is_empty();
    for f in &report.findings {
        println!("{}", f.render());
    }
    if annotations {
        print!("{}", report.to_annotations());
    }
    if json {
        print!("{}", report.to_json());
    }
    if let Some(path) = out_file {
        if let Err(e) = fs::write(&path, report.to_json()) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return 2;
        }
    }
    if let Some(path) = sarif_file {
        if let Err(e) = fs::write(&path, report.to_sarif()) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return 2;
        }
        println!("wrote SARIF {}", path.display());
    }
    if let Some(path) = write_baseline {
        if let Err(e) = fs::write(&path, report.to_baseline_json()) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return 2;
        }
        println!("wrote baseline {}", path.display());
    }
    if let Some(path) = compare_file {
        match fs::read_to_string(&path) {
            Ok(text) => match report::compare(&report, &text) {
                Ok(notes) if strict && !notes.is_empty() => {
                    // Under --strict, drift in *either* direction fails:
                    // unexplained disappearances mean the baseline lies.
                    for n in notes {
                        eprintln!("baseline gate (strict): {n}");
                    }
                    eprintln!(
                        "baseline gate (strict): findings disappeared without a \
                         baseline update; re-ratchet with --write-baseline"
                    );
                    failed = true;
                }
                Ok(notes) => {
                    for n in notes {
                        println!("note: {n}");
                    }
                    println!("baseline gate: OK ({})", path.display());
                }
                Err(errors) => {
                    for e in errors {
                        eprintln!("baseline gate: {e}");
                    }
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("simlint: cannot read baseline {}: {e}", path.display());
                return 2;
            }
        }
    }
    if !json {
        println!(
            "simlint: scanned {} files, {} finding(s), {} waiver(s)",
            report.files_scanned,
            report.findings.len(),
            report.waivers.len()
        );
    }
    i32::from(failed)
}

fn resolve_root(arg: Option<&Path>) -> Result<PathBuf, String> {
    match arg {
        Some(p) => Ok(p.to_path_buf()),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd).ok_or_else(|| "no workspace root found above cwd".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_render_is_stable() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            rule: "unordered",
            message: "m".into(),
        };
        assert_eq!(f.render(), "crates/x/src/lib.rs:3: [unordered] m");
    }

    #[test]
    fn workspace_root_is_found_from_nested_dir() {
        let here = std::env::current_dir().unwrap();
        let root = find_workspace_root(&here).expect("inside the workspace");
        assert!(root.join("crates/simlint").is_dir());
    }
}
