//! Forward determinism-taint analysis, intraprocedural with same-file
//! call summaries.
//!
//! The v2 token pass flags *mentions* of nondeterminism (`HashMap` in a
//! type, `Instant::now()` in model code). This pass flags *flows*: a
//! nondeterministic value produced at a source reaching an
//! ordering-sensitive sink within one function body. Sources:
//!
//! * iteration over an unordered container (`HashMap`/`HashSet` locals,
//!   fields, or parameters — `.iter()`, `.keys()`, `.drain()`, or a
//!   bare `for x in map`),
//! * pointer/address casts (`as *const`, `.as_ptr()`, `addr_of!`) —
//!   addresses vary run to run under ASLR,
//! * float-keyed comparisons (`partial_cmp`, `total_cmp`) — NaN-order
//!   hazards in keys,
//! * unseeded RNG (`thread_rng`, `from_entropy`, `OsRng`,
//!   `rand::random`).
//!
//! Taint propagates through `let` bindings, assignments, `for`/`if let`
//! patterns, and same-file function returns (summaries iterated to a
//! small fixpoint). Sinks:
//!
//! * comparator-driven ordering (`sort_by*`, `binary_search_by*`),
//! * event-queue scheduling (`schedule`, `schedule_at`, `schedule_in`,
//!   `schedule_now`),
//! * inserts/pushes into ordered or queue-shaped receivers (`BTreeMap`
//!   key construction, `push` on a heap/queue/events receiver),
//! * probe/CSV emission (`record`/`emit`/`observe` methods, `writeln!`
//!   and friends).
//!
//! This is a lint, not a verifier: it is flow-insensitive within a
//! statement, field-insensitive beyond name matching, and its precision
//! contract is pinned by the fixture corpus, exactly like the token
//! rules.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::FileItems;
use crate::lexer::{TokKind, Token};

/// One taint flow: a source reaching a sink.
#[derive(Debug, Clone)]
pub struct TaintFinding {
    /// 1-based line of the sink statement.
    pub line: usize,
    /// Human-readable source → sink description.
    pub message: String,
}

const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet", "IndexMap"];
const ORDERED_TYPES: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap", "VecDeque"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];
const SORT_SINKS: &[&str] = &[
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "binary_search_by",
    "binary_search_by_key",
];
const SCHED_SINKS: &[&str] = &["schedule", "schedule_at", "schedule_in", "schedule_now"];
const PUSH_SINKS: &[&str] = &["push", "push_back", "push_front", "insert"];
const EMIT_SINKS: &[&str] = &["record", "emit", "observe", "probe"];
const EMIT_MACROS: &[&str] = &["writeln", "write", "println", "print", "eprintln", "format"];
const RNG_SOURCES: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

/// Analyze every function body in the file; return taint flows.
/// `extra_sched` extends [`SCHED_SINKS`] with crate-declared scheduling
/// entry points (`sched_sinks` manifest metadata) — a crate that grows
/// its own queue lanes names them there and they become sinks here.
pub fn analyze_taint(
    toks: &[Token],
    items: &FileItems,
    extra_sched: &[String],
) -> Vec<TaintFinding> {
    // Struct fields seed container shape knowledge file-wide.
    let mut field_unordered: BTreeSet<String> = BTreeSet::new();
    let mut field_ordered: BTreeSet<String> = BTreeSet::new();
    for st in &items.structs {
        for f in &st.fields {
            if f.type_idents
                .iter()
                .any(|t| UNORDERED_TYPES.contains(&t.as_str()))
            {
                field_unordered.insert(f.name.clone());
            }
            if f.type_idents
                .iter()
                .any(|t| ORDERED_TYPES.contains(&t.as_str()))
            {
                field_ordered.insert(f.name.clone());
            }
        }
    }

    // Same-file call summaries: fn name → origin label of its tainted
    // return, iterated to a small fixpoint so helper chains resolve.
    let mut summaries: BTreeMap<String, String> = BTreeMap::new();
    for _round in 0..4 {
        let mut changed = false;
        for f in &items.fns {
            if summaries.contains_key(&f.name) {
                continue;
            }
            let (_, ret) = scan_fn(
                toks,
                f.body,
                &field_unordered,
                &field_ordered,
                &summaries,
                extra_sched,
            );
            if let Some(origin) = ret {
                summaries.insert(f.name.clone(), origin);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for f in &items.fns {
        let (findings, _) = scan_fn(
            toks,
            f.body,
            &field_unordered,
            &field_ordered,
            &summaries,
            extra_sched,
        );
        for tf in findings {
            if seen.insert((tf.line, tf.message.clone())) {
                out.push(tf);
            }
        }
    }
    out.sort_by_key(|f| f.line);
    out
}

/// Scan one function body: returns (sink findings, tainted-return origin).
fn scan_fn(
    toks: &[Token],
    body: (usize, usize),
    field_unordered: &BTreeSet<String>,
    field_ordered: &BTreeSet<String>,
    summaries: &BTreeMap<String, String>,
    extra_sched: &[String],
) -> (Vec<TaintFinding>, Option<String>) {
    let stmts = split_statements(toks, body.0, body.1);
    let mut tainted: BTreeMap<String, String> = BTreeMap::new();
    let mut unordered: BTreeSet<String> = field_unordered.clone();
    let mut ordered: BTreeSet<String> = field_ordered.clone();
    let mut findings = Vec::new();
    let mut ret_origin: Option<String> = None;

    // Two forward passes: loop bodies can use bindings that are only
    // re-tainted on a later statement of the same body.
    for pass in 0..2 {
        let emit = pass == 1;
        for &(s, e) in &stmts {
            let stmt = &toks[s..e];
            if stmt.is_empty() {
                continue;
            }
            let origin = stmt_taint(stmt, &tainted, &unordered, summaries);

            // Propagation: bind lhs names when the statement binds.
            if let Some((lhs, rhs_at)) = binding_split(stmt) {
                let rhs = &stmt[rhs_at..];
                let rhs_origin = stmt_taint(rhs, &tainted, &unordered, summaries);
                // Shape flows through type annotations too (`let m2:
                // &HashMap<..> = m;`), so scan the whole statement.
                let rhs_unordered = stmt.iter().any(|t| {
                    t.kind
                        .ident()
                        .is_some_and(|s| UNORDERED_TYPES.contains(&s) || unordered.contains(s))
                });
                let rhs_ordered = stmt.iter().any(|t| {
                    t.kind
                        .ident()
                        .is_some_and(|s| ORDERED_TYPES.contains(&s) || ordered.contains(s))
                });
                for name in lhs {
                    if let Some(o) = &rhs_origin {
                        tainted.insert(name.clone(), o.clone());
                    }
                    if rhs_unordered && rhs_origin.is_none() {
                        // Alias of a container, not yet an iterated value.
                        unordered.insert(name.clone());
                    }
                    if rhs_ordered {
                        ordered.insert(name.clone());
                    }
                }
            }

            if !emit {
                continue;
            }
            let Some(origin) = origin else {
                continue;
            };
            let line = stmt[0].line;
            for sink in stmt_sinks(stmt, &ordered, extra_sched) {
                findings.push(TaintFinding {
                    line,
                    message: format!("{origin} flows into {sink}"),
                });
            }
            if stmt.iter().any(|t| t.kind.ident() == Some("return")) {
                ret_origin.get_or_insert(origin.clone());
            }
        }
        // Tail expression: the last fragment taints the return value.
        if let Some(&(s, e)) = stmts.last() {
            if let Some(o) = stmt_taint(&toks[s..e], &tainted, &unordered, summaries) {
                ret_origin.get_or_insert(o);
            }
        }
    }
    (findings, ret_origin)
}

/// Split a body token range into statement fragments at `;`, `{`, `}`
/// (any depth — blocks become their own fragment sequence).
pub(crate) fn split_statements(toks: &[Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut s = start;
    let stop = end.min(toks.len());
    for (k, t) in toks.iter().enumerate().take(stop).skip(start) {
        if matches!(t.kind, TokKind::Punct(';' | '{' | '}')) {
            if k > s {
                out.push((s, k));
            }
            s = k + 1;
        }
    }
    if end.min(toks.len()) > s {
        out.push((s, end.min(toks.len())));
    }
    out
}

/// If the statement binds names (`let`, `for … in`, assignment), return
/// (bound lowercase-initial names, token index where the rhs starts).
pub(crate) fn binding_split(stmt: &[Token]) -> Option<(Vec<String>, usize)> {
    // `for PAT in EXPR`
    if let Some(fp) = stmt.iter().position(|t| t.kind.ident() == Some("for")) {
        if let Some(ip) = stmt[fp..].iter().position(|t| t.kind.ident() == Some("in")) {
            let names = pattern_names(&stmt[fp + 1..fp + ip]);
            if !names.is_empty() {
                return Some((names, fp + ip + 1));
            }
        }
    }
    // `let PAT = EXPR` (covers `if let` / `while let`)
    if let Some(lp) = stmt.iter().position(|t| t.kind.ident() == Some("let")) {
        if let Some(eq) = assign_pos(stmt, lp + 1) {
            let names = pattern_names(&stmt[lp + 1..eq]);
            if !names.is_empty() {
                return Some((names, eq + 1));
            }
        }
        return None;
    }
    // Plain or compound assignment.
    if let Some(eq) = assign_pos(stmt, 0) {
        let names = pattern_names(&stmt[..eq]);
        if !names.is_empty() {
            return Some((names, eq + 1));
        }
    }
    None
}

/// Index of the first standalone `=` (not `==`, `=>`, `<=`, comparison)
/// at or after `from`; compound assignments (`+=` etc.) count, with the
/// index of the `=` itself returned. The lexer emits `>` and `=` as
/// separate tokens, so `Vec<u64> = …` would read as `>=` without angle
/// tracking: a `>` that closes an open generic list is not a comparison.
fn assign_pos(stmt: &[Token], from: usize) -> Option<usize> {
    let mut angle = 0i32;
    let mut gt_closed_generic = false;
    for k in from..stmt.len() {
        match &stmt[k].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                let arrow = k > 0 && stmt[k - 1].kind == TokKind::Punct('-');
                gt_closed_generic = false;
                if !arrow && angle > 0 {
                    angle -= 1;
                    gt_closed_generic = true;
                }
            }
            TokKind::Punct('=') => {
                let next = stmt.get(k + 1).map(|t| &t.kind);
                if next == Some(&TokKind::Punct('=')) || next == Some(&TokKind::Punct('>')) {
                    continue;
                }
                if k > from {
                    if let TokKind::Punct(p) = stmt[k - 1].kind {
                        match p {
                            '=' | '<' | '!' => continue,
                            '>' if !gt_closed_generic => continue,
                            // `+=`, `-=`, … assign to an existing binding.
                            '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' => return Some(k),
                            _ => {}
                        }
                    }
                }
                return Some(k);
            }
            _ => {}
        }
    }
    None
}

/// Lowercase-initial identifiers in a binding pattern (skips keywords,
/// type names, and primitive-typed annotations do no harm).
fn pattern_names(pat: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    for t in pat {
        if let Some(s) = t.kind.ident() {
            if matches!(s, "mut" | "ref" | "let" | "if" | "while" | "self" | "_") {
                continue;
            }
            // Primitive type names show up in annotations (`let v: Vec<u64>`)
            // and must not become phantom bindings.
            if matches!(
                s,
                "u8" | "u16"
                    | "u32"
                    | "u64"
                    | "u128"
                    | "usize"
                    | "i8"
                    | "i16"
                    | "i32"
                    | "i64"
                    | "i128"
                    | "isize"
                    | "f32"
                    | "f64"
                    | "bool"
                    | "char"
                    | "str"
                    | "dyn"
            ) {
                continue;
            }
            if s.starts_with(|c: char| c.is_lowercase() || c == '_') {
                out.push(s.to_string());
            }
        }
    }
    out
}

/// Does this expression fragment carry taint? Returns the origin label.
fn stmt_taint(
    stmt: &[Token],
    tainted: &BTreeMap<String, String>,
    unordered: &BTreeSet<String>,
    summaries: &BTreeMap<String, String>,
) -> Option<String> {
    for (k, t) in stmt.iter().enumerate() {
        let Some(s) = t.kind.ident() else {
            // `addr_of!` path handled via ident below; nothing here.
            continue;
        };
        // Pointer/address casts.
        if s == "as"
            && stmt.get(k + 1).map(|t| &t.kind) == Some(&TokKind::Punct('*'))
            && matches!(
                stmt.get(k + 2).and_then(|t| t.kind.ident()),
                Some("const" | "mut")
            )
        {
            return Some("address-cast value".to_string());
        }
        if matches!(s, "as_ptr" | "as_mut_ptr" | "addr_of" | "addr_of_mut") {
            return Some("address-cast value".to_string());
        }
        // Float-keyed comparisons.
        if matches!(s, "partial_cmp" | "total_cmp") {
            return Some("float-keyed comparison".to_string());
        }
        // Unseeded RNG.
        if RNG_SOURCES.contains(&s) {
            return Some(format!("unseeded RNG (`{s}`)"));
        }
        if s == "random"
            && k >= 3
            && stmt[k - 1].kind == TokKind::Punct(':')
            && stmt[k - 2].kind == TokKind::Punct(':')
            && stmt[k - 3].kind.ident() == Some("rand")
        {
            return Some("unseeded RNG (`rand::random`)".to_string());
        }
        // Iteration over an unordered container local/field: either an
        // iter-family method on it, or it as the subject of `for … in`.
        if unordered.contains(s) {
            let method_after = stmt.get(k + 1).map(|t| &t.kind) == Some(&TokKind::Punct('.'))
                && stmt
                    .get(k + 2)
                    .and_then(|t| t.kind.ident())
                    .is_some_and(|m| ITER_METHODS.contains(&m));
            let for_subject = k > 0
                && stmt[..k]
                    .iter()
                    .rev()
                    .find_map(|t| t.kind.ident())
                    .is_some_and(|p| p == "in");
            if method_after || for_subject {
                return Some(format!("iteration over unordered container `{s}`"));
            }
        }
        // Tainted local referenced.
        if let Some(origin) = tainted.get(s) {
            return Some(origin.clone());
        }
        // Call of a same-file fn with a tainted return.
        if let Some(origin) = summaries.get(s) {
            if stmt.get(k + 1).map(|t| &t.kind) == Some(&TokKind::Punct('(')) {
                return Some(format!("{origin} (via `{s}()`)"));
            }
        }
    }
    None
}

/// Ordering-sensitive sinks present in this statement.
fn stmt_sinks(stmt: &[Token], ordered: &BTreeSet<String>, extra_sched: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for (k, t) in stmt.iter().enumerate() {
        let Some(s) = t.kind.ident() else { continue };
        let is_method = k > 0 && stmt[k - 1].kind == TokKind::Punct('.');
        if is_method && SORT_SINKS.contains(&s) {
            out.push(format!("comparator sink `.{s}(..)`"));
        }
        if is_method && (SCHED_SINKS.contains(&s) || extra_sched.iter().any(|x| x == s)) {
            out.push(format!("event-queue sink `.{s}(..)`"));
        }
        if is_method && EMIT_SINKS.contains(&s) {
            out.push(format!("probe/CSV emission sink `.{s}(..)`"));
        }
        if is_method && PUSH_SINKS.contains(&s) {
            // Receiver shape: `recv.push(..)` — the ident before the dot.
            if let Some(recv) = stmt[..k - 1].iter().rev().find_map(|t| t.kind.ident()) {
                let name = recv.to_ascii_lowercase();
                let queue_shaped = ["queue", "events", "heap", "ready", "pending"]
                    .iter()
                    .any(|q| name.contains(q));
                if queue_shaped || ordered.contains(recv) {
                    out.push(format!("ordered-insert sink `{recv}.{s}(..)`"));
                }
            }
        }
        if EMIT_MACROS.contains(&s)
            && stmt.get(k + 1).map(|t| &t.kind) == Some(&TokKind::Punct('!'))
        {
            out.push(format!("probe/CSV emission sink `{s}!(..)`"));
        }
    }
    out.sort();
    out.dedup();
    out
}

// ---------------------------------------------------------------------------
// v4: compositional per-function taint facts
// ---------------------------------------------------------------------------
//
// The v3 pass above resolves same-file helper calls with an in-file
// summary fixpoint; it survives verbatim as the executable spec (the
// differential test keeps v4 a superset of it). The collector below is
// what the workspace-level interprocedural engine consumes instead: a
// *pure* function of one file's tokens, producing serializable facts —
// which calls each function makes, which call-carried values reach
// which sinks, and which origins its return value may carry. Nothing
// here looks at other functions, so the facts can be cached per file
// and resolved globally against the whole-workspace call graph.

/// One taint origin as recorded in per-function facts.
///
/// `call: None` is a local source (`label` is the v3 origin label,
/// `line` its source line). `call: Some(name)` is a value obtained from
/// a call to `name`, tainted iff the resolved callee's summary is — the
/// interprocedural engine decides that, not this file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginFact {
    /// Callee name for call-carried origins; `None` for local sources.
    pub call: Option<String>,
    /// v3-compatible origin label (empty for call-carried origins).
    pub label: String,
    /// 1-based line of the originating token.
    pub line: usize,
}

/// An ordering-sensitive sink statement that consumes at least one
/// call-carried value. (Sinks fed only by local sources are fully
/// handled by the v3 pass and are not recorded here.)
#[derive(Debug, Clone)]
pub struct SinkFact {
    /// 1-based line of the sink statement.
    pub line: usize,
    /// v3-compatible sink label (`event-queue sink `.push(..)``, …).
    pub label: String,
    /// Callee names whose return values reach this sink.
    pub callees: Vec<String>,
}

/// One call site, for the workspace call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallFact {
    /// The called function's name (last path segment).
    pub name: String,
    /// True for method-call syntax (`recv.name(..)`).
    pub method: bool,
    /// Leading `::` path segments (`gen::pick(..)` → `["gen"]`,
    /// `Gen::pick(..)` → `["Gen"]`); empty for a plain call.
    pub path: Vec<String>,
}

/// The taint-relevant facts of one function body.
#[derive(Debug, Clone, Default)]
pub struct FnTaintFacts {
    /// Sinks consuming call-carried values.
    pub sinks: Vec<SinkFact>,
    /// Origins the return value may carry, in v3 priority order.
    pub ret: Vec<OriginFact>,
    /// Distinct call sites in the body.
    pub calls: Vec<CallFact>,
    /// Lines mentioning ambient-RNG sources (shard-hazard input).
    pub rng_lines: Vec<usize>,
}

const VAR_ORIGIN_CAP: usize = 6;
const STMT_ORIGIN_CAP: usize = 12;

/// Collect per-function taint facts for every function in the file,
/// parallel to `items.fns`.
pub fn collect_fn_facts(
    toks: &[Token],
    items: &FileItems,
    extra_sched: &[String],
) -> Vec<FnTaintFacts> {
    let mut field_unordered: BTreeSet<String> = BTreeSet::new();
    let mut field_ordered: BTreeSet<String> = BTreeSet::new();
    for st in &items.structs {
        for f in &st.fields {
            if f.type_idents
                .iter()
                .any(|t| UNORDERED_TYPES.contains(&t.as_str()))
            {
                field_unordered.insert(f.name.clone());
            }
            if f.type_idents
                .iter()
                .any(|t| ORDERED_TYPES.contains(&t.as_str()))
            {
                field_ordered.insert(f.name.clone());
            }
        }
    }
    items
        .fns
        .iter()
        .map(|f| {
            // Parameters typed as containers seed shape knowledge too:
            // interprocedural helpers take their maps as arguments
            // instead of aliasing them through an annotated `let`.
            let (param_un, param_ord) = param_shapes(toks, f.sig);
            let mut un = field_unordered.clone();
            un.extend(param_un);
            let mut ord = field_ordered.clone();
            ord.extend(param_ord);
            let (sinks, ret) = scan_fn_facts(toks, f.body, &un, &ord, extra_sched);
            FnTaintFacts {
                sinks,
                ret,
                calls: collect_calls(toks, f.body),
                rng_lines: collect_rng_lines(toks, f.body),
            }
        })
        .collect()
}

/// Parameters in `sig` whose type annotation names an unordered or
/// ordered container: each container-type token is walked back to the
/// `name:` annotation that owns it. Path separators (`::`) are skipped;
/// hitting a `(`, `)`, or `,` first means the token is not inside a
/// parameter annotation (e.g. a return type) and is ignored.
fn param_shapes(toks: &[Token], sig: (usize, usize)) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut un = BTreeSet::new();
    let mut ord = BTreeSet::new();
    let sig_toks = &toks[sig.0.min(toks.len())..sig.1.min(toks.len())];
    for (k, t) in sig_toks.iter().enumerate() {
        let Some(s) = t.kind.ident() else { continue };
        let is_un = UNORDERED_TYPES.contains(&s);
        let is_ord = ORDERED_TYPES.contains(&s);
        if !is_un && !is_ord {
            continue;
        }
        let mut i = k;
        let name = loop {
            if i == 0 {
                break None;
            }
            i -= 1;
            match &sig_toks[i].kind {
                TokKind::Punct(':') => {
                    if i > 0 && sig_toks[i - 1].kind == TokKind::Punct(':') {
                        i -= 1; // path separator, keep walking
                        continue;
                    }
                    break sig_toks[..i]
                        .last()
                        .and_then(|t| t.kind.ident())
                        .filter(|n| n.starts_with(|c: char| c.is_lowercase() || c == '_'))
                        .map(str::to_string);
                }
                TokKind::Punct('(' | ')' | ',') => break None,
                _ => {}
            }
        };
        if let Some(n) = name {
            if is_un {
                un.insert(n.clone());
            }
            if is_ord {
                ord.insert(n);
            }
        }
    }
    (un, ord)
}

/// The v4 analogue of [`scan_fn`]: same two-pass statement walk and the
/// same propagation shape, but origins are multi-valued and calls are
/// recorded unresolved instead of being looked up in same-file
/// summaries.
fn scan_fn_facts(
    toks: &[Token],
    body: (usize, usize),
    field_unordered: &BTreeSet<String>,
    field_ordered: &BTreeSet<String>,
    extra_sched: &[String],
) -> (Vec<SinkFact>, Vec<OriginFact>) {
    let stmts = split_statements(toks, body.0, body.1);
    let mut tainted: BTreeMap<String, Vec<OriginFact>> = BTreeMap::new();
    let mut unordered: BTreeSet<String> = field_unordered.clone();
    let mut ordered: BTreeSet<String> = field_ordered.clone();
    let mut sinks: Vec<SinkFact> = Vec::new();
    let mut ret: Vec<OriginFact> = Vec::new();
    let push_ret = |ret: &mut Vec<OriginFact>, os: &[OriginFact]| {
        for o in os {
            if ret.len() < STMT_ORIGIN_CAP && !ret.contains(o) {
                ret.push(o.clone());
            }
        }
    };

    for pass in 0..2 {
        let emit = pass == 1;
        for &(s, e) in &stmts {
            let stmt = &toks[s..e];
            if stmt.is_empty() {
                continue;
            }
            let origins = stmt_origins(stmt, &tainted, &unordered);

            if let Some((lhs, rhs_at)) = binding_split(stmt) {
                let rhs = &stmt[rhs_at..];
                let rhs_origins = stmt_origins(rhs, &tainted, &unordered);
                let rhs_unordered = stmt.iter().any(|t| {
                    t.kind
                        .ident()
                        .is_some_and(|s| UNORDERED_TYPES.contains(&s) || unordered.contains(s))
                });
                let rhs_ordered = stmt.iter().any(|t| {
                    t.kind
                        .ident()
                        .is_some_and(|s| ORDERED_TYPES.contains(&s) || ordered.contains(s))
                });
                let has_local = rhs_origins.iter().any(|o| o.call.is_none());
                for name in lhs {
                    if !rhs_origins.is_empty() {
                        let mut v = rhs_origins.clone();
                        v.truncate(VAR_ORIGIN_CAP);
                        tainted.insert(name.clone(), v);
                    }
                    if rhs_unordered && !has_local {
                        unordered.insert(name.clone());
                    }
                    if rhs_ordered {
                        ordered.insert(name.clone());
                    }
                }
            }

            if !emit {
                continue;
            }
            let callees: Vec<String> = {
                let mut names: Vec<String> =
                    origins.iter().filter_map(|o| o.call.clone()).collect();
                names.dedup();
                names
            };
            if !callees.is_empty() {
                let line = stmt[0].line;
                for label in stmt_sinks(stmt, &ordered, extra_sched) {
                    sinks.push(SinkFact {
                        line,
                        label,
                        callees: callees.clone(),
                    });
                }
            }
            if stmt.iter().any(|t| t.kind.ident() == Some("return")) {
                push_ret(&mut ret, &origins);
            }
        }
        if let Some(&(s, e)) = stmts.last() {
            let os = stmt_origins(&toks[s..e], &tainted, &unordered);
            push_ret(&mut ret, &os);
        }
    }
    (sinks, ret)
}

/// Every origin a statement fragment carries, in token order — the v3
/// single-origin check (`stmt_taint`) generalized to collect all of
/// them, with unresolved calls as first-class origins.
fn stmt_origins(
    stmt: &[Token],
    tainted: &BTreeMap<String, Vec<OriginFact>>,
    unordered: &BTreeSet<String>,
) -> Vec<OriginFact> {
    let mut out: Vec<OriginFact> = Vec::new();
    let push = |out: &mut Vec<OriginFact>, o: OriginFact| {
        if out.len() < STMT_ORIGIN_CAP && !out.contains(&o) {
            out.push(o);
        }
    };
    for (k, t) in stmt.iter().enumerate() {
        let Some(s) = t.kind.ident() else { continue };
        let line = t.line;
        let local = |label: String| OriginFact {
            call: None,
            label,
            line,
        };
        if s == "as"
            && stmt.get(k + 1).map(|t| &t.kind) == Some(&TokKind::Punct('*'))
            && matches!(
                stmt.get(k + 2).and_then(|t| t.kind.ident()),
                Some("const" | "mut")
            )
        {
            push(&mut out, local("address-cast value".to_string()));
            continue;
        }
        if matches!(s, "as_ptr" | "as_mut_ptr" | "addr_of" | "addr_of_mut") {
            push(&mut out, local("address-cast value".to_string()));
            continue;
        }
        if matches!(s, "partial_cmp" | "total_cmp") {
            push(&mut out, local("float-keyed comparison".to_string()));
            continue;
        }
        if RNG_SOURCES.contains(&s) {
            push(&mut out, local(format!("unseeded RNG (`{s}`)")));
            continue;
        }
        if s == "random"
            && k >= 3
            && stmt[k - 1].kind == TokKind::Punct(':')
            && stmt[k - 2].kind == TokKind::Punct(':')
            && stmt[k - 3].kind.ident() == Some("rand")
        {
            push(&mut out, local("unseeded RNG (`rand::random`)".to_string()));
            continue;
        }
        if unordered.contains(s) {
            let method_after = stmt.get(k + 1).map(|t| &t.kind) == Some(&TokKind::Punct('.'))
                && stmt
                    .get(k + 2)
                    .and_then(|t| t.kind.ident())
                    .is_some_and(|m| ITER_METHODS.contains(&m));
            let for_subject = k > 0
                && stmt[..k]
                    .iter()
                    .rev()
                    .find_map(|t| t.kind.ident())
                    .is_some_and(|p| p == "in");
            if method_after || for_subject {
                push(
                    &mut out,
                    local(format!("iteration over unordered container `{s}`")),
                );
            }
        }
        if let Some(origins) = tainted.get(s) {
            for o in origins {
                push(&mut out, o.clone());
            }
        }
        if is_call_name(s) && stmt.get(k + 1).map(|t| &t.kind) == Some(&TokKind::Punct('(')) {
            push(
                &mut out,
                OriginFact {
                    call: Some(s.to_string()),
                    label: String::new(),
                    line,
                },
            );
        }
    }
    out
}

/// Is this identifier plausibly a callable name? Lowercase-initial and
/// not a control-flow keyword (which can precede `(` syntactically).
fn is_call_name(s: &str) -> bool {
    if !s.starts_with(|c: char| c.is_lowercase() || c == '_') {
        return false;
    }
    !matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "in"
            | "as"
            | "move"
            | "let"
            | "fn"
            | "else"
            | "unsafe"
            | "await"
            | "ref"
            | "mut"
            | "impl"
            | "dyn"
            | "where"
            | "use"
            | "pub"
            | "mod"
            | "const"
            | "static"
            | "enum"
            | "struct"
            | "trait"
            | "type"
            | "self"
    )
}

/// Distinct call sites in a body: `name(..)`, `recv.name(..)`, and
/// path-qualified `a::b::name(..)` forms. Macros (`name!(..)`) and
/// uppercase constructors (`Variant(..)`) are not calls.
pub fn collect_calls(toks: &[Token], body: (usize, usize)) -> Vec<CallFact> {
    let mut out: Vec<CallFact> = Vec::new();
    let end = body.1.min(toks.len());
    for k in body.0..end {
        let Some(s) = toks[k].kind.ident() else {
            continue;
        };
        if !is_call_name(s) {
            continue;
        }
        if toks.get(k + 1).map(|t| &t.kind) != Some(&TokKind::Punct('(')) {
            continue;
        }
        let method = k > 0 && toks[k - 1].kind == TokKind::Punct('.');
        let mut path: Vec<String> = Vec::new();
        if !method {
            // Walk backward through `seg ::` pairs.
            let mut j = k;
            while j >= 3
                && toks[j - 1].kind == TokKind::Punct(':')
                && toks[j - 2].kind == TokKind::Punct(':')
            {
                match toks[j - 3].kind.ident() {
                    Some(seg) => {
                        path.insert(0, seg.to_string());
                        j -= 3;
                    }
                    None => break,
                }
            }
        }
        let cf = CallFact {
            name: s.to_string(),
            method,
            path,
        };
        if !out.contains(&cf) {
            out.push(cf);
        }
    }
    out
}

/// Lines in a body mentioning ambient-RNG sources (`thread_rng`,
/// `from_entropy`, `OsRng`, `rand::random`).
fn collect_rng_lines(toks: &[Token], body: (usize, usize)) -> Vec<usize> {
    let mut out = Vec::new();
    let end = body.1.min(toks.len());
    for k in body.0..end {
        let Some(s) = toks[k].kind.ident() else {
            continue;
        };
        let hit = RNG_SOURCES.contains(&s)
            || (s == "random"
                && k >= 3
                && toks[k - 1].kind == TokKind::Punct(':')
                && toks[k - 2].kind == TokKind::Punct(':')
                && toks[k - 3].kind.ident() == Some("rand"));
        if hit && !out.contains(&toks[k].line) {
            out.push(toks[k].line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn taint(src: &str) -> Vec<TaintFinding> {
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        analyze_taint(&lexed.tokens, &items, &[])
    }

    #[test]
    fn declared_sched_sinks_extend_the_builtin_family() {
        let src = "\
fn arm(q: &mut EventQueue<u64>, m: &HashMap<u64, u64>) {
    let m2: &HashMap<u64, u64> = m;
    let first: u64 = m2.keys().copied().next().unwrap_or(0);
    q.push_handle(SimTime::from_nanos(first), first);
}
";
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        // Not a sink by default...
        assert!(analyze_taint(&lexed.tokens, &items, &[]).is_empty());
        // ...but declared via manifest metadata, the same flow fires.
        let flows = analyze_taint(&lexed.tokens, &items, &["push_handle".to_string()]);
        assert_eq!(flows.len(), 1);
        assert!(
            flows[0]
                .message
                .contains("event-queue sink `.push_handle(..)`"),
            "unexpected message: {}",
            flows[0].message
        );
    }

    #[test]
    fn hashmap_iteration_reaching_sort_fires() {
        let src = "\
fn order(m: &HashMap<u64, u64>) -> Vec<u64> {
    let m2: &HashMap<u64, u64> = m;
    let mut v: Vec<u64> = m2.keys().copied().collect();
    v.sort_by(|a, b| a.cmp(b));
    v
}
";
        let fs = taint(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("unordered container"), "{fs:?}");
        assert!(fs[0].message.contains("comparator sink"), "{fs:?}");
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = "\
fn order(m: &BTreeMap<u64, u64>) -> Vec<u64> {
    let m2: &BTreeMap<u64, u64> = m;
    let mut v: Vec<u64> = m2.keys().copied().collect();
    v.sort_by(|a, b| a.cmp(b));
    v
}
";
        assert!(taint(src).is_empty());
    }

    #[test]
    fn address_cast_into_schedule_fires() {
        let src = "\
fn go(&mut self, task: &Task) {
    let key = task as *const Task as usize;
    self.eq.schedule(SimTime::ZERO, key as u64);
}
";
        let fs = taint(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("address-cast"), "{fs:?}");
        assert!(fs[0].message.contains("event-queue sink"), "{fs:?}");
    }

    #[test]
    fn taint_through_same_file_helper_return() {
        let src = "\
fn pick(m: &HashMap<u64, u64>) -> u64 {
    let m2: &HashMap<u64, u64> = m;
    let first = m2.keys().next();
    first.copied().unwrap_or(0)
}
fn drive(&mut self) {
    let k = pick(&self.live);
    self.events.push(k);
}
";
        let fs = taint(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("via `pick()`"), "{fs:?}");
        assert!(fs[0].message.contains("ordered-insert sink"), "{fs:?}");
    }

    #[test]
    fn unordered_struct_field_for_loop_into_emit_fires() {
        let src = "\
struct Reg { live: HashMap<u64, u64> }
impl Reg {
    fn dump(&self, out: &mut String) {
        for k in self.live.keys() {
            writeln!(out, \"{}\", k).unwrap();
        }
    }
}
";
        let fs = taint(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("`live`"), "{fs:?}");
        assert!(fs[0].message.contains("writeln!"), "{fs:?}");
    }

    #[test]
    fn untainted_sinks_do_not_fire() {
        let src = "\
fn go(&mut self, t: SimTime, id: u64) {
    self.eq.schedule(t, id);
    let mut v = vec![3u64, 1, 2];
    v.sort_by(|a, b| a.cmp(b));
}
";
        assert!(taint(src).is_empty());
    }

    #[test]
    fn rng_into_sort_key_fires() {
        let src = "\
fn shuffle(v: &mut Vec<u64>) {
    let mut rng = thread_rng();
    v.sort_by_key(|_| rng.gen::<u64>());
}
";
        let fs = taint(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("unseeded RNG"), "{fs:?}");
    }
}
