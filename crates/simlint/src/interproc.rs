//! Workspace-level interprocedural analysis: the cross-file, cross-crate
//! call graph, SCC condensation, and bottom-up taint summaries.
//!
//! The v3 dataflow pass resolves helper calls with a *same-file* summary
//! fixpoint; everything beyond one file was invisible. This module lifts
//! that to the workspace. The per-file half is [`FileFacts`]: a pure,
//! serializable function of one file's source (so it can be cached
//! content-hashed — see [`crate::cache`]), holding the pre-waiver lint
//! candidates alongside call/taint/static facts. The global half is
//! [`Workspace`]: an index over every file's facts that
//!
//! 1. resolves each [`CallFact`] to candidate definitions — same-file
//!    first (the v3 contract), then through `use`-alias bindings (the v2
//!    alias machinery), then by name within the owning crate; method
//!    calls resolve to every workspace `impl` fn of that name, and
//!    `Type::method` forms narrow to impls of `Type`;
//! 2. condenses the call graph into SCCs (iterative Tarjan) and computes
//!    bottom-up per-function taint summaries in callees-first order,
//!    iterating each SCC to a fixpoint (a summary is never overwritten
//!    once resolved, so cycles terminate);
//! 3. emits interprocedural determinism-taint findings for sinks fed by
//!    call-carried values, with the *source* location attached when the
//!    chain crosses files.
//!
//! Resolution is deliberately over-approximate (a lint, not a linker):
//! an unresolvable call simply has no edges, and a name collision adds
//! edges. Both err toward *more* reachability, which is the conservative
//! direction for taint and for the shard-safety certificate built on the
//! same graph ([`crate::shard`]).

use std::collections::BTreeMap;

use crate::dataflow::{CallFact, FnTaintFacts};
use crate::items::FileItems;
use crate::lexer::{TokKind, Token};
use crate::rules::semantic::{LedgerSites, INTERIOR_MUTABLE};
use crate::rules::waivers::Waiver;
use crate::Finding;

/// A mention of an all-caps (static-shaped) identifier in a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalRef {
    /// The identifier.
    pub name: String,
    /// 1-based line of the mention.
    pub line: usize,
    /// True when the mention looks like a write (`NAME = ..`,
    /// `NAME += ..`, or a mutating/locking method call on it).
    pub write: bool,
}

/// One `static` (or `thread_local!` static) declaration, classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticFact {
    /// The static's name.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// `static mut`.
    pub mutable: bool,
    /// Declared inside a `thread_local!` extent.
    pub tls: bool,
    /// Type mentions an interior-mutable wrapper (`Mutex`, `OnceLock`,
    /// `Atomic*`, …).
    pub interior: bool,
}

/// One function with its interprocedural facts.
#[derive(Debug, Clone)]
pub struct FnFact {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Owning `impl` type name for methods (`impl Dispatcher` →
    /// `Some("Dispatcher")`); `None` for free functions.
    pub impl_type: Option<String>,
    /// Taint facts of the body.
    pub taint: FnTaintFacts,
    /// Static-shaped identifier mentions in the body.
    pub global_refs: Vec<GlobalRef>,
}

/// Everything the global passes need from one file — a pure function of
/// the file's source plus its crate's manifest metadata, which is what
/// makes it cacheable.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Workspace-relative path.
    pub rel: String,
    /// Owning crate name.
    pub crate_name: String,
    /// Pre-waiver candidates from the per-file passes (token rules,
    /// semantic rules, v3-local taint).
    pub candidates: Vec<Finding>,
    /// Parsed waivers, to be replayed through a fresh
    /// [`crate::rules::waivers::WaiverSet`] at finalize time.
    pub waivers: Vec<Waiver>,
    /// Malformed-waiver sites as (line, message).
    pub bad_waivers: Vec<(usize, String)>,
    /// Per declared ledger field: this file's non-test sites.
    pub ledger: Vec<(String, LedgerSites)>,
    /// `use`-alias bindings: visible name → full path segments.
    pub bindings: BTreeMap<String, Vec<String>>,
    /// Per-function facts, in file order.
    pub fns: Vec<FnFact>,
    /// Classified statics.
    pub statics: Vec<StaticFact>,
    /// True when interprocedural taint findings may be emitted for this
    /// file (core/model layer, not a tests dir).
    pub taint_scope: bool,
    /// File contains `#![forbid(unsafe_code)]` (the missing-forbid input
    /// for crate roots).
    pub has_forbid: bool,
}

/// Classify the file's statics, marking those inside `thread_local!`
/// extents as TLS.
pub fn collect_statics(toks: &[Token], items: &FileItems) -> Vec<StaticFact> {
    let tls_spans = tls_extents(toks);
    items
        .statics
        .iter()
        .map(|st| {
            let interior = st
                .type_idents
                .iter()
                .any(|t| INTERIOR_MUTABLE.contains(&t.as_str()) || t.starts_with("Atomic"));
            let tls = tls_spans.iter().any(|&(a, b)| a <= st.line && st.line <= b);
            StaticFact {
                name: st.name.clone(),
                line: st.line,
                mutable: st.mutable,
                tls,
                interior,
            }
        })
        .collect()
}

/// Line extents of `thread_local! { .. }` invocations.
fn tls_extents(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for k in 0..toks.len() {
        if toks[k].kind.ident() != Some("thread_local") {
            continue;
        }
        if toks.get(k + 1).map(|t| &t.kind) != Some(&TokKind::Punct('!')) {
            continue;
        }
        let Some(open) =
            (k + 2..toks.len().min(k + 4)).find(|&i| toks[i].kind == TokKind::Punct('{'))
        else {
            continue;
        };
        let mut depth = 0i32;
        let mut close = None;
        for (off, t) in toks[open..].iter().enumerate() {
            if t.kind == TokKind::Punct('{') {
                depth += 1;
            } else if t.kind == TokKind::Punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + off);
                    break;
                }
            }
        }
        if let Some(c) = close {
            out.push((toks[k].line, toks[c].line));
        }
    }
    out
}

/// Methods that mutate (or hand out mutable access to) the receiver —
/// touching a static through one of these counts as a write.
const WRITE_METHODS: &[&str] = &[
    "set",
    "get_or_init",
    "get_or_insert_with",
    "get_or_try_init",
    "lock",
    "write",
    "borrow_mut",
    "get_mut",
    "store",
    "swap",
    "insert",
    "push",
    "remove",
    "clear",
    "replace",
    "take",
    "init",
    "with_borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Collect all-caps identifier mentions in a body with a read/write
/// classification. Only names that match an actual workspace `static`
/// matter downstream; everything else is ignored at certification time.
pub fn collect_global_refs(toks: &[Token], body: (usize, usize)) -> Vec<GlobalRef> {
    let mut out: Vec<GlobalRef> = Vec::new();
    let end = body.1.min(toks.len());
    for k in body.0..end {
        let Some(s) = toks[k].kind.ident() else {
            continue;
        };
        if s.len() < 2
            || !s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            || !s
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        {
            continue;
        }
        let next = toks.get(k + 1).map(|t| &t.kind);
        let write = match next {
            Some(TokKind::Punct('.')) => toks
                .get(k + 2)
                .and_then(|t| t.kind.ident())
                .is_some_and(|m| WRITE_METHODS.contains(&m)),
            Some(TokKind::Punct('=')) => {
                // `NAME = ..` but not `NAME == ..`.
                toks.get(k + 2).map(|t| &t.kind) != Some(&TokKind::Punct('='))
            }
            Some(TokKind::Punct(op @ ('+' | '-' | '*' | '/' | '%' | '|' | '&' | '^'))) => {
                let _ = op;
                toks.get(k + 2).map(|t| &t.kind) == Some(&TokKind::Punct('='))
            }
            _ => false,
        };
        let gr = GlobalRef {
            name: s.to_string(),
            line: toks[k].line,
            write,
        };
        if !out.contains(&gr) {
            out.push(gr);
        }
    }
    out
}

/// A function's identity in the workspace: (file index, fn index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnRef {
    /// Index into the workspace's file list.
    pub file: usize,
    /// Index into that file's [`FileFacts::fns`].
    pub idx: usize,
}

/// A resolved taint summary: the origin a function's return value
/// carries, with the chain-root source location for cross-file
/// reporting.
#[derive(Debug, Clone)]
pub struct Summary {
    /// v3-format origin label, `(via ..)` clauses included.
    pub label: String,
    /// File index of the chain-root local source.
    pub file: usize,
    /// 1-based line of the chain-root local source.
    pub line: usize,
}

/// One interprocedural determinism-taint finding, pre-formatting.
#[derive(Debug, Clone)]
pub struct InterFinding {
    /// File index of the sink.
    pub file: usize,
    /// 1-based sink line.
    pub line: usize,
    /// `{origin} flows into {sink}` in the v3 message format.
    pub message: String,
    /// `(file index, line)` of the local source when it lives in a
    /// different file than the sink.
    pub source: Option<(usize, usize)>,
}

/// The workspace call-graph index over every file's facts.
pub struct Workspace<'a> {
    /// The indexed files.
    pub files: &'a [FileFacts],
    /// Normalized (`-` → `_`) crate name → canonical crate name.
    crate_norm: BTreeMap<String, String>,
    /// (crate name, fn name) → definitions.
    by_crate: BTreeMap<(String, String), Vec<FnRef>>,
    /// Method name → impl-owned definitions, workspace-wide.
    methods: BTreeMap<String, Vec<FnRef>>,
    /// (impl type name, fn name) → definitions.
    by_type: BTreeMap<(String, String), Vec<FnRef>>,
    /// Static name → worst-case (mutable, tls, interior) over all
    /// same-named statics, with one declaration site.
    statics: BTreeMap<String, (StaticFact, usize)>,
}

impl<'a> Workspace<'a> {
    /// Build the index.
    pub fn new(files: &'a [FileFacts]) -> Workspace<'a> {
        let mut ws = Workspace {
            files,
            crate_norm: BTreeMap::new(),
            by_crate: BTreeMap::new(),
            methods: BTreeMap::new(),
            by_type: BTreeMap::new(),
            statics: BTreeMap::new(),
        };
        for (fi, f) in files.iter().enumerate() {
            ws.crate_norm
                .insert(f.crate_name.replace('-', "_"), f.crate_name.clone());
            for (xi, fun) in f.fns.iter().enumerate() {
                let r = FnRef { file: fi, idx: xi };
                ws.by_crate
                    .entry((f.crate_name.clone(), fun.name.clone()))
                    .or_default()
                    .push(r);
                if let Some(ty) = &fun.impl_type {
                    ws.methods.entry(fun.name.clone()).or_default().push(r);
                    ws.by_type
                        .entry((ty.clone(), fun.name.clone()))
                        .or_default()
                        .push(r);
                }
            }
            for st in &f.statics {
                ws.statics
                    .entry(st.name.clone())
                    .and_modify(|(cur, _)| {
                        cur.mutable |= st.mutable;
                        cur.tls |= st.tls;
                        cur.interior |= st.interior;
                    })
                    .or_insert_with(|| (st.clone(), fi));
            }
        }
        ws
    }

    /// Worst-case classification of the named workspace static, with the
    /// file index of its first declaration.
    pub fn static_named(&self, name: &str) -> Option<&(StaticFact, usize)> {
        self.statics.get(name)
    }

    /// Definitions of `Type::name` across the workspace.
    pub fn fns_of_type(&self, ty: &str, name: &str) -> Vec<FnRef> {
        self.by_type
            .get(&(ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// Definitions of `name` within `krate`.
    pub fn fns_in_crate(&self, krate: &str, name: &str) -> Vec<FnRef> {
        self.by_crate
            .get(&(krate.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    fn crate_from_seg(&self, seg: &str, own: &str) -> String {
        match seg {
            "crate" | "self" | "super" => own.to_string(),
            _ => self
                .crate_norm
                .get(&seg.replace('-', "_"))
                .cloned()
                .unwrap_or_else(|| own.to_string()),
        }
    }

    fn same_file(&self, file: usize, name: &str) -> Vec<FnRef> {
        self.files[file]
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == name)
            .map(|(idx, _)| FnRef { file, idx })
            .collect()
    }

    /// Resolve a call site in `file` to candidate definitions.
    pub fn resolve(&self, file: usize, call: &CallFact) -> Vec<FnRef> {
        let facts = &self.files[file];
        let own = facts.crate_name.as_str();
        let mut out: Vec<FnRef>;
        if call.method {
            // `recv.m(..)`: any same-file fn named m (the v3 contract),
            // plus every workspace impl-owned fn of that name.
            out = self.same_file(file, &call.name);
            if let Some(v) = self.methods.get(&call.name) {
                out.extend(v.iter().copied());
            }
        } else if let Some(seg) = call.path.last() {
            // Resolve a leading alias on the qualifier.
            let seg = facts
                .bindings
                .get(seg)
                .and_then(|p| p.last())
                .map(String::as_str)
                .unwrap_or(seg);
            if seg.starts_with(|c: char| c.is_ascii_uppercase()) {
                // `Type::m(..)`.
                out = self
                    .by_type
                    .get(&(seg.to_string(), call.name.clone()))
                    .cloned()
                    .unwrap_or_default();
            } else {
                // Module path: the first segment picks the crate.
                let first = call.path.first().map(String::as_str).unwrap_or(seg);
                let first = facts
                    .bindings
                    .get(first)
                    .and_then(|p| p.first())
                    .map(String::as_str)
                    .unwrap_or(first);
                let krate = self.crate_from_seg(first, own);
                out = self
                    .by_crate
                    .get(&(krate, call.name.clone()))
                    .cloned()
                    .unwrap_or_default();
            }
        } else {
            // Plain `name(..)`: same file, then the `use` binding, then
            // same crate by name.
            out = self.same_file(file, &call.name);
            if out.is_empty() {
                if let Some(path) = facts.bindings.get(&call.name) {
                    if let (Some(first), Some(last)) = (path.first(), path.last()) {
                        let krate = self.crate_from_seg(first, own);
                        out = self
                            .by_crate
                            .get(&(krate, last.clone()))
                            .cloned()
                            .unwrap_or_default();
                    }
                }
            }
            if out.is_empty() {
                out = self
                    .by_crate
                    .get(&(own.to_string(), call.name.clone()))
                    .cloned()
                    .unwrap_or_default();
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn node_list(&self) -> (Vec<FnRef>, BTreeMap<FnRef, usize>) {
        let mut nodes = Vec::new();
        let mut index = BTreeMap::new();
        for (fi, f) in self.files.iter().enumerate() {
            for xi in 0..f.fns.len() {
                let r = FnRef { file: fi, idx: xi };
                index.insert(r, nodes.len());
                nodes.push(r);
            }
        }
        (nodes, index)
    }

    /// Call-graph adjacency (node index → callee node indices), plus the
    /// node list itself.
    pub fn call_graph(&self) -> (Vec<FnRef>, Vec<Vec<usize>>) {
        let (nodes, index) = self.node_list();
        let mut adj = vec![Vec::new(); nodes.len()];
        for (ni, r) in nodes.iter().enumerate() {
            let fun = &self.files[r.file].fns[r.idx];
            let mut outs: Vec<usize> = fun
                .taint
                .calls
                .iter()
                .flat_map(|c| self.resolve(r.file, c))
                .filter_map(|t| index.get(&t).copied())
                .collect();
            outs.sort_unstable();
            outs.dedup();
            adj[ni] = outs;
        }
        (nodes, adj)
    }

    /// Bottom-up taint summaries for every function, keyed the same way
    /// as [`FileFacts::fns`] (outer: file index, inner: fn index).
    ///
    /// SCCs are processed callees-first; within an SCC the resolution
    /// iterates to a fixpoint. A function's summary is its *first*
    /// return origin that resolves live — a local source always does, a
    /// call-carried origin does once its callee has a summary — and a
    /// summary is never overwritten, which both matches the v3
    /// first-origin contract and guarantees termination on cycles.
    pub fn summaries(&self) -> Vec<Vec<Option<Summary>>> {
        let (nodes, adj) = self.call_graph();
        let index: BTreeMap<FnRef, usize> =
            nodes.iter().enumerate().map(|(i, r)| (*r, i)).collect();
        let sccs = tarjan_sccs(&adj);
        let mut sums: Vec<Option<Summary>> = vec![None; nodes.len()];
        for scc in &sccs {
            // Fixpoint within the SCC (singletons converge in one pass).
            for _round in 0..scc.len().max(1) {
                let mut changed = false;
                for &ni in scc {
                    if sums[ni].is_some() {
                        continue;
                    }
                    let r = nodes[ni];
                    let fun = &self.files[r.file].fns[r.idx];
                    for o in &fun.taint.ret {
                        let resolved = match &o.call {
                            None => Some(Summary {
                                label: o.label.clone(),
                                file: r.file,
                                line: o.line,
                            }),
                            Some(callee) => fun
                                .taint
                                .calls
                                .iter()
                                .find(|c| c.name == *callee)
                                .map(|c| self.resolve(r.file, c))
                                .unwrap_or_default()
                                .iter()
                                .find_map(|t| index.get(t).and_then(|&ti| sums[ti].clone()))
                                .map(|s| Summary {
                                    label: format!("{} (via `{}()`)", s.label, callee),
                                    file: s.file,
                                    line: s.line,
                                }),
                        };
                        if let Some(s) = resolved {
                            sums[ni] = Some(s);
                            changed = true;
                            break;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        // Re-key by (file, fn).
        let mut out: Vec<Vec<Option<Summary>>> =
            self.files.iter().map(|f| vec![None; f.fns.len()]).collect();
        for (ni, r) in nodes.iter().enumerate() {
            out[r.file][r.idx] = sums[ni].take();
        }
        out
    }

    /// Interprocedural determinism-taint findings: every sink fed by a
    /// call whose resolved summary is tainted, in files where taint
    /// findings are in scope. Same-file chains the v3 pass already
    /// reports produce byte-identical messages here and are deduplicated
    /// by the caller.
    pub fn interproc_findings(&self, sums: &[Vec<Option<Summary>>]) -> Vec<InterFinding> {
        let mut out = Vec::new();
        for (fi, f) in self.files.iter().enumerate() {
            if !f.taint_scope {
                continue;
            }
            for fun in &f.fns {
                for sink in &fun.taint.sinks {
                    let hit = sink.callees.iter().find_map(|callee| {
                        fun.taint
                            .calls
                            .iter()
                            .find(|c| c.name == *callee)
                            .map(|c| self.resolve(fi, c))
                            .unwrap_or_default()
                            .iter()
                            .find_map(|t| sums[t.file][t.idx].clone())
                            .map(|s| (callee, s))
                    });
                    if let Some((callee, s)) = hit {
                        out.push(InterFinding {
                            file: fi,
                            line: sink.line,
                            message: format!(
                                "{} (via `{}()`) flows into {}",
                                s.label, callee, sink.label
                            ),
                            source: (s.file != fi).then_some((s.file, s.line)),
                        });
                    }
                }
            }
        }
        out
    }
}

/// Iterative Tarjan SCC. Returns components in completion order, which
/// is callees-first — exactly the order bottom-up summary resolution
/// wants.
pub fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // (node, next child position) — the explicit DFS frame.
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::{collect_fn_facts, OriginFact, SinkFact};
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn facts_for(crate_name: &str, rel: &str, src: &str) -> FileFacts {
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        let taint = collect_fn_facts(&lexed.tokens, &items, &[]);
        let fns = items
            .fns
            .iter()
            .zip(taint)
            .map(|(f, t)| FnFact {
                name: f.name.clone(),
                line: f.line,
                impl_type: f.owner.map(|o| items.impls[o].type_name.clone()),
                taint: t,
                global_refs: collect_global_refs(&lexed.tokens, f.body),
            })
            .collect();
        FileFacts {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            bindings: crate::rules::tokens::collect_bindings(&lexed.tokens),
            fns,
            statics: collect_statics(&lexed.tokens, &items),
            taint_scope: true,
            ..FileFacts::default()
        }
    }

    #[test]
    fn tarjan_orders_callees_first() {
        // 0 → 1 → 2, cycle {3,4} → 2.
        let adj = vec![vec![1], vec![2], vec![], vec![4, 2], vec![3]];
        let sccs = tarjan_sccs(&adj);
        let pos = |n: usize| sccs.iter().position(|c| c.contains(&n)).unwrap();
        assert!(pos(2) < pos(1) && pos(1) < pos(0));
        assert_eq!(sccs[pos(3)], vec![3, 4]);
    }

    #[test]
    fn cross_crate_summary_resolves_through_use_binding() {
        let a = facts_for(
            "gen",
            "crates/gen/src/lib.rs",
            "pub fn pick(m: &HashMap<u32, u32>) -> Vec<u32> {\n    let order: Vec<u32> = m.keys().copied().collect();\n    order\n}\n",
        );
        let b = facts_for(
            "engine",
            "crates/engine/src/lib.rs",
            "use gen::pick;\nfn drive(m: &HashMap<u32, u32>, q: &mut Queue) {\n    let order = pick(m);\n    q.schedule(order);\n}\n",
        );
        let files = vec![a, b];
        let ws = Workspace::new(&files);
        let sums = ws.summaries();
        assert!(
            sums[0][0]
                .as_ref()
                .is_some_and(|s| s.label.contains("unordered container `m`")),
            "{sums:?}"
        );
        let found = ws.interproc_findings(&sums);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].message.contains("(via `pick()`)"),
            "{}",
            found[0].message
        );
        assert_eq!(found[0].source, Some((0, 2)), "{found:?}");
    }

    #[test]
    fn method_calls_resolve_to_workspace_impls() {
        let a = facts_for(
            "model",
            "crates/model/src/lib.rs",
            "impl Sampler {\n    pub fn order(&self) -> Vec<u32> {\n        let v: Vec<u32> = self.map.keys().copied().collect();\n        v\n    }\n}\nstruct Sampler { map: HashMap<u32, u32> }\n",
        );
        let b = facts_for(
            "engine",
            "crates/engine/src/lib.rs",
            "fn drive(s: &Sampler, q: &mut Q) {\n    let order = s.order();\n    q.schedule_at(order);\n}\n",
        );
        let files = vec![a, b];
        let ws = Workspace::new(&files);
        let found = ws.interproc_findings(&ws.summaries());
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].message.contains("via `order()`"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn scc_cycles_terminate_and_still_resolve() {
        let a = facts_for(
            "m",
            "crates/m/src/lib.rs",
            "fn ping(n: u32, m: &HashMap<u32, u32>) -> Vec<u32> {\n    if n == 0 {\n        let base: Vec<u32> = m.keys().copied().collect();\n        return base;\n    }\n    pong(n - 1, m)\n}\nfn pong(n: u32, m: &HashMap<u32, u32>) -> Vec<u32> {\n    ping(n, m)\n}\n",
        );
        let files = vec![a];
        let ws = Workspace::new(&files);
        let sums = ws.summaries();
        assert!(sums[0][0].is_some(), "{sums:?}");
        assert!(sums[0][1].is_some(), "{sums:?}");
    }

    #[test]
    fn global_ref_write_classification() {
        let src = "fn f() {\n    REG.get_or_init(make);\n    let v = LIMIT;\n    COUNT += 1;\n}\n";
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        let refs = collect_global_refs(&lexed.tokens, items.fns[0].body);
        let get = |n: &str| refs.iter().find(|r| r.name == n).unwrap();
        assert!(get("REG").write);
        assert!(!get("LIMIT").write);
        assert!(get("COUNT").write);
    }

    #[test]
    fn tls_statics_are_classified() {
        let src = "thread_local! {\n    static TLS: Cell<u64> = Cell::new(0);\n}\nstatic PLAIN: u64 = 0;\n";
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        let st = collect_statics(&lexed.tokens, &items);
        let get = |n: &str| st.iter().find(|s| s.name == n).unwrap();
        assert!(get("TLS").tls);
        assert!(!get("PLAIN").tls);
    }

    #[test]
    fn sink_facts_record_call_carried_values() {
        let src = "fn drive(q: &mut Q) {\n    let order = helper();\n    q.schedule(order);\n}\nfn helper() -> Vec<u32> { Vec::new() }\n";
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        let taint = collect_fn_facts(&lexed.tokens, &items, &[]);
        let sinks: &[SinkFact] = &taint[0].sinks;
        assert_eq!(sinks.len(), 1, "{sinks:?}");
        // The collection over-approximates (the sink method itself is
        // recorded too — it resolves to nothing and is harmless); what
        // matters is that the value-carrying call is present.
        assert!(
            sinks[0].callees.contains(&"helper".to_string()),
            "{sinks:?}"
        );
        // A clean helper must not leak a *local* origin — call-carried
        // candidates (`Vec::new`) resolve to no summary and stay inert.
        let ret: &[OriginFact] = &taint[1].ret;
        assert!(ret.iter().all(|o| o.call.is_some()), "{ret:?}");
    }
}
