//! `cargo run -p simlint -- --deny-all` — fail the build on determinism
//! hazards anywhere in the workspace sources.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(simlint::run(&args));
}
