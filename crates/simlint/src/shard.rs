//! Shard-safety certification: prove that everything reachable from a
//! crate's declared shard entry points touches only shard-local state.
//!
//! ROADMAP open item 2 wants one simulation partitioned across cores
//! BEE-style while staying bit-identical. That is only sound if no code
//! a shard executes reaches ambient process-global state: a `static mut`
//! or a written interior-mutable static couples shards invisibly, a
//! `thread_local!` is invisible to the partitioner, and ambient RNG
//! diverges per shard. Crates opt in by declaring entry points in their
//! manifest:
//!
//! ```toml
//! [package.metadata.simlint]
//! shard_roots = ["Dispatcher::on_request", "Dispatcher::on_done"]
//! ```
//!
//! A root is either `Type::method` (every workspace impl of `Type`
//! defining `method`, restricted to the declaring crate) or a bare free
//! function name. From the resolved roots this pass walks the
//! interprocedural call graph ([`crate::interproc::Workspace`]) —
//! crossing files and crates, over-approximate in the conservative
//! direction — and classifies every touched static:
//!
//! * `static mut` touch (read *or* write): unsafe,
//! * `thread_local!` static touch: unsafe,
//! * interior-mutable static (`Mutex`, `OnceLock`, `Atomic*`, …)
//!   **write**: unsafe; read-only access is recorded as a note,
//! * ambient RNG (`thread_rng`, `OsRng`, `rand::random`): unsafe.
//!
//! Every unsafe reason carries a witness path — the call chain from the
//! root to the offending function — so the verdict is auditable. The
//! result serializes to `SHARD_SAFETY.json` (schema 1), which is checked
//! in and gated exactly like the findings baseline: strict CI compares
//! byte-for-byte, non-strict compares one-way (regressions fail,
//! improvements ask for re-certification). A root that does not resolve
//! is a `shard-cert` finding on the declaring manifest — an unresolvable
//! entry point certifies nothing.

use std::collections::BTreeMap;

use crate::interproc::{FnRef, Workspace};
use crate::report::{json_str, parse_json};
use crate::Finding;

/// One reason a crate's shard verdict is `unsafe`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Reason {
    /// What was touched, and where.
    pub detail: String,
    /// Call chain from a shard root to the touching function, rendered
    /// as `crate::fn (file:line)` hops.
    pub witness: Vec<String>,
}

/// The certification result for one crate.
#[derive(Debug, Clone, Default)]
pub struct CrateVerdict {
    /// The declared roots, as written in the manifest.
    pub roots: Vec<String>,
    /// True when no unsafe reason was found.
    pub safe: bool,
    /// Unsafe reasons with witness paths (empty when safe).
    pub reasons: Vec<Reason>,
    /// Benign observations (read-only interior-mutable access).
    pub notes: Vec<String>,
}

/// The whole certificate: per-crate verdicts for every crate declaring
/// `shard_roots`.
#[derive(Debug, Clone, Default)]
pub struct ShardCert {
    /// Crate name → verdict.
    pub crates: BTreeMap<String, CrateVerdict>,
}

/// One crate's shard-root declaration, as read from its manifest.
#[derive(Debug, Clone)]
pub struct RootSpec {
    /// The declaring crate.
    pub crate_name: String,
    /// Workspace-relative manifest path (finding site for bad roots).
    pub manifest: String,
    /// Declared roots.
    pub roots: Vec<String>,
}

/// Certify every declaring crate. Returns the certificate plus
/// `shard-cert` findings for roots that resolve to nothing.
pub fn certify(specs: &[RootSpec], ws: &Workspace) -> (ShardCert, Vec<Finding>) {
    let mut cert = ShardCert::default();
    let mut findings = Vec::new();
    let (nodes, adj) = ws.call_graph();
    let index: BTreeMap<FnRef, usize> = nodes.iter().enumerate().map(|(i, r)| (*r, i)).collect();

    for spec in specs {
        if spec.roots.is_empty() {
            continue;
        }
        let mut verdict = CrateVerdict {
            roots: spec.roots.clone(),
            ..CrateVerdict::default()
        };
        let mut queue: Vec<usize> = Vec::new();
        for root in &spec.roots {
            let refs = resolve_root(ws, &spec.crate_name, root);
            if refs.is_empty() {
                findings.push(Finding {
                    file: spec.manifest.clone(),
                    line: 1,
                    rule: "shard-cert",
                    message: format!(
                        "shard root `{root}` does not resolve to any function in \
                         crate `{}`; an unresolvable entry point certifies \
                         nothing — fix the name or drop it",
                        spec.crate_name
                    ),
                });
                verdict.reasons.push(Reason {
                    detail: format!("shard root `{root}` is unresolvable"),
                    witness: Vec::new(),
                });
                continue;
            }
            queue.extend(refs.iter().filter_map(|r| index.get(r).copied()));
        }

        // BFS with parent tracking for witness reconstruction.
        let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
        let mut seen: Vec<bool> = vec![false; nodes.len()];
        let mut order: Vec<usize> = Vec::new();
        let mut head = 0usize;
        queue.sort_unstable();
        queue.dedup();
        for &q in &queue {
            if !seen[q] {
                seen[q] = true;
                order.push(q);
            }
        }
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    parent[w] = Some(v);
                    order.push(w);
                }
            }
        }

        let witness = |ni: usize| -> Vec<String> {
            let mut chain = Vec::new();
            let mut cur = Some(ni);
            while let Some(c) = cur {
                chain.push(render_fn(ws, nodes[c]));
                cur = parent[c];
            }
            chain.reverse();
            chain
        };

        for &ni in &order {
            let r = nodes[ni];
            let facts = &ws.files[r.file];
            let fun = &facts.fns[r.idx];
            for &line in &fun.taint.rng_lines {
                verdict.reasons.push(Reason {
                    detail: format!(
                        "ambient RNG at {}:{line} is reachable from a shard root; \
                         shards must draw from a seeded per-shard stream",
                        facts.rel
                    ),
                    witness: witness(ni),
                });
            }
            for gr in &fun.global_refs {
                let Some((st, sfi)) = ws.static_named(&gr.name) else {
                    continue;
                };
                let decl = format!("{}:{}", ws.files[*sfi].rel, st.line);
                if st.mutable {
                    verdict.reasons.push(Reason {
                        detail: format!(
                            "`static mut {}` (declared at {decl}) is touched at \
                             {}:{}; shards must not share ambient globals",
                            gr.name, facts.rel, gr.line
                        ),
                        witness: witness(ni),
                    });
                } else if st.tls {
                    verdict.reasons.push(Reason {
                        detail: format!(
                            "`thread_local!` static `{}` (declared at {decl}) is \
                             touched at {}:{}; TLS is invisible to the shard \
                             partitioner",
                            gr.name, facts.rel, gr.line
                        ),
                        witness: witness(ni),
                    });
                } else if st.interior && gr.write {
                    verdict.reasons.push(Reason {
                        detail: format!(
                            "interior-mutable static `{}` (declared at {decl}) is \
                             written at {}:{}; cross-shard writes break isolation",
                            gr.name, facts.rel, gr.line
                        ),
                        witness: witness(ni),
                    });
                } else if st.interior {
                    verdict.notes.push(format!(
                        "read-only access to interior-mutable static `{}` at \
                         {}:{} (allowed; watched)",
                        gr.name, facts.rel, gr.line
                    ));
                }
            }
        }
        verdict.reasons.sort();
        verdict.reasons.dedup();
        verdict.notes.sort();
        verdict.notes.dedup();
        verdict.safe = verdict.reasons.is_empty();
        cert.crates.insert(spec.crate_name.clone(), verdict);
    }
    (cert, findings)
}

/// Resolve one declared root within its crate: `Type::method` narrows to
/// impls of `Type`; a bare name prefers free functions, falling back to
/// any same-named fn in the crate.
fn resolve_root(ws: &Workspace, crate_name: &str, root: &str) -> Vec<FnRef> {
    let in_crate = |r: &FnRef| ws.files[r.file].crate_name == crate_name;
    if let Some((ty, method)) = root.split_once("::") {
        let mut refs = ws.fns_of_type(ty, method);
        refs.retain(in_crate);
        return refs;
    }
    let all = ws.fns_in_crate(crate_name, root);
    let free: Vec<FnRef> = all
        .iter()
        .copied()
        .filter(|r| ws.files[r.file].fns[r.idx].impl_type.is_none())
        .collect();
    if free.is_empty() {
        all
    } else {
        free
    }
}

fn render_fn(ws: &Workspace, r: FnRef) -> String {
    let facts = &ws.files[r.file];
    let fun = &facts.fns[r.idx];
    let qual = fun
        .impl_type
        .as_ref()
        .map(|t| format!("{t}::"))
        .unwrap_or_default();
    format!(
        "{}::{qual}{} ({}:{})",
        facts.crate_name, fun.name, facts.rel, fun.line
    )
}

impl ShardCert {
    /// Serialize to the checked-in `SHARD_SAFETY.json` form (schema 1).
    /// Deterministic: crates and reasons are ordered, so equal inputs
    /// produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"crates\": {");
        let mut first_crate = true;
        for (name, v) in &self.crates {
            if !first_crate {
                out.push(',');
            }
            first_crate = false;
            out.push_str(&format!("\n    {}: {{\n", json_str(name)));
            out.push_str("      \"roots\": [");
            out.push_str(
                &v.roots
                    .iter()
                    .map(|r| json_str(r))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push_str("],\n");
            out.push_str(&format!(
                "      \"verdict\": {},\n",
                json_str(if v.safe { "safe" } else { "unsafe" })
            ));
            out.push_str("      \"reasons\": [");
            let mut first_r = true;
            for r in &v.reasons {
                if !first_r {
                    out.push(',');
                }
                first_r = false;
                out.push_str(&format!(
                    "\n        {{\"detail\": {}, \"witness\": [{}]}}",
                    json_str(&r.detail),
                    r.witness
                        .iter()
                        .map(|w| json_str(w))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            if !v.reasons.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("],\n");
            out.push_str("      \"notes\": [");
            let mut first_n = true;
            for n in &v.notes {
                if !first_n {
                    out.push(',');
                }
                first_n = false;
                out.push_str(&format!("\n        {}", json_str(n)));
            }
            if !v.notes.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Compare the freshly computed certificate against the checked-in one.
///
/// Strict: any byte difference fails (drift in either direction must be
/// re-certified explicitly, like the findings baseline). Non-strict:
/// only regressions fail — a crate losing its `safe` verdict, a new
/// unsafe reason, or a certified crate disappearing; improvements come
/// back as notes asking for re-certification.
pub fn compare(
    current: &ShardCert,
    baseline_text: &str,
    strict: bool,
) -> Result<Vec<String>, Vec<String>> {
    let mut errors = Vec::new();
    let mut notes = Vec::new();
    let parsed = match parse_json(baseline_text) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("unparsable shard certificate: {e}")]),
    };
    if parsed.get("schema").and_then(|v| v.as_usize()) != Some(1) {
        return Err(vec!["shard certificate must declare \"schema\": 1".into()]);
    }
    let empty = BTreeMap::new();
    let base_crates = match parsed.get("crates") {
        Some(crate::report::Value::Object(m)) => m,
        _ => &empty,
    };
    for (name, bv) in base_crates {
        let base_safe = bv.get("verdict").and_then(|v| v.as_str()) == Some("safe");
        let base_reasons: Vec<String> = bv
            .get("reasons")
            .and_then(|v| v.as_array())
            .map(|a| {
                a.iter()
                    .filter_map(|r| r.get("detail").and_then(|d| d.as_str()))
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        match current.crates.get(name) {
            None => errors.push(format!(
                "crate `{name}` is certified in the baseline but no longer \
                 declares shard_roots; re-certify or remove it"
            )),
            Some(cv) => {
                if base_safe && !cv.safe {
                    errors.push(format!(
                        "crate `{name}` regressed from `safe` to `unsafe`: {}",
                        cv.reasons
                            .iter()
                            .map(|r| r.detail.as_str())
                            .collect::<Vec<_>>()
                            .join("; ")
                    ));
                } else {
                    for r in &cv.reasons {
                        if !base_reasons.contains(&r.detail) {
                            errors.push(format!(
                                "crate `{name}` gained a new unsafe reason: {}",
                                r.detail
                            ));
                        }
                    }
                }
                if !base_safe && cv.safe {
                    notes.push(format!(
                        "crate `{name}` is now `safe`; re-certify to record the \
                         improvement"
                    ));
                }
            }
        }
    }
    for name in current.crates.keys() {
        if !base_crates.contains_key(name) {
            notes.push(format!(
                "crate `{name}` newly declares shard_roots; re-certify to \
                 record it"
            ));
        }
    }
    if strict && errors.is_empty() && current.to_json() != baseline_text {
        errors.push(
            "shard certificate drift (strict): the checked-in SHARD_SAFETY.json \
             does not match the computed certificate byte-for-byte; regenerate \
             with --shard-cert"
                .into(),
        );
    }
    if errors.is_empty() {
        Ok(notes)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::collect_fn_facts;
    use crate::interproc::{collect_global_refs, collect_statics, FileFacts, FnFact};
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn facts_for(crate_name: &str, rel: &str, src: &str) -> FileFacts {
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        let taint = collect_fn_facts(&lexed.tokens, &items, &[]);
        let fns = items
            .fns
            .iter()
            .zip(taint)
            .map(|(f, t)| FnFact {
                name: f.name.clone(),
                line: f.line,
                impl_type: f.owner.map(|o| items.impls[o].type_name.clone()),
                taint: t,
                global_refs: collect_global_refs(&lexed.tokens, f.body),
            })
            .collect();
        FileFacts {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            bindings: crate::rules::tokens::collect_bindings(&lexed.tokens),
            fns,
            statics: collect_statics(&lexed.tokens, &items),
            taint_scope: true,
            ..FileFacts::default()
        }
    }

    fn spec(name: &str, roots: &[&str]) -> RootSpec {
        RootSpec {
            crate_name: name.to_string(),
            manifest: format!("crates/{name}/Cargo.toml"),
            roots: roots.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn clean_root_certifies_safe() {
        let files = vec![facts_for(
            "core",
            "crates/core/src/lib.rs",
            "impl Engine {\n    pub fn run(&mut self) -> u64 {\n        self.step()\n    }\n    fn step(&mut self) -> u64 { 1 }\n}\n",
        )];
        let ws = Workspace::new(&files);
        let (cert, findings) = certify(&[spec("core", &["Engine::run"])], &ws);
        assert!(findings.is_empty(), "{findings:?}");
        let v = &cert.crates["core"];
        assert!(v.safe, "{v:?}");
        assert!(v.reasons.is_empty());
    }

    #[test]
    fn reachable_static_mut_is_unsafe_with_witness() {
        let files = vec![facts_for(
            "core",
            "crates/core/src/lib.rs",
            "static mut RAW: u64 = 0;\nimpl Engine {\n    pub fn run(&mut self) {\n        self.deep();\n    }\n    fn deep(&mut self) {\n        unsafe { RAW += 1 };\n    }\n}\n",
        )];
        let ws = Workspace::new(&files);
        let (cert, _) = certify(&[spec("core", &["Engine::run"])], &ws);
        let v = &cert.crates["core"];
        assert!(!v.safe, "{v:?}");
        assert!(v.reasons[0].detail.contains("static mut RAW"), "{v:?}");
        let w = &v.reasons[0].witness;
        assert_eq!(w.len(), 2, "{w:?}");
        assert!(w[0].contains("Engine::run"), "{w:?}");
        assert!(w[1].contains("Engine::deep"), "{w:?}");
    }

    #[test]
    fn cross_crate_reachability_is_followed() {
        let files = vec![
            facts_for(
                "model",
                "crates/model/src/lib.rs",
                "pub fn sample() -> u64 {\n    let mut rng = thread_rng();\n    7\n}\n",
            ),
            facts_for(
                "core",
                "crates/core/src/lib.rs",
                "use model::sample;\nimpl Engine {\n    pub fn run(&mut self) -> u64 {\n        sample()\n    }\n}\n",
            ),
        ];
        let ws = Workspace::new(&files);
        let (cert, _) = certify(&[spec("core", &["Engine::run"])], &ws);
        let v = &cert.crates["core"];
        assert!(!v.safe, "{v:?}");
        assert!(v.reasons[0].detail.contains("ambient RNG"), "{v:?}");
        assert!(v.reasons[0].witness.len() == 2, "{v:?}");
    }

    #[test]
    fn read_only_interior_access_is_a_note_not_a_reason() {
        let files = vec![facts_for(
            "core",
            "crates/core/src/lib.rs",
            "static REG: OnceLock<u64> = OnceLock::new();\npub fn run() -> u64 {\n    *REG.get().unwrap_or(&0)\n}\npub fn install() {\n    REG.get_or_init(|| 7);\n}\n",
        )];
        let ws = Workspace::new(&files);
        let (cert, _) = certify(&[spec("core", &["run"])], &ws);
        let v = &cert.crates["core"];
        assert!(v.safe, "{v:?}");
        assert_eq!(v.notes.len(), 1, "{v:?}");
        // But certifying the writer flips the verdict.
        let (cert2, _) = certify(&[spec("core", &["install"])], &ws);
        assert!(!cert2.crates["core"].safe, "{cert2:?}");
    }

    #[test]
    fn unresolvable_root_is_a_finding_and_a_reason() {
        let files = vec![facts_for(
            "core",
            "crates/core/src/lib.rs",
            "pub fn run() {}\n",
        )];
        let ws = Workspace::new(&files);
        let (cert, findings) = certify(&[spec("core", &["Engine::missing"])], &ws);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "shard-cert");
        assert!(findings[0].file.ends_with("Cargo.toml"));
        assert!(!cert.crates["core"].safe);
    }

    #[test]
    fn certificate_json_round_trips_through_compare() {
        let files = vec![facts_for(
            "core",
            "crates/core/src/lib.rs",
            "pub fn run() {}\n",
        )];
        let ws = Workspace::new(&files);
        let (cert, _) = certify(&[spec("core", &["run"])], &ws);
        let text = cert.to_json();
        assert!(compare(&cert, &text, true).is_ok());
        // A safe→unsafe regression fails even non-strict.
        let mut worse = cert.clone();
        worse.crates.get_mut("core").unwrap().safe = false;
        worse.crates.get_mut("core").unwrap().reasons.push(Reason {
            detail: "x".into(),
            witness: vec![],
        });
        assert!(compare(&worse, &text, false).is_err());
        // Byte drift without regression fails only under strict.
        let shuffled = text.replace("\"notes\": []", "\"notes\": [ ]");
        assert!(compare(&cert, &shuffled, false).is_ok());
        assert!(compare(&cert, &shuffled, true).is_err());
    }
}
