//! Waiver parsing and lifecycle for the token pass.
//!
//! Two directive forms, both requiring a non-empty `reason=` (which
//! swallows the rest of the parenthesized body, commas included):
//!
//! ```text
//! // simlint: allow(rule[, rule…], reason=why this is sound)
//! // simlint: allow-block(rule[, rule…], lines=N, reason=why)
//! ```
//!
//! `allow` covers its own line and the next — the v1 contract. The
//! `allow-block` form covers its own line and the next `N` lines, so a
//! multi-line construct needs one waiver, not one per line; `lines=0`
//! (a waiver that covers nothing beyond its own comment) is rejected as
//! `bad-waiver`, as is a missing or malformed `lines=`.
//!
//! Waivers are parsed from *plain* comments only; doc comments may show
//! the syntax without enacting it (the lexer never surfaces doc text
//! here). Every waiver tracks which of its rules actually suppressed a
//! finding: a declared rule that never fires inside the covered span is
//! a `stale-waiver` finding, which is how the waiver ledger can only
//! shrink.

use std::collections::BTreeSet;

use crate::rules;
use crate::Finding;

/// One parsed waiver directive.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line of the directive comment.
    pub line: usize,
    /// Rules this waiver may suppress.
    pub rules: Vec<String>,
    /// First covered line (the directive's own), 1-based.
    pub first: usize,
    /// Last covered line, 1-based inclusive.
    pub last: usize,
    /// True for `allow-block`.
    pub block: bool,
}

/// All waivers of one file, with usage tracking for stale detection.
#[derive(Debug, Default)]
pub struct WaiverSet {
    /// Well-formed waivers in line order.
    pub waivers: Vec<Waiver>,
    /// Malformed-waiver findings as (1-based line, message).
    pub bad: Vec<(usize, String)>,
    /// Per waiver: the subset of its rules that suppressed a finding.
    used: Vec<BTreeSet<String>>,
}

impl WaiverSet {
    /// Rebuild a set from previously parsed parts (the incremental-cache
    /// path, where waivers were parsed in an earlier run and serialized).
    pub fn from_parts(waivers: Vec<Waiver>, bad: Vec<(usize, String)>) -> WaiverSet {
        let used = vec![BTreeSet::new(); waivers.len()];
        WaiverSet { waivers, bad, used }
    }

    /// Parse waivers from per-line plain-comment text (0-based index =
    /// line - 1), as produced by [`crate::lexer::lex`].
    pub fn parse(comments: &[String]) -> WaiverSet {
        let mut set = WaiverSet::default();
        for (idx, comment) in comments.iter().enumerate() {
            let line = idx + 1;
            let Some(pos) = comment.find("simlint:") else {
                continue;
            };
            let rest = comment[pos + "simlint:".len()..].trim_start();
            let (block, body) = if let Some(b) = rest.strip_prefix("allow-block(") {
                (true, b)
            } else if let Some(b) = rest.strip_prefix("allow(") {
                (false, b)
            } else {
                set.bad.push((
                    line,
                    "waiver must use `allow(rule, reason=...)` or \
                     `allow-block(rule, lines=N, reason=...)`"
                        .into(),
                ));
                continue;
            };
            let Some(close) = body.find(')') else {
                set.bad
                    .push((line, "unterminated waiver: missing `)`".into()));
                continue;
            };
            let inner = &body[..close];
            // Everything after `reason=` is the reason, commas included;
            // rule names (and `lines=` for blocks) come before it.
            let (head, reason) = match inner.find("reason=") {
                Some(at) => (
                    inner[..at].trim_end_matches([' ', ',']),
                    Some(inner[at + "reason=".len()..].trim().to_string()),
                ),
                None => (inner, None),
            };
            let Some(reason) = reason.filter(|r| !r.is_empty()) else {
                set.bad.push((
                    line,
                    "waiver is missing a non-empty `reason=`: every exception \
                     must say why it is sound"
                        .into(),
                ));
                continue;
            };
            let _ = reason; // recorded implicitly by being present
            let mut names = Vec::new();
            let mut span: Option<usize> = None;
            let mut ok = true;
            for part in head.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                if let Some(n) = part.strip_prefix("lines=") {
                    if !block {
                        set.bad
                            .push((line, "`lines=` is only valid in `allow-block(...)`".into()));
                        ok = false;
                        break;
                    }
                    match n.trim().parse::<usize>() {
                        Ok(0) => {
                            set.bad.push((
                                line,
                                "allow-block with `lines=0` covers nothing; a \
                                 waiver that suppresses nothing is a stale \
                                 waiver by construction"
                                    .into(),
                            ));
                            ok = false;
                            break;
                        }
                        Ok(n) => span = Some(n),
                        Err(_) => {
                            set.bad
                                .push((line, format!("allow-block has unparsable `lines={n}`")));
                            ok = false;
                            break;
                        }
                    }
                } else {
                    names.push(part.to_string());
                }
            }
            if !ok {
                continue;
            }
            if block && span.is_none() {
                set.bad.push((
                    line,
                    "allow-block needs `lines=N` (how many lines past the \
                     directive it covers)"
                        .into(),
                ));
                continue;
            }
            if names.is_empty() {
                set.bad.push((line, "waiver allows no rule".into()));
                continue;
            }
            let mut name_ok = true;
            for name in &names {
                if !rules::RULES.contains(&name.as_str()) {
                    set.bad
                        .push((line, format!("waiver names unknown rule `{name}`")));
                    name_ok = false;
                } else if !rules::waivable(name) {
                    set.bad.push((
                        line,
                        format!("rule `{name}` cannot be waived at a source site"),
                    ));
                    name_ok = false;
                }
            }
            if !name_ok {
                continue;
            }
            let covered = if block { span.unwrap() } else { 1 };
            set.waivers.push(Waiver {
                line,
                rules: names,
                first: line,
                last: line + covered,
                block,
            });
        }
        set.used = vec![BTreeSet::new(); set.waivers.len()];
        set
    }

    /// If some waiver covers `line` (1-based) for `rule`, mark it used
    /// and return true. Hits are distributed: the earliest *unused*
    /// matching waiver takes the hit first, so when two findings of the
    /// same rule land on one covered line, a second overlapping waiver
    /// absorbs the second finding instead of being reported stale. A
    /// waiver that overlaps a span where nothing extra fires still rots
    /// into `stale-waiver`.
    pub fn suppresses(&mut self, line: usize, rule: &str) -> bool {
        let mut covered = false;
        for (i, w) in self.waivers.iter().enumerate() {
            if w.first <= line && line <= w.last && w.rules.iter().any(|r| r == rule) {
                if !self.used[i].contains(rule) {
                    self.used[i].insert(rule.to_string());
                    return true;
                }
                covered = true;
            }
        }
        covered
    }

    /// Mark the earliest unused waiver covering `line` for `rule` as
    /// used *without* suppressing anything. This is how an
    /// interprocedural finding whose sink lives in another file keeps
    /// its source-side waiver alive: the finding is only waivable at the
    /// sink line, but the source file's waiver still documents the
    /// hazard it excuses and must not rot into `stale-waiver`.
    pub fn credit(&mut self, line: usize, rule: &str) {
        for (i, w) in self.waivers.iter().enumerate() {
            if w.first <= line
                && line <= w.last
                && w.rules.iter().any(|r| r == rule)
                && !self.used[i].contains(rule)
            {
                self.used[i].insert(rule.to_string());
                return;
            }
        }
    }

    /// After rule evaluation: one `stale-waiver` finding per waiver that
    /// declares a rule which never fired inside its covered span.
    pub fn stale_findings(&self, rel_path: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, w) in self.waivers.iter().enumerate() {
            let unused: Vec<&str> = w
                .rules
                .iter()
                .filter(|r| !self.used[i].contains(r.as_str()))
                .map(String::as_str)
                .collect();
            if !unused.is_empty() {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: w.line,
                    rule: "stale-waiver",
                    message: format!(
                        "waiver for `{}` suppresses nothing on lines {}-{}; \
                         the hazard it excused is gone, so delete the waiver",
                        unused.join("`, `"),
                        w.first,
                        w.last
                    ),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(lines: &[&str]) -> WaiverSet {
        let comments: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        WaiverSet::parse(&comments)
    }

    #[test]
    fn allow_covers_own_and_next_line() {
        let set = parse(&["simlint: allow(unordered, reason=narrow)", "", ""]);
        assert!(set.bad.is_empty(), "{:?}", set.bad);
        assert_eq!((set.waivers[0].first, set.waivers[0].last), (1, 2));
    }

    #[test]
    fn allow_block_covers_n_lines() {
        let set = parse(&["simlint: allow-block(unordered, lines=3, reason=multi-line literal)"]);
        assert!(set.bad.is_empty(), "{:?}", set.bad);
        assert_eq!((set.waivers[0].first, set.waivers[0].last), (1, 4));
        assert!(set.waivers[0].block);
    }

    #[test]
    fn lines_zero_is_rejected() {
        let set = parse(&["simlint: allow-block(unordered, lines=0, reason=nope)"]);
        assert!(set.waivers.is_empty());
        assert!(set.bad[0].1.contains("lines=0"), "{:?}", set.bad);
    }

    #[test]
    fn allow_block_without_lines_is_rejected() {
        let set = parse(&["simlint: allow-block(unordered, reason=forgot)"]);
        assert!(set.waivers.is_empty());
        assert!(set.bad[0].1.contains("lines=N"), "{:?}", set.bad);
    }

    #[test]
    fn lines_on_plain_allow_is_rejected() {
        let set = parse(&["simlint: allow(unordered, lines=2, reason=wrong form)"]);
        assert!(set.waivers.is_empty());
        assert!(set.bad[0].1.contains("allow-block"), "{:?}", set.bad);
    }

    #[test]
    fn unwaivable_rules_are_rejected() {
        for rule in [
            "stale-waiver",
            "bad-waiver",
            "layer-violation",
            "missing-forbid",
        ] {
            let text = format!("simlint: allow({rule}, reason=try me)");
            let set = parse(&[&text]);
            assert!(set.waivers.is_empty(), "{rule} accepted");
            assert!(set.bad[0].1.contains("cannot be waived"), "{:?}", set.bad);
        }
    }

    #[test]
    fn usage_tracking_feeds_stale_detection() {
        let mut set = parse(&[
            "simlint: allow(unordered, reason=live)",
            "",
            "simlint: allow(unordered, reason=dead)",
        ]);
        assert!(set.suppresses(2, "unordered"));
        let stale = set.stale_findings("x.rs");
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].line, 3);
        assert_eq!(stale[0].rule, "stale-waiver");
    }

    #[test]
    fn multi_rule_waiver_is_stale_per_unused_rule() {
        let mut set = parse(&["simlint: allow(unordered, wall-clock, reason=both)"]);
        assert!(set.suppresses(2, "unordered"));
        let stale = set.stale_findings("x.rs");
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("wall-clock"));
        assert!(!stale[0].message.contains("unordered`"));
    }

    #[test]
    fn stacked_waivers_split_same_rule_hits_on_one_line() {
        // Two findings of the same rule on one line, two waivers both
        // covering it: each waiver absorbs one hit, neither is stale.
        // (Regression: suppresses() used to send every hit to the first
        // matching waiver, leaving the second as a false stale-waiver.)
        let mut set = parse(&[
            "simlint: allow-block(unordered, lines=2, reason=map half)",
            "simlint: allow(unordered, reason=set half)",
        ]);
        assert!(set.suppresses(3, "unordered"));
        assert!(set.suppresses(3, "unordered"));
        assert!(set.stale_findings("x.rs").is_empty());
    }

    #[test]
    fn redundant_waiver_with_a_single_hit_is_still_stale() {
        let mut set = parse(&[
            "simlint: allow-block(unordered, lines=2, reason=live)",
            "simlint: allow(unordered, reason=redundant)",
        ]);
        assert!(set.suppresses(3, "unordered"));
        let stale = set.stale_findings("x.rs");
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].line, 2);
    }

    #[test]
    fn reason_swallows_commas() {
        let set = parse(&["simlint: allow(unordered, reason=keys, never iterated, honest)"]);
        assert!(set.bad.is_empty(), "{:?}", set.bad);
        assert_eq!(set.waivers[0].rules, vec!["unordered"]);
    }
}
