//! Item-graph semantic rules: hook-conformance, shard-isolation, and
//! ledger-pairing.
//!
//! These rules need structure the token pass cannot see — which `fn`s an
//! `impl` defines, what type a `static` holds, where a struct field is
//! debited and credited — so they run on [`crate::items::FileItems`]
//! (and, for ledger-pairing, on per-crate aggregation done by the
//! caller). Scope filtering (layer, `#[cfg(test)]` extents) is the
//! caller's job; everything here is per-file and layer-blind.

use std::collections::BTreeSet;

use crate::dataflow::{binding_split, split_statements};
use crate::items::FileItems;
use crate::lexer::{TokKind, Token};

/// A candidate finding: (1-based line, message). The caller attaches the
/// rule name, file path, and scope filtering.
pub type Candidate = (usize, String);

/// The three failure hooks every `SchedPolicy` impl must define.
const POLICY_HOOKS: &[&str] = &["worker_down", "worker_up", "feedback"];

/// Identifiers proving a resilient assembly wired invariant checking.
const INVARIANT_WIRING: &[&str] = &["checker_for", "close_invariants"];

/// Identifiers proving a resilient assembly wired failure detection.
const DETECTION_WIRING: &[&str] = &["check_health", "on_heartbeat", "heartbeat"];

/// Type identifiers that make a `static` interior-mutable.
pub(crate) const INTERIOR_MUTABLE: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "Lazy",
];

/// Hook-conformance: `impl SchedPolicy` blocks leaning on default no-op
/// failure hooks, and resilient assemblies missing invariant/recovery
/// wiring.
pub fn hook_conformance(toks: &[Token], items: &FileItems) -> Vec<Candidate> {
    let mut out = Vec::new();
    for im in &items.impls {
        if im.trait_name.as_deref() != Some("SchedPolicy") {
            continue;
        }
        let missing: Vec<&str> = POLICY_HOOKS
            .iter()
            .copied()
            .filter(|h| !im.fns.iter().any(|f| f == h))
            .collect();
        if !missing.is_empty() {
            out.push((
                im.line,
                format!(
                    "impl SchedPolicy for `{}` relies on default no-op failure \
                     hooks for `{}`; define them explicitly (an empty body \
                     documents the decision) or waive with a reason",
                    im.type_name,
                    missing.join("`, `")
                ),
            ));
        }
    }
    // A file assembling a resilient system must wire invariants and a
    // failure-detection entry point somewhere in the file.
    let file_idents: BTreeSet<&str> = toks.iter().filter_map(|t| t.kind.ident()).collect();
    for f in &items.fns {
        if f.name != "run_resilient_probed" {
            continue;
        }
        let mut gaps = Vec::new();
        for need in INVARIANT_WIRING {
            if !file_idents.contains(need) {
                gaps.push(format!("`{need}`"));
            }
        }
        if !DETECTION_WIRING.iter().any(|d| file_idents.contains(d)) {
            gaps.push("a failure-detection entry point (`check_health` / heartbeat)".into());
        }
        if !gaps.is_empty() {
            out.push((
                f.line,
                format!(
                    "resilient assembly `run_resilient_probed` does not wire {}; \
                     a probed run without them cannot detect divergence or \
                     worker death",
                    gaps.join(", ")
                ),
            ));
        }
    }
    out.sort();
    out
}

/// Shard-isolation: process-global mutable state and non-`Send`-shaped
/// sharing that would couple future shards invisibly.
pub fn shard_isolation(items: &FileItems) -> Vec<Candidate> {
    let mut out = Vec::new();
    for st in &items.statics {
        if st.mutable {
            out.push((
                st.line,
                format!(
                    "`static mut {}` is process-global mutable state; shards \
                     must not share ambient globals — thread state through \
                     `&mut self`",
                    st.name
                ),
            ));
            continue;
        }
        let interior = st
            .type_idents
            .iter()
            .find(|t| INTERIOR_MUTABLE.contains(&t.as_str()) || t.starts_with("Atomic"));
        if let Some(ty) = interior {
            out.push((
                st.line,
                format!(
                    "static `{}` holds interior-mutable `{ty}`; process-global \
                     mutable state breaks the shard-isolation precondition — \
                     thread state through `&mut self`",
                    st.name
                ),
            ));
        }
    }
    for m in &items.macros {
        if m.name == "thread_local" {
            out.push((
                m.line,
                "`thread_local!` state is invisible to the shard partitioner; \
                 model state must live in the partitioned object graph"
                    .to_string(),
            ));
        }
    }
    for st in &items.structs {
        for f in &st.fields {
            if f.type_idents.iter().any(|t| t == "Rc") {
                out.push((
                    f.line,
                    format!(
                        "field `{}.{}` holds `Rc`-shaped shared ownership, \
                         which is not Send; shards cannot move it across the \
                         partition boundary — use owned state or indices",
                        st.name, f.name
                    ),
                ));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Debit/credit sites of one declared ledger field within one file.
#[derive(Debug, Default, Clone)]
pub struct LedgerSites {
    /// Lines where the field is debited (`+=`, `.insert(`).
    pub debits: Vec<usize>,
    /// Lines where the field is credited (`-=`, `.remove(`, `.clear(`).
    pub credits: Vec<usize>,
}

/// Find debit/credit sites of each declared `fields` entry in this file.
/// Follows `get_mut` aliases within a function body: `if let Some(c) =
/// self.field.get_mut(..)` makes later `*c -= 1` a credit of `field`.
pub fn ledger_sites(toks: &[Token], items: &FileItems, fields: &[String]) -> Vec<LedgerSites> {
    let mut out = vec![LedgerSites::default(); fields.len()];
    for f in &items.fns {
        let stmts = split_statements(toks, f.body.0, f.body.1);
        // alias name → index into `fields`
        let mut aliases: Vec<(String, usize)> = Vec::new();
        for &(s, e) in &stmts {
            let stmt = &toks[s..e];
            if stmt.is_empty() {
                continue;
            }
            // New aliases: a binding whose rhs is `field.get_mut(..)` or
            // `field.entry(..)`.
            if let Some((lhs, rhs_at)) = binding_split(stmt) {
                let rhs = &stmt[rhs_at..];
                for (fi, field) in fields.iter().enumerate() {
                    let aliased = rhs.windows(3).any(|w| {
                        w[0].kind.ident() == Some(field.as_str())
                            && w[1].kind == TokKind::Punct('.')
                            && matches!(w[2].kind.ident(), Some("get_mut" | "entry"))
                    });
                    if aliased {
                        for name in &lhs {
                            aliases.push((name.clone(), fi));
                        }
                    }
                }
            }
            for (fi, field) in fields.iter().enumerate() {
                let names: Vec<&str> = std::iter::once(field.as_str())
                    .chain(
                        aliases
                            .iter()
                            .filter(|(_, i)| *i == fi)
                            .map(|(n, _)| n.as_str()),
                    )
                    .collect();
                let mentions = stmt
                    .iter()
                    .any(|t| t.kind.ident().is_some_and(|s| names.contains(&s)));
                if !mentions {
                    continue;
                }
                let line = stmt[0].line;
                if has_compound(stmt, '+') || has_field_method(stmt, field, &["insert"]) {
                    out[fi].debits.push(line);
                }
                if has_compound(stmt, '-')
                    || has_field_method(stmt, field, &["remove", "clear", "take"])
                {
                    out[fi].credits.push(line);
                }
            }
        }
    }
    for s in &mut out {
        s.debits.sort_unstable();
        s.debits.dedup();
        s.credits.sort_unstable();
        s.credits.dedup();
    }
    out
}

/// `op=` appears as adjacent tokens anywhere in the statement.
fn has_compound(stmt: &[Token], op: char) -> bool {
    stmt.windows(2)
        .any(|w| w[0].kind == TokKind::Punct(op) && w[1].kind == TokKind::Punct('='))
}

/// `field.method(` for any of `methods`.
fn has_field_method(stmt: &[Token], field: &str, methods: &[&str]) -> bool {
    stmt.windows(4).any(|w| {
        w[0].kind.ident() == Some(field)
            && w[1].kind == TokKind::Punct('.')
            && w[2].kind.ident().is_some_and(|m| methods.contains(&m))
            && w[3].kind == TokKind::Punct('(')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn over(src: &str) -> (Vec<Token>, FileItems) {
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        (lexed.tokens, items)
    }

    #[test]
    fn policy_impl_missing_hooks_fires_once_with_all_names() {
        let src = "\
impl SchedPolicy for Fcfs {
    fn init(&mut self) {}
    fn worker_down(&mut self, now: SimTime, w: usize) {}
}
";
        let (toks, items) = over(src);
        let out = hook_conformance(&toks, &items);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].0, 1);
        assert!(out[0].1.contains("`worker_up`, `feedback`"), "{}", out[0].1);
    }

    #[test]
    fn conformant_policy_impl_is_clean() {
        let src = "\
impl SchedPolicy for Srpt {
    fn feedback(&mut self, now: SimTime, ev: &FeedbackEvent) {}
    fn worker_down(&mut self, now: SimTime, w: usize) {}
    fn worker_up(&mut self, now: SimTime, w: usize) {}
}
";
        let (toks, items) = over(src);
        assert!(hook_conformance(&toks, &items).is_empty());
    }

    #[test]
    fn bare_resilient_assembly_fires() {
        let src = "\
fn run_resilient_probed(cfg: &Config) -> Summary {
    run_plain(cfg)
}
";
        let (toks, items) = over(src);
        let out = hook_conformance(&toks, &items);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.contains("checker_for"), "{}", out[0].1);
    }

    #[test]
    fn wired_resilient_assembly_is_clean() {
        let src = "\
fn run_resilient_probed(cfg: &Config) -> Summary {
    let checker = checker_for(cfg);
    detector.check_health(now);
    checker.close_invariants();
    summary
}
";
        let (toks, items) = over(src);
        assert!(hook_conformance(&toks, &items).is_empty());
    }

    #[test]
    fn global_mutable_statics_fire_and_plain_ones_do_not() {
        let src = "\
static LIMIT: u64 = 8;
static NAME: &'static str = \"x\";
static HITS: AtomicU64 = AtomicU64::new(0);
static mut RAW: u64 = 0;
static REG: Mutex<Vec<u64>> = Mutex::new(Vec::new());
thread_local! { static TLS: Cell<u64> = Cell::new(0); }
";
        let (_, items) = over(src);
        let out = shard_isolation(&items);
        let lines: Vec<usize> = out.iter().map(|c| c.0).collect();
        // AtomicU64, static mut, Mutex, thread_local! (and its inner
        // Cell static) — but not LIMIT or NAME.
        assert!(lines.contains(&3) && lines.contains(&4) && lines.contains(&5));
        assert!(lines.contains(&6));
        assert!(!lines.contains(&1) && !lines.contains(&2), "{out:?}");
    }

    #[test]
    fn rc_fields_fire_and_owned_fields_do_not() {
        let src = "\
struct Shared {
    cache: Rc<RefCell<u64>>,
    owned: BTreeMap<u64, u64>,
}
";
        let (_, items) = over(src);
        let out = shard_isolation(&items);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.contains("Shared.cache"), "{}", out[0].1);
    }

    #[test]
    fn ledger_debits_and_credits_are_paired_through_aliases() {
        let src = "\
impl Dispatcher {
    fn issue(&mut self, key: u64) {
        *self.reclaimed.entry(key).or_insert(0) += 1;
        self.in_flight.insert(key, 1);
    }
    fn settle(&mut self, key: u64) {
        if let Some(c) = self.reclaimed.get_mut(&key) {
            *c -= 1;
        }
        self.in_flight.remove(&key);
    }
}
";
        let (toks, items) = over(src);
        let fields = vec!["reclaimed".to_string(), "in_flight".to_string()];
        let sites = ledger_sites(&toks, &items, &fields);
        assert!(!sites[0].debits.is_empty(), "{sites:?}");
        assert!(!sites[0].credits.is_empty(), "{sites:?}");
        assert!(!sites[1].debits.is_empty(), "{sites:?}");
        assert!(!sites[1].credits.is_empty(), "{sites:?}");
    }

    #[test]
    fn unmatched_debit_has_no_credit_site() {
        let src = "\
impl Dispatcher {
    fn issue(&mut self, key: u64) {
        *self.leaked.entry(key).or_insert(0) += 1;
    }
}
";
        let (toks, items) = over(src);
        let fields = vec!["leaked".to_string()];
        let sites = ledger_sites(&toks, &items, &fields);
        assert!(!sites[0].debits.is_empty());
        assert!(sites[0].credits.is_empty(), "{sites:?}");
    }
}
