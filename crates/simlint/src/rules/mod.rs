//! The rule registry — the single source of truth for every rule simlint
//! knows, and the modules that implement them.
//!
//! Everything that *describes* a rule derives from [`TABLE`]: the
//! `--list-rules` and `--explain` CLI output, the generated markdown
//! table in `RULES.md` (included into the crate docs and mirrored in the
//! repository README between `<!-- simlint-rules:begin/end -->`
//! markers), and the set of names a waiver may reference. A test
//! (`tests/docs_sync.rs`) renders [`TABLE`] to markdown and fails if
//! `RULES.md` or the README drifted.

pub mod semantic;
pub mod tokens;
pub mod waivers;

/// One rule's description, scope, and remediation text.
#[derive(Debug, Clone, Copy)]
pub struct RuleSpec {
    /// Stable rule name, as used in findings and waivers.
    pub name: &'static str,
    /// Where the rule applies, in one phrase.
    pub scope: &'static str,
    /// What trips it, in one phrase (markdown).
    pub fires_on: &'static str,
    /// The longer story for `--explain`: why the hazard matters and what
    /// to do instead.
    pub detail: &'static str,
    /// Whether a source-level `allow(...)` waiver may suppress it.
    pub waivable: bool,
}

/// Every rule simlint knows, in listing order.
pub const TABLE: &[RuleSpec] = &[
    RuleSpec {
        name: "unordered",
        scope: "core + model crates",
        fires_on: "`HashMap` / `HashSet`, including aliased imports",
        detail: "Hash containers iterate in hasher order, which is randomized \
                 per process: any iteration that feeds simulation state or \
                 output breaks bit-for-bit reproducibility. Use BTreeMap / \
                 BTreeSet. The token pass resolves `use … as` aliases, so \
                 `use std::collections::HashMap as Fast;` still fires, and a \
                 local type that merely shares the name does not.",
        waivable: true,
    },
    RuleSpec {
        name: "wall-clock",
        scope: "everywhere but harness `src/bin/`; test-only code exempt",
        fires_on: "`Instant`, `SystemTime`, `UNIX_EPOCH` (alias-aware)",
        detail: "The wall clock differs across runs and machines; simulated \
                 time must come from the engine clock. Harness binaries \
                 (`crates/*/src/bin/` of a `harness`-layer crate) time real \
                 builds and are exempt, as is `#[cfg(test)]`-gated code and \
                 `tests/` directories, where timing assertions cannot touch \
                 model state.",
        waivable: true,
    },
    RuleSpec {
        name: "ambient-rng",
        scope: "everywhere but harness `src/bin/`",
        fires_on: "`thread_rng`, `rand::random`, `from_entropy`, `OsRng`",
        detail: "Ambient entropy makes two identically-seeded runs diverge. \
                 All randomness must come from seeded sim_core::Rng streams, \
                 in tests included — a flaky seed is a flaky test.",
        waivable: true,
    },
    RuleSpec {
        name: "host-thread",
        scope: "every crate whose layer is not `harness`",
        fires_on: "`std::thread` (alias-aware), `thread::spawn` / `scope`",
        detail: "One simulation is one deterministic sequential event loop; \
                 OS threads inside a model would race it. Only crates whose \
                 manifest declares `[package.metadata.simlint] layer = \
                 \"harness\"` (experiments, bench) may fan *independent* \
                 simulations across threads. The allowed set is read from \
                 crate metadata, not a hand-maintained path list.",
        waivable: true,
    },
    RuleSpec {
        name: "float-sort",
        scope: "everywhere",
        fires_on: "`sort_by*` whose arguments contain `partial_cmp`",
        detail: "Float sorts via partial_cmp panic on NaN and invite \
                 platform-dependent totalization; sort on integer keys \
                 (nanoseconds) instead. The token pass matches the whole \
                 argument list, so splitting the closure across lines no \
                 longer hides it.",
        waivable: true,
    },
    RuleSpec {
        name: "time-float-cast",
        scope: "core + model crates, non-test code",
        fires_on: "bare `as` casts between u64 time and floats",
        detail: "A bare `as` cast between nanosecond counts and floats loses \
                 precision silently. Go through SimDuration's *_f64 \
                 constructors/accessors, which round explicitly at one \
                 audited boundary.",
        waivable: true,
    },
    RuleSpec {
        name: "unsafe-code",
        scope: "everywhere",
        fires_on: "the `unsafe` keyword",
        detail: "The workspace promises #![forbid(unsafe_code)] everywhere; \
                 the simulation has no business touching raw memory.",
        waivable: true,
    },
    RuleSpec {
        name: "missing-forbid",
        scope: "every crate root",
        fires_on: "`src/lib.rs` without `#![forbid(unsafe_code)]`",
        detail: "Every crate root must carry the forbid attribute so the \
                 guarantee survives even if the Cargo-level lint table is \
                 edited away.",
        waivable: false,
    },
    RuleSpec {
        name: "layer-violation",
        scope: "crate manifests (the workspace dependency graph)",
        fires_on: "an edge that breaks the architecture DAG, or missing \
                   `layer` metadata",
        detail: "Each crate declares its architectural layer in \
                 `[package.metadata.simlint]`: core (sim-core) depends on no \
                 internal crate; model crates may depend on core + model; \
                 harness crates (experiments, bench) on anything below; the \
                 root app on all of those; the tool layer (simlint) stands \
                 alone. Model crates can never depend on harness crates, the \
                 graph must stay acyclic, and every crate must declare a \
                 layer. Manifest findings cannot be waived in source.",
        waivable: false,
    },
    RuleSpec {
        name: "bad-waiver",
        scope: "everywhere",
        fires_on: "a malformed waiver: missing `reason=`, unknown or \
                   unwaivable rule, `lines=0`",
        detail: "Every exception must say why it is sound. `allow(rule, \
                 reason=…)` covers its line and the next; `allow-block(rule, \
                 lines=N, reason=…)` covers its line and the next N (N ≥ 1). \
                 Waivers naming bad-waiver, stale-waiver, layer-violation or \
                 missing-forbid are themselves findings.",
        waivable: false,
    },
    RuleSpec {
        name: "stale-waiver",
        scope: "everywhere",
        fires_on: "a waiver whose rule never fires on its covered lines",
        detail: "A waiver that suppresses nothing is debt pretending to be \
                 documentation: the hazard it excused is gone, so the waiver \
                 must go too. This is what lets the waiver ledger only \
                 shrink — the baseline gate (`--compare`) rejects growth, \
                 and stale-waiver rejects leftovers.",
        waivable: false,
    },
    RuleSpec {
        name: "determinism-taint",
        scope: "core + model crates, non-test code",
        fires_on: "a nondeterministic value flowing into an \
                   ordering-sensitive sink",
        detail: "The dataflow pass tracks values from nondeterminism \
                 sources — iteration over unordered containers, \
                 pointer/address casts (ASLR), float-keyed comparisons, \
                 unseeded RNG — through let bindings, assignments, for/if-let \
                 patterns, and function returns, into sinks where ordering \
                 escapes into simulation state or output: comparator sorts, \
                 event-queue schedule calls, inserts into ordered or \
                 queue-shaped receivers, and probe/CSV emission. Since v4 the \
                 pass is interprocedural across the whole workspace: a \
                 cross-file, cross-crate call graph with SCC condensation and \
                 bottom-up summaries resolves taint through any call chain \
                 (`use`-aliased paths and impl methods included), and a \
                 cross-file finding names its source site and is waivable at \
                 the *sink* line only — the source-side waiver is credited so \
                 it does not rot into stale-waiver. Unlike the token rules \
                 this flags *flows*, not mentions: a HashMap used only for \
                 membership tests is fine; its keys() feeding a sort key is \
                 not.",
        waivable: true,
    },
    RuleSpec {
        name: "hook-conformance",
        scope: "model crates, non-test code",
        fires_on: "an `impl SchedPolicy` leaning on default no-op failure \
                   hooks, or a resilient assembly missing its wiring",
        detail: "SchedPolicy's `worker_down` / `worker_up` / `feedback` \
                 default to no-ops, so a policy can silently ignore failure \
                 signals and keep dispatching to dead workers. Every impl \
                 must define all three — an explicit empty body documents \
                 the decision — or carry a waiver saying why not. Files \
                 assembling a resilient system (`fn run_resilient_probed`) \
                 must also wire invariant checking (`checker_for` + \
                 `close_invariants`) and a failure-detection entry point \
                 (`check_health` / heartbeat), or waive the gap.",
        waivable: true,
    },
    RuleSpec {
        name: "shard-isolation",
        scope: "core + model crates, non-test code",
        fires_on: "`static` items with interior mutability, `static mut`, \
                   `thread_local!`, `Rc`-shaped struct fields",
        detail: "The planned intra-run sharding work partitions model state \
                 across workers; any process-global mutable state (statics \
                 holding Mutex/RefCell/Cell/atomics, `static mut`, \
                 thread-local storage) or non-Send shared ownership (`Rc` \
                 fields) would couple shards invisibly and break the \
                 partition proof. This rule is the machine-checked \
                 precondition: model state must reach code through `&mut \
                 self`, never through ambient globals.",
        waivable: true,
    },
    RuleSpec {
        name: "ledger-pairing",
        scope: "crates declaring `ledger = [\"field\", …]` metadata",
        fires_on: "a declared exactly-once ledger field with debits but no \
                   credits (or vice versa), or never touched at all",
        detail: "Recovery correctness rests on exactly-once ledgers: every \
                 increment (debit) of a declared field must have a matching \
                 decrement/removal site (credit) somewhere in the crate, \
                 else retries double-count or leak. Declare the audited \
                 fields in `[package.metadata.simlint] ledger = [\"name\"]`; \
                 the pass finds `+=`/`insert` debits and `-=`/`remove`/\
                 `clear` credits, following `get_mut` aliases within a \
                 function. Manifest-declared obligations cannot be waived \
                 at a source site.",
        waivable: false,
    },
    RuleSpec {
        name: "shard-cert",
        scope: "crates declaring `shard_roots = [\"Type::method\", …]` metadata",
        fires_on: "a declared shard entry point that resolves to no \
                   function in the crate",
        detail: "The shard-safety certification pass proves everything \
                 reachable from a crate's declared entry points \
                 (`[package.metadata.simlint] shard_roots`) touches only \
                 shard-local state — no `static mut`, `thread_local!`, or \
                 interior-mutable static writes, no ambient RNG — walking \
                 the workspace call graph and recording per-crate verdicts \
                 with witness paths in `SHARD_SAFETY.json`, the build-time \
                 gate the future partitioned engine consumes (ROADMAP open \
                 item 2). A root that resolves to nothing certifies \
                 nothing, so it is a finding on the declaring manifest; \
                 like every manifest-declared obligation it cannot be \
                 waived at a source site.",
        waivable: false,
    },
];

/// Every rule name, in listing order (derived from [`TABLE`]).
pub const RULES: &[&str] = &[
    "unordered",
    "wall-clock",
    "ambient-rng",
    "host-thread",
    "float-sort",
    "time-float-cast",
    "unsafe-code",
    "missing-forbid",
    "layer-violation",
    "bad-waiver",
    "stale-waiver",
    "determinism-taint",
    "hook-conformance",
    "shard-isolation",
    "ledger-pairing",
    "shard-cert",
];

/// Look up one rule's spec by name.
pub fn spec(name: &str) -> Option<&'static RuleSpec> {
    TABLE.iter().find(|r| r.name == name)
}

/// True when `name` is a rule that a source-level waiver may suppress.
pub fn waivable(name: &str) -> bool {
    spec(name).is_some_and(|r| r.waivable)
}

/// Render the rule table as the markdown checked into `RULES.md` and the
/// README. One source of truth: this function.
pub fn render_rules_table() -> String {
    let mut out = String::from("| rule | scope | fires on |\n|------|-------|----------|\n");
    for r in TABLE {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            r.name,
            r.scope,
            r.fires_on.replace('\n', " ")
        ));
    }
    out
}

/// Render the full `RULES.md` document body.
pub fn render_rules_doc() -> String {
    let mut out = String::from(
        "## Rules\n\nGenerated from `simlint::rules::TABLE` — edit the table, \
         not this file, then run `cargo run -p simlint -- --write-rules-doc`.\n\n",
    );
    out.push_str(&render_rules_table());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_list_matches_table() {
        let from_table: Vec<&str> = TABLE.iter().map(|r| r.name).collect();
        assert_eq!(RULES, from_table.as_slice());
    }

    #[test]
    fn every_rule_explains_itself() {
        for r in TABLE {
            assert!(!r.detail.is_empty(), "{} has no detail", r.name);
            assert!(spec(r.name).is_some());
        }
    }

    #[test]
    fn meta_rules_are_not_waivable() {
        for name in [
            "bad-waiver",
            "stale-waiver",
            "layer-violation",
            "missing-forbid",
        ] {
            assert!(!waivable(name), "{name} must not be waivable");
        }
        assert!(waivable("unordered"));
    }
}
