//! The v2 token-stream analyzer: alias-aware determinism rules over the
//! lexer's output.
//!
//! Where the legacy pass greps scrubbed lines, this pass works on real
//! tokens and a little name resolution per file:
//!
//! * **Imports** — every `use` declaration is parsed into bindings
//!   (`use std::collections::HashMap as Fast;` binds `Fast` →
//!   `std::collections::HashMap`), so an aliased hazard still fires and
//!   a re-export (`pub use`) is caught at the declaration.
//! * **Local definitions** — `struct Instant` (or enum/trait/type/fn/…)
//!   defined in the file shadows the hazard name: uses of a same-named
//!   local type are not findings. This is the class of false positive a
//!   lexical grep cannot avoid.
//! * **`#[cfg(test)]` spans** — attributes are matched to the item they
//!   gate (brace-matched through the token stream), and test-only code
//!   (plus `tests/` directories) relaxes `wall-clock` and
//!   `time-float-cast`: timing assertions in tests cannot touch model
//!   state. Everything else (`unordered`, `ambient-rng`, `host-thread`,
//!   `unsafe-code`, `float-sort`) still applies in tests — a flaky test
//!   is a bug too.
//! * **Multi-token matching** — `float-sort` scans the whole argument
//!   list of a `sort_by*` call, so a closure split across lines no
//!   longer hides `partial_cmp`.
//!
//! Rule *scoping* comes from the workspace graph ([`crate::graph`]):
//! the crate's declared layer decides whether `unordered`/
//! `time-float-cast` apply (core + model), whether `host-thread` applies
//! (every layer but harness), and whether `src/bin/` files may read the
//! wall clock (harness only). No hand-maintained path lists.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::Layer;
use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::rules::waivers::{Waiver, WaiverSet};
use crate::Finding;

/// Per-file lint context, derived from the workspace graph.
#[derive(Debug, Clone, Copy)]
pub struct FileCtx {
    /// The owning crate's architectural layer.
    pub layer: Layer,
    /// True for `src/bin/` files of a harness-layer crate (drivers that
    /// time real builds with the wall clock).
    pub harness_bin: bool,
    /// True when the file lives in a `tests/` directory.
    pub tests_dir: bool,
}

impl FileCtx {
    /// Build a context for `rel_path` given the owning crate's layer.
    pub fn new(layer: Layer, rel_path: &str) -> FileCtx {
        let in_bin = rel_path.contains("/src/bin/");
        let tests_dir = rel_path.starts_with("tests/") || rel_path.contains("/tests/");
        FileCtx {
            layer,
            harness_bin: layer == Layer::Harness && in_bin,
            tests_dir,
        }
    }
}

/// The result of analyzing one file.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings after waiver suppression, sorted by (line, rule).
    pub findings: Vec<Finding>,
    /// Well-formed waivers declared in the file (for the ledger).
    pub waivers: Vec<Waiver>,
}

/// Pre-waiver scan state for one file: the token-pass candidate findings
/// plus everything a later pass (the v3 semantic rules) needs to add its
/// own candidates before waivers are applied once, at the end.
pub(crate) struct Scan {
    /// Candidate findings, pre-waiver, in emission order.
    pub(crate) candidates: Vec<Finding>,
    /// Parsed waivers with usage tracking not yet consumed.
    pub(crate) wset: WaiverSet,
    /// The lexed file, for item-level passes.
    pub(crate) lexed: Lexed,
    /// Per-line `#[cfg(test)]` / tests-dir extents (index = 1-based line).
    pub(crate) test_lines: Vec<bool>,
}

/// Analyze one file with the token pass (the frozen v2 behavior).
pub fn analyze_source(ctx: FileCtx, rel_path: &str, source: &str) -> Analysis {
    let scan = scan_source(ctx, rel_path, source);
    finalize(rel_path, scan.candidates, scan.wset)
}

/// Run the token rules, producing pre-waiver candidates.
pub(crate) fn scan_source(ctx: FileCtx, rel_path: &str, source: &str) -> Scan {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let wset = WaiverSet::parse(&lexed.comments);

    let bindings = collect_bindings(toks);
    let defs = collect_defs(toks);
    let test_lines = collect_test_lines(ctx, toks, lexed.lines);
    let lines = collect_line_info(toks, lexed.lines);

    // Candidate findings keyed for dedupe: (line, rule, display name).
    let mut seen: BTreeSet<(usize, &'static str, String)> = BTreeSet::new();
    let mut candidates: Vec<Finding> = Vec::new();
    let mut push = |line: usize, rule: &'static str, name: String, message: String| {
        if seen.insert((line, rule, name)) {
            candidates.push(Finding {
                file: rel_path.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    let model_scope = matches!(ctx.layer, Layer::Core | Layer::Model);

    // --- Path-chain rules: unordered / wall-clock / ambient-rng / host-thread.
    for chain in collect_chains(toks) {
        let root = &chain.segs[0];
        let (canon, via_alias) = match bindings.get(root.1.as_str()) {
            Some(path) => {
                let mut canon: Vec<String> = path.clone();
                canon.extend(chain.segs[1..].iter().map(|(_, s)| s.clone()));
                // Alias display only when the binding renamed the item.
                let renamed = path.last().is_some_and(|l| l != &root.1);
                (canon, renamed.then(|| root.1.clone()))
            }
            None if defs.contains(root.1.as_str()) => continue, // local shadow
            None => (chain.segs.iter().map(|(_, s)| s.clone()).collect(), None),
        };
        if matches!(canon[0].as_str(), "crate" | "super" | "self") {
            continue; // crate-local path, not a std hazard
        }
        let seg_line = |i: usize| {
            chain
                .segs
                .get(i)
                .or_else(|| chain.segs.last())
                .map(|(l, _)| *l)
                .unwrap_or(chain.line)
        };
        for (i, seg) in canon.iter().enumerate() {
            // Segments inherited from a binding sit on the use line; the
            // chain's own tokens carry their real lines.
            let extra = canon.len() - chain.segs.len();
            let line = if i < extra {
                chain.line
            } else {
                seg_line(i - extra)
            };
            let display = |seg: &str| match &via_alias {
                Some(a) => format!("{a} (aliasing {seg})"),
                None => seg.to_string(),
            };
            if model_scope && matches!(seg.as_str(), "HashMap" | "HashSet") {
                push(
                    line,
                    "unordered",
                    display(seg),
                    format!(
                        "{} iterates in hasher order, which is not stable across \
                         runs; use BTreeMap/BTreeSet or waive with \
                         `// simlint: allow(unordered, reason=...)`",
                        display(seg)
                    ),
                );
            }
            if !ctx.harness_bin
                && !test_lines[line]
                && matches!(seg.as_str(), "Instant" | "SystemTime" | "UNIX_EPOCH")
            {
                push(
                    line,
                    "wall-clock",
                    display(seg),
                    format!(
                        "{} reads the wall clock, which differs across runs and \
                         machines; simulated time must come from the engine clock",
                        display(seg)
                    ),
                );
            }
            if !ctx.harness_bin {
                if matches!(seg.as_str(), "thread_rng" | "from_entropy" | "OsRng") {
                    push(
                        line,
                        "ambient-rng",
                        display(seg),
                        format!(
                            "{} draws from ambient entropy; all randomness must \
                             come from seeded sim_core::Rng streams",
                            display(seg)
                        ),
                    );
                }
                if seg == "rand" && canon.get(i + 1).is_some_and(|s| s == "random") {
                    push(
                        line,
                        "ambient-rng",
                        "rand::random".into(),
                        "rand::random draws from ambient entropy; all randomness \
                         must come from seeded sim_core::Rng streams"
                            .into(),
                    );
                }
            }
            if ctx.layer != Layer::Harness {
                let std_thread = seg == "std" && canon.get(i + 1).is_some_and(|s| s == "thread");
                let bare_thread = seg == "thread"
                    && canon
                        .get(i + 1)
                        .is_some_and(|s| matches!(s.as_str(), "spawn" | "scope"));
                if std_thread || bare_thread {
                    push(
                        line,
                        "host-thread",
                        "std::thread".into(),
                        "std::thread puts OS threads inside the simulation; models \
                         run on one deterministic event loop, and only crates whose \
                         manifest declares layer = \"harness\" may fan independent \
                         runs across threads"
                            .into(),
                    );
                }
            }
        }
    }

    // --- float-sort: sort_by* whose argument list mentions partial_cmp.
    for k in 0..toks.len() {
        let Some(name) = toks[k].kind.ident() else {
            continue;
        };
        if !matches!(
            name,
            "sort_by"
                | "sort_unstable_by"
                | "sort_by_key"
                | "sort_unstable_by_key"
                | "sort_by_cached_key"
        ) {
            continue;
        }
        if toks.get(k + 1).map(|t| &t.kind) != Some(&TokKind::Punct('(')) {
            continue;
        }
        let mut depth = 0i32;
        for t in &toks[k + 1..] {
            match &t.kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident(id) if id == "partial_cmp" => {
                    push(
                        toks[k].line,
                        "float-sort",
                        name.to_string(),
                        "float sort via partial_cmp panics on NaN and invites \
                         platform-dependent totalization; sort on integer keys \
                         (e.g. nanoseconds) instead"
                            .into(),
                    );
                    break;
                }
                _ => {}
            }
        }
    }

    // --- unsafe-code: the keyword itself.
    for t in toks {
        if t.kind.ident() == Some("unsafe") {
            push(
                t.line,
                "unsafe-code",
                "unsafe".into(),
                "unsafe block in a workspace that promises #![forbid(unsafe_code)] \
                 everywhere; the simulation has no business touching raw memory"
                    .into(),
            );
        }
    }

    // --- time-float-cast: per-line time context × float cast.
    if model_scope {
        for (idx, li) in lines.iter().enumerate() {
            let line = idx + 1;
            if test_lines[line] {
                continue;
            }
            let time_ctx = li.idents.iter().any(|s| {
                matches!(
                    s.as_str(),
                    "SimTime" | "SimDuration" | "as_nanos" | "from_nanos"
                ) || s.ends_with("_ns")
            });
            if !time_ctx {
                continue;
            }
            let float_cast = li.casts.iter().any(|c| c == "f64" || c == "f32")
                || (li.casts.iter().any(|c| c == "u64")
                    && (li.methods.iter().any(|m| m == "round" || m == "mean")
                        || li.idents.iter().any(|s| s.contains("f64"))
                        || li.float_num));
            if float_cast {
                push(
                    line,
                    "time-float-cast",
                    "as-cast".into(),
                    "bare `as` cast between u64 time and float loses nanoseconds \
                     silently; go through SimDuration's *_f64 \
                     constructors/accessors or waive with a reason"
                        .into(),
                );
            }
        }
    }

    Scan {
        candidates,
        wset,
        lexed,
        test_lines,
    }
}

/// Apply waivers to the accumulated candidates and emit bad/stale
/// waiver findings. Runs once, after every pass contributed candidates,
/// so a waiver for a semantic rule is never falsely reported stale.
pub(crate) fn finalize(
    rel_path: &str,
    mut candidates: Vec<Finding>,
    mut wset: WaiverSet,
) -> Analysis {
    candidates.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    let mut findings: Vec<Finding> = Vec::new();
    for cand in candidates {
        if !wset.suppresses(cand.line, cand.rule) {
            findings.push(cand);
        }
    }
    for (line, msg) in &wset.bad {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: *line,
            rule: "bad-waiver",
            message: msg.clone(),
        });
    }
    findings.extend(wset.stale_findings(rel_path));
    findings.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    Analysis {
        findings,
        waivers: wset.waivers,
    }
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

struct Chain {
    /// (line, segment) pairs in path order.
    segs: Vec<(usize, String)>,
    /// Line of the first segment.
    line: usize,
}

/// Extract maximal `a::b::c` identifier chains. An identifier directly
/// following the `as` keyword is skipped: it is either a cast target
/// (handled by the per-line cast info) or a `use … as alias` name, whose
/// hazard — if any — is carried by the imported path on the same line.
fn collect_chains(toks: &[Token]) -> Vec<Chain> {
    let mut chains = Vec::new();
    let mut k = 0;
    while k < toks.len() {
        let is_ident = matches!(toks[k].kind, TokKind::Ident(_));
        if !is_ident {
            k += 1;
            continue;
        }
        if k > 0 && toks[k - 1].kind.ident() == Some("as") {
            k += 1;
            continue;
        }
        let mut segs = vec![(toks[k].line, toks[k].kind.ident().unwrap().to_string())];
        let mut j = k + 1;
        while j + 2 < toks.len()
            && toks[j].kind == TokKind::Punct(':')
            && toks[j + 1].kind == TokKind::Punct(':')
            && matches!(toks[j + 2].kind, TokKind::Ident(_))
        {
            segs.push((
                toks[j + 2].line,
                toks[j + 2].kind.ident().unwrap().to_string(),
            ));
            j += 3;
        }
        let line = segs[0].0;
        chains.push(Chain { segs, line });
        k = j;
    }
    chains
}

/// Parse every `use` declaration into name → full-path bindings. Shared
/// with the interprocedural call-graph builder, which resolves a plain
/// call through the same alias table the token rules use.
pub(crate) fn collect_bindings(toks: &[Token]) -> BTreeMap<String, Vec<String>> {
    let mut bindings = BTreeMap::new();
    let mut k = 0;
    while k < toks.len() {
        if toks[k].kind.ident() == Some("use") {
            k = parse_use_tree(toks, k + 1, &Vec::new(), &mut bindings);
        } else {
            k += 1;
        }
    }
    bindings
}

/// Parse one use-tree starting at `i`; returns the index just past it.
fn parse_use_tree(
    toks: &[Token],
    mut i: usize,
    prefix: &[String],
    bindings: &mut BTreeMap<String, Vec<String>>,
) -> usize {
    let mut segs: Vec<String> = prefix.to_vec();
    let mut glob = false;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Ident(s) if s == "as" => {
                // Alias: bind the alias name to the accumulated path.
                if let Some(TokKind::Ident(alias)) = toks.get(i + 1).map(|t| &t.kind) {
                    bindings.insert(alias.clone(), normalize(&segs));
                    i += 2;
                } else {
                    i += 1;
                }
                // Skip to the tree boundary.
                while i < toks.len() && !matches!(toks[i].kind, TokKind::Punct(',' | '}' | ';')) {
                    i += 1;
                }
                return finish_tree(toks, i);
            }
            TokKind::Ident(s) => {
                segs.push(s.clone());
                i += 1;
            }
            TokKind::Punct(':') => i += 1,
            TokKind::Punct('*') => {
                glob = true;
                i += 1;
            }
            TokKind::Punct('{') => {
                i += 1;
                loop {
                    i = parse_use_tree(toks, i, &segs, bindings);
                    match toks.get(i).map(|t| &t.kind) {
                        Some(TokKind::Punct(',')) => i += 1,
                        Some(TokKind::Punct('}')) => {
                            i += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                return finish_tree(toks, i);
            }
            TokKind::Punct(',' | '}' | ';') => break,
            _ => i += 1,
        }
    }
    if !glob && segs.len() > prefix.len() {
        let path = normalize(&segs);
        if let Some(name) = path.last().cloned() {
            bindings.insert(name, path);
        }
    } else if !glob && segs.len() == prefix.len() && !segs.is_empty() {
        // `self` inside a group collapsed to the prefix itself.
        let path = normalize(&segs);
        if let Some(name) = path.last().cloned() {
            bindings.insert(name, path);
        }
    }
    finish_tree(toks, i)
}

/// Drop a trailing `self` segment (`use a::b::{self}` binds `b`).
fn normalize(segs: &[String]) -> Vec<String> {
    let mut path = segs.to_vec();
    if path.last().is_some_and(|s| s == "self") {
        path.pop();
    }
    path
}

fn finish_tree(toks: &[Token], i: usize) -> usize {
    // Leave terminators for the caller, but consume a statement-ending
    // semicolon so the outer loop moves on.
    if toks.get(i).map(|t| &t.kind) == Some(&TokKind::Punct(';')) {
        i + 1
    } else {
        i
    }
}

/// Names of items defined in this file (struct/enum/trait/type/fn/…),
/// which shadow same-named std hazards.
fn collect_defs(toks: &[Token]) -> BTreeSet<String> {
    let mut defs = BTreeSet::new();
    for k in 0..toks.len() {
        let Some(kw) = toks[k].kind.ident() else {
            continue;
        };
        if matches!(
            kw,
            "struct" | "enum" | "trait" | "union" | "type" | "fn" | "mod" | "const" | "static"
        ) {
            if let Some(TokKind::Ident(name)) = toks.get(k + 1).map(|t| &t.kind) {
                defs.insert(name.clone());
            }
        }
    }
    defs
}

/// Per-line token aggregates for the line-scoped `time-float-cast` rule.
#[derive(Default)]
struct LineInfo {
    idents: Vec<String>,
    methods: Vec<String>,
    casts: Vec<String>,
    float_num: bool,
}

fn collect_line_info(toks: &[Token], nlines: usize) -> Vec<LineInfo> {
    let mut lines: Vec<LineInfo> = (0..nlines + 1).map(|_| LineInfo::default()).collect();
    for k in 0..toks.len() {
        let line = toks[k].line;
        let Some(li) = lines.get_mut(line - 1) else {
            continue;
        };
        match &toks[k].kind {
            TokKind::Ident(s) => {
                li.idents.push(s.clone());
                if k > 0 && toks[k - 1].kind == TokKind::Punct('.') {
                    li.methods.push(s.clone());
                }
                if k > 0 && toks[k - 1].kind.ident() == Some("as") {
                    li.casts.push(s.clone());
                }
            }
            TokKind::Num { float_suffix: true } => li.float_num = true,
            _ => {}
        }
    }
    lines
}

/// Which lines are test-only: the whole file for `tests/` dirs or an
/// inner `#![cfg(test)]`, else the brace-matched extent of every item
/// gated by `#[cfg(test)]` (or `#[test]`).
fn collect_test_lines(ctx: FileCtx, toks: &[Token], nlines: usize) -> Vec<bool> {
    let mut test = vec![ctx.tests_dir; nlines + 2];
    if ctx.tests_dir {
        return test;
    }
    let mut k = 0;
    while k < toks.len() {
        if toks[k].kind != TokKind::Punct('#') {
            k += 1;
            continue;
        }
        let mut j = k + 1;
        let inner = toks.get(j).map(|t| &t.kind) == Some(&TokKind::Punct('!'));
        if inner {
            j += 1;
        }
        if toks.get(j).map(|t| &t.kind) != Some(&TokKind::Punct('[')) {
            k += 1;
            continue;
        }
        let Some(close) = match_bracket(toks, j, '[', ']') else {
            break;
        };
        let attr = &toks[j + 1..close];
        let is_cfg_test = attr.first().and_then(|t| t.kind.ident()) == Some("cfg")
            && attr.iter().any(|t| t.kind.ident() == Some("test"));
        let is_test_attr = attr.len() == 1 && attr[0].kind.ident() == Some("test");
        if !(is_cfg_test || is_test_attr) {
            k = close + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is test-only.
            for t in test.iter_mut() {
                *t = true;
            }
            return test;
        }
        // Skip any further attributes, then mark the gated item's extent.
        let mut m = close + 1;
        while toks.get(m).map(|t| &t.kind) == Some(&TokKind::Punct('#'))
            && toks.get(m + 1).map(|t| &t.kind) == Some(&TokKind::Punct('['))
        {
            match match_bracket(toks, m + 1, '[', ']') {
                Some(c) => m = c + 1,
                None => break,
            }
        }
        let start_line = toks[k].line;
        let mut end_line = start_line;
        let mut n = m;
        while n < toks.len() {
            match &toks[n].kind {
                TokKind::Punct('{') => {
                    if let Some(c) = match_bracket(toks, n, '{', '}') {
                        end_line = toks[c].line;
                    }
                    break;
                }
                TokKind::Punct(';') => {
                    end_line = toks[n].line;
                    break;
                }
                _ => n += 1,
            }
        }
        for line in start_line..=end_line {
            if let Some(t) = test.get_mut(line) {
                *t = true;
            }
        }
        k = close + 1;
    }
    test
}

/// Index of the token closing the bracket opened at `open_idx`.
fn match_bracket(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in toks[open_idx..].iter().enumerate() {
        if t.kind == TokKind::Punct(open) {
            depth += 1;
        } else if t.kind == TokKind::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(open_idx + off);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_model() -> FileCtx {
        FileCtx::new(Layer::Model, "crates/systems/src/x.rs")
    }

    fn run(ctx: FileCtx, src: &str) -> Vec<(usize, &'static str)> {
        analyze_source(ctx, "crates/systems/src/x.rs", src)
            .findings
            .iter()
            .map(|f| (f.line, f.rule))
            .collect()
    }

    #[test]
    fn aliased_hashmap_import_fires_at_import_and_use() {
        let src = "\
use std::collections::HashMap as Fast;
fn f() { let m: Fast<u32, u32> = Fast::new(); }
";
        let f = run(ctx_model(), src);
        assert_eq!(f, vec![(1, "unordered"), (2, "unordered")]);
    }

    #[test]
    fn grouped_and_self_imports_resolve() {
        let src = "\
use std::collections::{BTreeMap, HashSet as Unique};
fn f() { let s = Unique::new(); let m = BTreeMap::new(); }
";
        let f = run(ctx_model(), src);
        assert_eq!(f, vec![(1, "unordered"), (2, "unordered")]);
    }

    #[test]
    fn local_type_with_hazard_name_is_not_a_finding() {
        let src = "\
struct Instant(u64);
impl Instant {
    fn now() -> Instant { Instant(0) }
}
fn f() -> Instant { Instant::now() }
";
        assert!(run(ctx_model(), src).is_empty());
    }

    #[test]
    fn std_time_instant_fires_without_import() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let f = run(ctx_model(), src);
        assert_eq!(f, vec![(1, "wall-clock")]);
    }

    #[test]
    fn aliased_wall_clock_fires() {
        let src = "\
use std::time::Instant as Clock;
fn f() { let t = Clock::now(); }
";
        let f = run(ctx_model(), src);
        assert_eq!(f, vec![(1, "wall-clock"), (2, "wall-clock")]);
    }

    #[test]
    fn cfg_test_module_relaxes_wall_clock_but_not_rng() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    use std::time::Instant;
    #[test]
    fn timing() {
        let t = Instant::now();
        let r = thread_rng();
    }
}
";
        let f = run(ctx_model(), src);
        assert_eq!(f, vec![(8, "ambient-rng")]);
    }

    #[test]
    fn tests_dir_relaxes_time_float_cast() {
        let src = "fn f(d: SimDuration) -> f64 { d.as_nanos() as f64 }\n";
        let in_src = FileCtx::new(Layer::Model, "crates/systems/src/x.rs");
        let in_tests = FileCtx::new(Layer::Model, "crates/systems/tests/x.rs");
        assert_eq!(run(in_src, src), vec![(1, "time-float-cast")]);
        assert!(analyze_source(in_tests, "crates/systems/tests/x.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn multiline_float_sort_is_caught() {
        let src = "\
v.sort_by(|a, b| {
    a.partial_cmp(b).unwrap()
});
";
        let f = run(ctx_model(), src);
        assert_eq!(f, vec![(1, "float-sort")]);
    }

    #[test]
    fn partial_cmp_impl_is_not_a_float_sort() {
        let src = "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None }\n";
        assert!(run(ctx_model(), src).is_empty());
    }

    #[test]
    fn aliased_thread_module_fires() {
        let src = "\
use std::thread as host;
fn f() { host::spawn(|| {}); }
";
        let f = run(ctx_model(), src);
        assert_eq!(f, vec![(1, "host-thread"), (2, "host-thread")]);
    }

    #[test]
    fn harness_layer_may_thread_but_not_model() {
        let src = "std::thread::scope(|s| { s.spawn(|| {}); });\n";
        assert_eq!(run(ctx_model(), src), vec![(1, "host-thread")]);
        let harness = FileCtx::new(Layer::Harness, "crates/experiments/src/sweep.rs");
        assert!(
            analyze_source(harness, "crates/experiments/src/sweep.rs", src)
                .findings
                .is_empty()
        );
    }

    #[test]
    fn harness_bin_may_read_wall_clock_but_lib_may_not() {
        let src = "let t = std::time::Instant::now();\n";
        let bin = FileCtx::new(Layer::Harness, "crates/bench/src/bin/perf.rs");
        let lib = FileCtx::new(Layer::Harness, "crates/bench/src/lib.rs");
        assert!(analyze_source(bin, "crates/bench/src/bin/perf.rs", src)
            .findings
            .is_empty());
        assert_eq!(
            analyze_source(lib, "crates/bench/src/lib.rs", src).findings[0].rule,
            "wall-clock"
        );
    }

    #[test]
    fn raw_strings_and_comments_never_fire() {
        let src = "\
// HashMap Instant thread_rng in prose
let s = r#\"HashMap unsafe OsRng\"#;
/* std::thread in /* nested */ comment */
let t = \"SystemTime\";
";
        assert!(run(ctx_model(), src).is_empty());
    }

    #[test]
    fn allow_block_waiver_covers_its_span_and_tracks_usage() {
        let src = "\
// simlint: allow-block(unordered, lines=3, reason=fixture table keyed once)
use std::collections::HashMap;
fn f() { let a: HashMap<u8, u8> = HashMap::new(); }
fn g() {}
use std::collections::HashSet;
";
        let f = run(ctx_model(), src);
        assert_eq!(f, vec![(5, "unordered")]);
    }

    #[test]
    fn stale_waiver_fires_when_nothing_is_suppressed() {
        let src = "\
// simlint: allow(unordered, reason=nothing here anymore)
fn clean() {}
";
        let f = run(ctx_model(), src);
        assert_eq!(f, vec![(1, "stale-waiver")]);
    }

    #[test]
    fn rand_random_fires_and_crate_local_paths_do_not() {
        let src = "\
fn f() -> f64 { rand::random() }
fn g() { let h = crate::util::HashMap::new(); }
";
        let f = run(ctx_model(), src);
        assert_eq!(f, vec![(1, "ambient-rng")]);
    }

    #[test]
    fn time_float_cast_matches_legacy_heuristics() {
        let model = ctx_model();
        assert_eq!(
            run(model, "let d = SimDuration::from_nanos(x as f64 as u64);\n"),
            vec![(1, "time-float-cast")]
        );
        assert!(run(model, "let n = queue_len_ns as u64;\n").is_empty());
        assert!(run(model, "let share = busy as f64 / total;\n").is_empty());
        assert_eq!(
            run(model, "let m = SimDuration::from_nanos(h.mean() as u64);\n"),
            vec![(1, "time-float-cast")]
        );
    }

    #[test]
    fn unsafe_keyword_fires_but_forbid_attr_does_not() {
        assert_eq!(run(ctx_model(), "unsafe { }\n"), vec![(1, "unsafe-code")]);
        assert!(run(ctx_model(), "#![forbid(unsafe_code)]\n").is_empty());
    }
}
