//! The v1 lexical pass, kept verbatim as the executable specification.
//!
//! simlint v2 replaced this line-oriented scan with the token-stream
//! analyzer in [`crate::rules::tokens`], but the old pass is not dead
//! code: the differential test (`tests/differential.rs`) drives both
//! passes over the real workspace and a fixture corpus and requires the
//! token pass to report a strict superset of the lexical findings,
//! minus an explicit list of known lexical false positives. Any token
//! regression — a hazard the grep caught that the lexer now misses —
//! fails that test. This mirrors how `sim-core` keeps `LegacyHeap` as
//! the spec for the indexed event queue.
//!
//! Nothing here should gain features. The hand-maintained crate lists
//! (`MODEL_CRATES`, the `experiments`/`bench` harness allowlist in
//! [`classify`]) are part of the frozen spec; the live pass derives the
//! same facts from `[package.metadata.simlint]` in each crate manifest
//! via [`crate::graph`].

use crate::rules::RULES;
use crate::Finding;

/// Crates whose in-memory state feeds simulation results, where iteration
/// order and lossy numeric casts are correctness hazards, not style.
/// (Frozen v1 list; the v2 pass reads layers from crate metadata.)
pub const MODEL_CRATES: &[&str] = &[
    "sim-core",
    "nic-model",
    "nicsched",
    "cpu-model",
    "systems",
    "workload",
];

// ---------------------------------------------------------------------------
// Source scrubbing: blank out comments and string/char literals while
// preserving the line structure, and keep the comment text separately so
// waivers can be parsed from it.
// ---------------------------------------------------------------------------

struct Scrubbed {
    /// Source lines with comments and literals replaced by spaces.
    code: Vec<String>,
    /// Comment text per line (concatenated if a line has several).
    comments: Vec<String>,
}

fn scrub(source: &str) -> Scrubbed {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let mut st = St::Code;
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    code_line.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    code_line.push_str("  ");
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    code_line.push(' ');
                    i += 1;
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            code_line.push(' ');
                        }
                        i = j + 1;
                    } else {
                        code_line.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with a
                    // quote after one (possibly escaped) character.
                    if next == Some('\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        for _ in i..=j.min(chars.len() - 1) {
                            code_line.push(' ');
                        }
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        code_line.push_str("   ");
                        i += 3;
                    } else {
                        // A lifetime; keep the tick so tokens stay apart.
                        code_line.push(c);
                        i += 1;
                    }
                }
                _ => {
                    code_line.push(c);
                    i += 1;
                }
            },
            St::LineComment => {
                comment_line.push(c);
                code_line.push(' ');
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    comment_line.push_str("/*");
                    code_line.push_str("  ");
                    i += 2;
                } else {
                    comment_line.push(c);
                    code_line.push(' ');
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    code_line.push(' ');
                    i += 1;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        for _ in i..j {
                            code_line.push(' ');
                        }
                        i = j;
                    } else {
                        code_line.push(' ');
                        i += 1;
                    }
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
        }
    }
    code.push(code_line);
    comments.push(comment_line);
    Scrubbed { code, comments }
}

/// True when `line` contains `tok` as a whole word (identifier boundary
/// on both sides; `_` counts as a word character).
fn has_token(line: &str, tok: &str) -> bool {
    let bytes = line.as_bytes();
    let is_word = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let mut start = 0;
    while let Some(pos) = line[start..].find(tok) {
        let at = start + pos;
        let before_ok = at == 0 || !is_word(bytes[at - 1]);
        let after = at + tok.len();
        let after_ok = after >= bytes.len() || !is_word(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        start = at + tok.len().max(1);
    }
    false
}

// ---------------------------------------------------------------------------
// Waivers (v1 syntax: `allow(rule, reason=…)`, covering its own line and
// the next; the v2 parser in rules::waivers adds allow-block).
// ---------------------------------------------------------------------------

struct Waivers {
    /// `allowed[i]` holds rules waived on 0-based line `i`.
    allowed: Vec<Vec<String>>,
    /// Malformed waiver findings (missing reason, unknown rule).
    bad: Vec<(usize, String)>,
}

fn parse_waivers(comments: &[String]) -> Waivers {
    let mut allowed = vec![Vec::new(); comments.len() + 1];
    let mut bad = Vec::new();
    for (idx, comment) in comments.iter().enumerate() {
        let Some(pos) = comment.find("simlint:") else {
            continue;
        };
        let rest = comment[pos + "simlint:".len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            bad.push((idx, "waiver must use `allow(rule, reason=...)`".into()));
            continue;
        };
        let Some(close) = body.find(')') else {
            bad.push((idx, "unterminated waiver: missing `)`".into()));
            continue;
        };
        let inner = &body[..close];
        // Everything after `reason=` is the reason, commas included;
        // rule names come before it.
        let (rule_part, reason) = match inner.find("reason=") {
            Some(at) => (
                inner[..at].trim_end_matches([' ', ',']),
                Some(inner[at + "reason=".len()..].trim().to_string()),
            ),
            None => (inner, None),
        };
        let rules: Vec<String> = rule_part
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_string)
            .collect();
        match reason {
            Some(r) if !r.is_empty() => {
                for rule in &rules {
                    if !RULES.contains(&rule.as_str()) {
                        bad.push((idx, format!("waiver names unknown rule `{rule}`")));
                    }
                }
                if rules.is_empty() {
                    bad.push((idx, "waiver allows no rule".into()));
                } else {
                    // A waiver covers its own line and the next.
                    allowed[idx].extend(rules.iter().cloned());
                    if idx + 1 < allowed.len() {
                        allowed[idx + 1].extend(rules);
                    }
                }
            }
            _ => bad.push((
                idx,
                "waiver is missing a non-empty `reason=`: every exception \
                 must say why it is sound"
                    .into(),
            )),
        }
    }
    Waivers { allowed, bad }
}

// ---------------------------------------------------------------------------
// Per-file context and rule evaluation
// ---------------------------------------------------------------------------

/// What kind of file a workspace-relative path is, for rule scoping.
struct FileCtx {
    model_crate: bool,
    experiment_bin: bool,
    harness_crate: bool,
}

fn classify(rel_path: &str) -> FileCtx {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next());
    let model_crate = crate_name.is_some_and(|c| MODEL_CRATES.contains(&c));
    // Experiment and perf-bench drivers are allowed to look at the wall
    // clock or seed from entropy (they time real builds, not simulated
    // ones).
    let experiment_bin = rel_path.starts_with("crates/experiments/src/bin/")
        || rel_path.starts_with("crates/bench/src/bin/");
    // Harness crates fan independent simulations across OS threads; every
    // other crate — the model crates above all — must stay thread-free so
    // a simulation is one deterministic sequential event loop.
    let harness_crate = crate_name.is_some_and(|c| c == "experiments" || c == "bench");
    FileCtx {
        model_crate,
        experiment_bin,
        harness_crate,
    }
}

fn time_token(line: &str) -> bool {
    has_token(line, "SimTime")
        || has_token(line, "SimDuration")
        || has_token(line, "as_nanos")
        || has_token(line, "from_nanos")
        || line
            .split(|c: char| !(c == '_' || c.is_ascii_alphanumeric()))
            .any(|w| w.ends_with("_ns"))
}

fn float_cast(line: &str) -> bool {
    if line.contains(" as f64") || line.contains(" as f32") {
        return true;
    }
    line.contains(" as u64")
        && (line.contains(".round()") || line.contains(".mean()") || line.contains("f64"))
}

/// Lint one file's source with the frozen v1 lexical pass. `rel_path`
/// must be workspace-relative with forward slashes (it drives scoping).
pub fn lint_source_legacy(rel_path: &str, source: &str) -> Vec<Finding> {
    let ctx = classify(rel_path);
    let scrubbed = scrub(source);
    let waivers = parse_waivers(&scrubbed.comments);
    let mut findings: Vec<Finding> = waivers
        .bad
        .iter()
        .map(|(idx, msg)| Finding {
            file: rel_path.to_string(),
            line: idx + 1,
            rule: "bad-waiver",
            message: msg.clone(),
        })
        .collect();
    let mut push = |line_idx: usize, rule: &'static str, message: String| {
        if waivers.allowed[line_idx].iter().any(|r| r == rule) {
            return;
        }
        findings.push(Finding {
            file: rel_path.to_string(),
            line: line_idx + 1,
            rule,
            message,
        });
    };

    for (idx, line) in scrubbed.code.iter().enumerate() {
        if ctx.model_crate {
            for tok in ["HashMap", "HashSet"] {
                if has_token(line, tok) {
                    push(
                        idx,
                        "unordered",
                        format!(
                            "{tok} iterates in hasher order, which is not stable \
                             across runs; use BTreeMap/BTreeSet or waive with \
                             `// simlint: allow(unordered, reason=...)`"
                        ),
                    );
                }
            }
            if time_token(line) && float_cast(line) {
                push(
                    idx,
                    "time-float-cast",
                    "bare `as` cast between u64 time and float loses \
                     nanoseconds silently; go through SimDuration's *_f64 \
                     constructors/accessors or waive with a reason"
                        .into(),
                );
            }
        }
        if !ctx.experiment_bin {
            for tok in ["Instant", "SystemTime", "UNIX_EPOCH"] {
                if has_token(line, tok) {
                    push(
                        idx,
                        "wall-clock",
                        format!(
                            "{tok} reads the wall clock, which differs across \
                             runs and machines; simulated time must come from \
                             the engine clock"
                        ),
                    );
                }
            }
            for tok in ["thread_rng", "from_entropy", "OsRng"] {
                if has_token(line, tok) {
                    push(
                        idx,
                        "ambient-rng",
                        format!(
                            "{tok} draws from ambient entropy; all randomness \
                             must come from seeded sim_core::Rng streams"
                        ),
                    );
                }
            }
            if line.contains("rand::random") {
                push(
                    idx,
                    "ambient-rng",
                    "rand::random draws from ambient entropy; all randomness \
                     must come from seeded sim_core::Rng streams"
                        .into(),
                );
            }
        }
        if !ctx.harness_crate {
            for tok in ["std::thread", "thread::spawn", "thread::scope"] {
                if line.contains(tok) {
                    push(
                        idx,
                        "host-thread",
                        format!(
                            "{tok} puts OS threads inside the simulation; \
                             models run on one deterministic event loop, and \
                             only the host-side harness crates (experiments, \
                             bench) may fan runs across threads"
                        ),
                    );
                    break;
                }
            }
        }
        if (line.contains("sort_by") || line.contains("sort_unstable_by"))
            && line.contains("partial_cmp")
        {
            push(
                idx,
                "float-sort",
                "float sort via partial_cmp panics on NaN and invites \
                 platform-dependent totalization; sort on integer keys \
                 (e.g. nanoseconds) instead"
                    .into(),
            );
        }
        if has_token(line, "unsafe") {
            push(
                idx,
                "unsafe-code",
                "unsafe block in a workspace that promises #![forbid(unsafe_code)] \
                 everywhere; the simulation has no business touching raw memory"
                    .into(),
            );
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hashmap_in_model_crate_is_flagged() {
        let f = lint_source_legacy(
            "crates/systems/src/x.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
        );
        assert!(f.iter().all(|f| f.rule == "unordered"), "{f:?}");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn hashmap_outside_model_crates_is_fine() {
        let f = lint_source_legacy(
            "crates/experiments/src/x.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn waiver_with_reason_suppresses_same_and_next_line() {
        let src = "\
// simlint: allow(unordered, reason=keys are never iterated)
use std::collections::HashSet;
";
        let f = lint_source_legacy("crates/nic-model/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn waiver_without_reason_is_itself_a_finding() {
        let src = "// simlint: allow(unordered)\nuse std::collections::HashSet;\n";
        let f = lint_source_legacy("crates/nic-model/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["bad-waiver", "unordered"]);
    }

    #[test]
    fn waiver_naming_unknown_rule_is_flagged() {
        let src = "// simlint: allow(no-such-rule, reason=whatever)\n";
        let f = lint_source_legacy("crates/sim-core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["bad-waiver"]);
    }

    #[test]
    fn ambient_rng_and_wall_clock_flagged_everywhere_but_experiment_bins() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }\n";
        assert_eq!(
            rules_of(&lint_source_legacy("crates/workload/src/x.rs", src)),
            vec!["wall-clock", "ambient-rng"]
        );
        assert_eq!(
            rules_of(&lint_source_legacy("crates/bench/benches/x.rs", src)),
            vec!["wall-clock", "ambient-rng"]
        );
        assert!(lint_source_legacy("crates/experiments/src/bin/x.rs", src).is_empty());
    }

    #[test]
    fn host_threads_flagged_everywhere_but_harness_crates() {
        let src = "std::thread::scope(|s| { s.spawn(|| {}); });\n";
        // A thread in a model crate is a determinism hazard…
        assert_eq!(
            rules_of(&lint_source_legacy("crates/sim-core/src/x.rs", src)),
            vec!["host-thread"]
        );
        assert_eq!(
            rules_of(&lint_source_legacy("crates/nicsched/src/x.rs", src)),
            vec!["host-thread"]
        );
        // …and in the workspace root package.
        assert_eq!(
            rules_of(&lint_source_legacy("src/lib.rs", src)),
            vec!["host-thread"]
        );
        // The harness crates fan independent runs across threads by design.
        assert!(lint_source_legacy("crates/experiments/src/sweep.rs", src).is_empty());
        assert!(lint_source_legacy("crates/bench/src/bin/perf.rs", src).is_empty());
        assert!(lint_source_legacy("crates/bench/benches/engine.rs", src).is_empty());
    }

    #[test]
    fn bench_bins_may_read_the_wall_clock_but_benches_may_not() {
        let src = "let t = std::time::Instant::now();\n";
        assert!(lint_source_legacy("crates/bench/src/bin/perf.rs", src).is_empty());
        assert_eq!(
            rules_of(&lint_source_legacy("crates/bench/benches/engine.rs", src)),
            vec!["wall-clock"]
        );
        assert_eq!(
            rules_of(&lint_source_legacy("crates/bench/src/lib.rs", src)),
            vec!["wall-clock"]
        );
    }

    #[test]
    fn rand_random_path_is_flagged() {
        let f = lint_source_legacy("src/lib.rs", "fn f() -> f64 { rand::random() }\n");
        assert_eq!(rules_of(&f), vec!["ambient-rng"]);
    }

    #[test]
    fn float_sort_flagged() {
        let src = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert_eq!(
            rules_of(&lint_source_legacy("crates/experiments/src/x.rs", src)),
            vec!["float-sort"]
        );
    }

    #[test]
    fn partial_ord_impls_are_not_float_sorts() {
        let src = "fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n";
        assert!(lint_source_legacy("crates/sim-core/src/x.rs", src).is_empty());
    }

    #[test]
    fn time_float_cast_flagged_only_with_time_context() {
        let model = "crates/cpu-model/src/x.rs";
        let f = lint_source_legacy(model, "let d = SimDuration::from_nanos(x as f64 as u64);\n");
        assert_eq!(rules_of(&f), vec!["time-float-cast"]);
        // A plain integer widening with a _ns field is not a float cast.
        assert!(lint_source_legacy(model, "let n = queue_len_ns as u64;\n").is_empty());
        // Float casts with no time units in sight are someone else's problem.
        assert!(lint_source_legacy(model, "let share = busy as f64 / total;\n").is_empty());
    }

    #[test]
    fn unsafe_block_flagged_but_forbid_attribute_is_not() {
        let f = lint_source_legacy("crates/net-wire/src/x.rs", "unsafe { *p }\n");
        assert_eq!(rules_of(&f), vec!["unsafe-code"]);
        assert!(
            lint_source_legacy("crates/net-wire/src/x.rs", "#![forbid(unsafe_code)]\n").is_empty()
        );
    }

    #[test]
    fn comments_and_strings_do_not_trip_rules() {
        let src = "\
// Instant of the crash, a HashMap in prose, unsafe in a comment.
let s = \"HashMap thread_rng Instant unsafe\";
/* SystemTime in a block comment */
let r = r#\"OsRng in a raw string\"#;
";
        let f = lint_source_legacy("crates/sim-core/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lifetimes_survive_scrubbing() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet e = '\\n';\n";
        assert!(lint_source_legacy("crates/sim-core/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_does_not_leak_past_the_next_line() {
        let src = "\
// simlint: allow(unordered, reason=scoped narrowly)
use std::collections::HashSet;
use std::collections::HashMap;
";
        let f = lint_source_legacy("crates/systems/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["unordered"]);
        assert_eq!(f[0].line, 3);
    }
}
