//! Report assembly, JSON output, and the findings baseline gate.
//!
//! The gate mirrors the perf gate (`BENCH_4.json` + `perf --compare`):
//! a checked-in `SIMLINT_BASELINE.json` records the accepted standing
//! findings (normally none) and the per-(file, rule) waiver counts.
//! `--compare` fails when a (file, rule) pair gains findings or waivers
//! relative to the baseline — lines may drift, debt may not grow — and
//! merely notes shrinkage, which `--write-baseline` then locks in. The
//! ledger ratchets one way.
//!
//! Everything here is dependency-free: a hand-rolled JSON emitter with
//! proper string escaping, and a small recursive-descent JSON parser
//! (objects, arrays, strings with escapes, numbers, booleans, null) for
//! reading the baseline back.

use std::collections::BTreeMap;

use crate::Finding;

/// One well-formed waiver, for the ledger.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    pub file: String,
    pub line: usize,
    pub rules: Vec<String>,
    pub block: bool,
}

/// The result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub waivers: Vec<WaiverRecord>,
}

impl Report {
    /// Findings per (file, rule), for line-tolerant baseline comparison.
    pub fn finding_counts(&self) -> BTreeMap<(String, String), usize> {
        let mut counts = BTreeMap::new();
        for f in &self.findings {
            *counts
                .entry((f.file.clone(), f.rule.to_string()))
                .or_insert(0) += 1;
        }
        counts
    }

    /// Waivers per (file, rule): each waiver contributes one per rule it
    /// names.
    pub fn waiver_counts(&self) -> BTreeMap<(String, String), usize> {
        let mut counts = BTreeMap::new();
        for w in &self.waivers {
            for rule in &w.rules {
                *counts.entry((w.file.clone(), rule.clone())).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The full machine-readable report (`--json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{}\n",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"waivers\": [\n");
        for (i, w) in self.waivers.iter().enumerate() {
            let rules: Vec<String> = w.rules.iter().map(|r| json_str(r)).collect();
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rules\": [{}], \"block\": {}}}{}\n",
                json_str(&w.file),
                w.line,
                rules.join(", "),
                w.block,
                if i + 1 < self.waivers.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The baseline document (`--write-baseline`): standing findings
    /// without messages (lines drift; messages churn) plus the waiver
    /// ledger. `schema: 4` marks the v4 finding vocabulary
    /// (workspace-interprocedural taint, shard-cert); `compare` ignores
    /// the key, so v2/v3 baselines still parse.
    pub fn to_baseline_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 4,\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}}}{}\n",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"waiver_counts\": {\n");
        let counts = self.waiver_counts();
        let n = counts.len();
        for (i, ((file, rule), count)) in counts.iter().enumerate() {
            out.push_str(&format!(
                "    {}: {}{}\n",
                json_str(&format!("{file}:{rule}")),
                count,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// SARIF 2.1.0 (`--sarif`): one run, rules from the registry, one
    /// `error`-level result per finding. Minimal but valid — enough for
    /// `github/codeql-action/upload-sarif` to render findings as PR
    /// annotations in the Security tab.
    pub fn to_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"$schema\": \
             \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \
             \"tool\": {\n        \"driver\": {\n          \
             \"name\": \"simlint\",\n          \
             \"informationUri\": \"https://example.invalid/simlint\",\n          \
             \"rules\": [\n",
        );
        let n_rules = crate::rules::TABLE.len();
        for (i, r) in crate::rules::TABLE.iter().enumerate() {
            out.push_str(&format!(
                "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
                 \"fullDescription\": {{\"text\": {}}}}}{}\n",
                json_str(r.name),
                json_str(&r.fires_on.replace('\n', " ")),
                json_str(&r.detail.replace('\n', " ")),
                if i + 1 < n_rules { "," } else { "" }
            ));
        }
        out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"ruleId\": {}, \"level\": \"error\", \"message\": \
                 {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": \
                 {{\"startLine\": {}}}}}}}]}}{}\n",
                json_str(f.rule),
                json_str(&f.message),
                json_str(&f.file),
                f.line,
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n    }\n  ]\n}\n");
        out
    }

    /// GitHub Actions workflow-command annotations, one per finding.
    pub fn to_annotations(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "::error file={},line={}::[{}] {}\n",
                f.file,
                f.line,
                f.rule,
                gha_escape(&f.message)
            ));
        }
        out
    }
}

/// Compare a report against baseline JSON text. `Ok` carries notes
/// (shrinkage worth refreshing), `Err` carries gate failures.
pub fn compare(report: &Report, baseline_text: &str) -> Result<Vec<String>, Vec<String>> {
    let value =
        parse_json(baseline_text).map_err(|e| vec![format!("baseline is not valid JSON: {e}")])?;
    let mut base_findings: BTreeMap<(String, String), usize> = BTreeMap::new();
    for item in value
        .get("findings")
        .and_then(Value::as_array)
        .unwrap_or(&[])
    {
        let file = item.get("file").and_then(Value::as_str).unwrap_or_default();
        let rule = item.get("rule").and_then(Value::as_str).unwrap_or_default();
        *base_findings
            .entry((file.to_string(), rule.to_string()))
            .or_insert(0) += 1;
    }
    let mut base_waivers: BTreeMap<(String, String), usize> = BTreeMap::new();
    if let Some(Value::Object(map)) = value.get("waiver_counts") {
        for (key, count) in map {
            if let (Some((file, rule)), Some(n)) = (key.rsplit_once(':'), count.as_usize()) {
                base_waivers.insert((file.to_string(), rule.to_string()), n);
            }
        }
    }

    let mut errors = Vec::new();
    let mut notes = Vec::new();
    let cur_findings = report.finding_counts();
    for ((file, rule), count) in &cur_findings {
        let base = base_findings
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if *count > base {
            errors.push(format!(
                "new findings: {file} has {count} `{rule}` finding(s), baseline allows {base}"
            ));
        }
    }
    for ((file, rule), base) in &base_findings {
        let cur = cur_findings
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if cur < *base {
            notes.push(format!(
                "{file}: `{rule}` findings dropped {base} -> {cur}; refresh with --write-baseline"
            ));
        }
    }
    let cur_waivers = report.waiver_counts();
    for ((file, rule), count) in &cur_waivers {
        let base = base_waivers
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if *count > base {
            errors.push(format!(
                "waiver ledger grew: {file} has {count} `{rule}` waiver(s), baseline allows {base}"
            ));
        }
    }
    for ((file, rule), base) in &base_waivers {
        let cur = cur_waivers
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if cur < *base {
            notes.push(format!(
                "{file}: `{rule}` waivers dropped {base} -> {cur}; refresh with --write-baseline"
            ));
        }
    }
    if errors.is_empty() {
        Ok(notes)
    } else {
        Err(errors)
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn gha_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

// ---------------------------------------------------------------------------
// Mini JSON parser (read-side, for the baseline)
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a JSON document.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at offset {pos}"))
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key is not a string at offset {pos}")),
                };
                expect(b, pos, ':')?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            while let Some(&c) = b.get(*pos) {
                *pos += 1;
                match c {
                    '"' => return Ok(Value::Str(s)),
                    '\\' => {
                        let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                        *pos += 1;
                        match esc {
                            '"' => s.push('"'),
                            '\\' => s.push('\\'),
                            '/' => s.push('/'),
                            'n' => s.push('\n'),
                            'r' => s.push('\r'),
                            't' => s.push('\t'),
                            'b' => s.push('\u{8}'),
                            'f' => s.push('\u{c}'),
                            'u' => {
                                let hex: String =
                                    b.get(*pos..*pos + 4).ok_or("short \\u")?.iter().collect();
                                *pos += 4;
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|_| format!("bad \\u{hex}"))?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => return Err(format!("bad escape \\{other}")),
                        }
                    }
                    c => s.push(c),
                }
            }
            Err("unterminated string".into())
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            while b
                .get(*pos)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            {
                *pos += 1;
            }
            let text: String = b[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number `{text}`"))
        }
        Some('t')
            if b.get(*pos..*pos + 4)
                .is_some_and(|s| s.iter().collect::<String>() == "true") =>
        {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some('f')
            if b.get(*pos..*pos + 5)
                .is_some_and(|s| s.iter().collect::<String>() == "false") =>
        {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some('n')
            if b.get(*pos..*pos + 4)
                .is_some_and(|s| s.iter().collect::<String>() == "null") =>
        {
            *pos += 4;
            Ok(Value::Null)
        }
        _ => Err(format!("unexpected character at offset {pos}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize, rule: &'static str) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule,
            message: "m \"quoted\"\nsecond".into(),
        }
    }

    fn report_with(findings: Vec<Finding>, waivers: Vec<WaiverRecord>) -> Report {
        Report {
            files_scanned: 3,
            findings,
            waivers,
        }
    }

    #[test]
    fn json_roundtrips_through_own_parser() {
        let report = report_with(
            vec![finding("a.rs", 7, "unordered")],
            vec![WaiverRecord {
                file: "b.rs".into(),
                line: 2,
                rules: vec!["wall-clock".into()],
                block: true,
            }],
        );
        let value = parse_json(&report.to_json()).expect("valid JSON");
        assert_eq!(
            value.get("files_scanned").and_then(Value::as_usize),
            Some(3)
        );
        let f = &value.get("findings").and_then(Value::as_array).unwrap()[0];
        assert_eq!(f.get("file").and_then(Value::as_str), Some("a.rs"));
        assert_eq!(f.get("line").and_then(Value::as_usize), Some(7));
        assert_eq!(
            f.get("message").and_then(Value::as_str),
            Some("m \"quoted\"\nsecond")
        );
        let baseline = parse_json(&report.to_baseline_json()).expect("valid baseline");
        assert_eq!(
            baseline
                .get("waiver_counts")
                .and_then(|v| v.get("b.rs:wall-clock"))
                .and_then(Value::as_usize),
            Some(1)
        );
    }

    #[test]
    fn compare_passes_on_identical_baseline() {
        let report = report_with(vec![finding("a.rs", 7, "unordered")], vec![]);
        let baseline = report.to_baseline_json();
        assert_eq!(compare(&report, &baseline), Ok(vec![]));
    }

    #[test]
    fn compare_fails_on_new_finding() {
        let clean = report_with(vec![], vec![]);
        let baseline = clean.to_baseline_json();
        let dirty = report_with(vec![finding("a.rs", 7, "unordered")], vec![]);
        let errs = compare(&dirty, &baseline).unwrap_err();
        assert!(errs[0].contains("new findings"), "{errs:?}");
    }

    #[test]
    fn compare_tolerates_line_drift() {
        let before = report_with(vec![finding("a.rs", 7, "unordered")], vec![]);
        let baseline = before.to_baseline_json();
        let after = report_with(vec![finding("a.rs", 9, "unordered")], vec![]);
        assert!(compare(&after, &baseline).is_ok());
    }

    #[test]
    fn compare_fails_on_waiver_growth_and_notes_shrink() {
        let w = |n: usize| {
            (0..n)
                .map(|i| WaiverRecord {
                    file: "a.rs".into(),
                    line: i + 1,
                    rules: vec!["unordered".into()],
                    block: false,
                })
                .collect::<Vec<_>>()
        };
        let baseline = report_with(vec![], w(1)).to_baseline_json();
        let grown = report_with(vec![], w(2));
        let errs = compare(&grown, &baseline).unwrap_err();
        assert!(errs[0].contains("waiver ledger grew"), "{errs:?}");
        let shrunk = report_with(vec![], w(0));
        let notes = compare(&shrunk, &baseline).unwrap();
        assert!(notes[0].contains("refresh"), "{notes:?}");
    }

    #[test]
    fn annotations_escape_newlines() {
        let report = report_with(vec![finding("a.rs", 7, "unordered")], vec![]);
        let ann = report.to_annotations();
        assert!(ann.starts_with("::error file=a.rs,line=7::[unordered]"));
        assert!(ann.contains("%0A"));
        assert!(!ann.trim_end().contains('\n') || ann.lines().count() == 1);
    }

    #[test]
    fn sarif_is_valid_json_with_rules_and_results() {
        let report = report_with(vec![finding("a.rs", 7, "unordered")], vec![]);
        let value = parse_json(&report.to_sarif()).expect("valid SARIF JSON");
        assert_eq!(value.get("version").and_then(Value::as_str), Some("2.1.0"));
        let run = &value.get("runs").and_then(Value::as_array).unwrap()[0];
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(rules.len(), crate::rules::TABLE.len());
        let results = run.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get("ruleId").and_then(Value::as_str),
            Some("unordered")
        );
        let loc = &results[0]
            .get("locations")
            .and_then(Value::as_array)
            .unwrap()[0];
        assert_eq!(
            loc.get("physicalLocation")
                .and_then(|p| p.get("region"))
                .and_then(|r| r.get("startLine"))
                .and_then(Value::as_usize),
            Some(7)
        );
    }

    #[test]
    fn baseline_declares_schema_4() {
        let report = report_with(vec![], vec![]);
        let value = parse_json(&report.to_baseline_json()).unwrap();
        assert_eq!(value.get("schema").and_then(Value::as_usize), Some(4));
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\": }").is_err());
    }
}
