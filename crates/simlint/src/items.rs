//! The v3 item parser: structure on top of the token stream.
//!
//! The v2 pass sees tokens; the semantic rules ([`crate::rules::semantic`])
//! and the taint pass ([`crate::dataflow`]) need *items* — which tokens
//! form a function body, which `impl` block implements which trait for
//! which type, which fields a struct declares, which `static`s exist.
//! This module extracts exactly that, with the same dependency-free,
//! heuristic-but-honest approach as the lexer: it does not aim to parse
//! all of Rust, only the subset this workspace's style produces, and the
//! fixture corpus pins its behavior.
//!
//! Two deliberate simplifications:
//!
//! * Generic argument lists are skipped with an angle-depth counter that
//!   treats `->` as an arrow (never a closing angle), which is correct
//!   for item headers — shifts (`<<`, `>>`) do not appear there.
//! * `'static` is a [`TokKind::Lifetime`] token, so the `static` *item*
//!   keyword below never false-positives on `&'static str`.

use crate::lexer::{TokKind, Token};

/// One `fn` item (free, impl-associated, or trait-default).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body, *inside* the braces (empty for
    /// bodyless declarations such as trait method signatures).
    pub body: (usize, usize),
    /// Token index range of the signature (`fn` up to the body brace or
    /// terminating semicolon, exclusive).
    pub sig: (usize, usize),
    /// Index into [`FileItems::impls`] when defined inside an impl.
    pub owner: Option<usize>,
}

/// One `impl` block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// Last path segment of the implemented trait (`impl a::B for T` →
    /// `B`); `None` for inherent impls.
    pub trait_name: Option<String>,
    /// Last path segment of the first type chain after `for` (or after
    /// `impl` for inherent impls). `impl T for Box<dyn T>` yields `Box`.
    pub type_name: String,
    /// Names of the `fn`s defined directly in this impl's body.
    pub fns: Vec<String>,
}

/// One named struct field (or tuple field with an empty name).
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name; empty for tuple-struct fields.
    pub name: String,
    /// 1-based line of the field.
    pub line: usize,
    /// Identifiers appearing in the field's type.
    pub type_idents: Vec<String>,
}

/// One struct definition with its fields.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Declared fields (empty for unit structs).
    pub fields: Vec<FieldItem>,
}

/// One `static` item.
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// The static's name.
    pub name: String,
    /// 1-based line of the `static` keyword.
    pub line: usize,
    /// True for `static mut`.
    pub mutable: bool,
    /// Identifiers appearing in the declared type.
    pub type_idents: Vec<String>,
}

/// One macro invocation worth knowing about (`thread_local!`).
#[derive(Debug, Clone)]
pub struct MacroUse {
    /// The macro name (without the `!`).
    pub name: String,
    /// 1-based line of the invocation.
    pub line: usize,
}

/// Every item extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub impls: Vec<ImplItem>,
    pub structs: Vec<StructItem>,
    pub statics: Vec<StaticItem>,
    pub macros: Vec<MacroUse>,
}

/// Parse the items of one file from its token stream.
pub fn parse_items(toks: &[Token]) -> FileItems {
    let mut items = FileItems::default();
    parse_range(toks, 0, toks.len(), None, &mut items);
    collect_flat(toks, &mut items);
    items
}

/// Recursive walk that understands `fn`, `impl`, and `struct` nesting.
fn parse_range(
    toks: &[Token],
    start: usize,
    end: usize,
    owner: Option<usize>,
    items: &mut FileItems,
) {
    let mut k = start;
    while k < end {
        match toks[k].kind.ident() {
            Some("fn") => k = parse_fn(toks, k, end, owner, items),
            Some("impl") if owner.is_none() => k = parse_impl(toks, k, end, items),
            Some("struct") => k = parse_struct(toks, k, end, items),
            Some("trait") | Some("mod") => {
                // Recurse into the body so trait-default fns and inner
                // modules are still seen (owner resets: their fns are not
                // impl members).
                let mut j = k + 1;
                while j < end && !matches!(toks[j].kind, TokKind::Punct('{' | ';')) {
                    j += 1;
                }
                if j < end && toks[j].kind == TokKind::Punct('{') {
                    if let Some(close) = match_brace(toks, j, end) {
                        parse_range(toks, j + 1, close, None, items);
                        k = close + 1;
                        continue;
                    }
                }
                k = j + 1;
            }
            _ => k += 1,
        }
    }
}

fn parse_fn(
    toks: &[Token],
    at: usize,
    end: usize,
    owner: Option<usize>,
    items: &mut FileItems,
) -> usize {
    let Some(TokKind::Ident(name)) = toks.get(at + 1).map(|t| &t.kind) else {
        return at + 1;
    };
    // The signature runs to the first `{` or `;` outside parens/angles
    // (closure bodies cannot appear in a signature).
    let mut j = at + 2;
    let mut angle = 0i32;
    while j < end {
        match &toks[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if toks[j - 1].kind != TokKind::Punct('-') => angle -= 1,
            TokKind::Punct('{') if angle <= 0 => break,
            TokKind::Punct(';') if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    let line = toks[at].line;
    if j < end && toks[j].kind == TokKind::Punct('{') {
        let close = match_brace(toks, j, end).unwrap_or(end);
        let idx = items.fns.len();
        items.fns.push(FnItem {
            name: name.clone(),
            line,
            body: (j + 1, close),
            sig: (at, j),
            owner,
        });
        if let Some(o) = owner {
            items.impls[o].fns.push(name.clone());
        }
        // Nested fns inside the body are free fns, not impl members.
        parse_range(toks, j + 1, close.min(end), None, items);
        let _ = idx;
        close + 1
    } else {
        items.fns.push(FnItem {
            name: name.clone(),
            line,
            body: (j, j),
            sig: (at, j),
            owner,
        });
        if let Some(o) = owner {
            items.impls[o].fns.push(name.clone());
        }
        j + 1
    }
}

fn parse_impl(toks: &[Token], at: usize, end: usize, items: &mut FileItems) -> usize {
    // Header: collect ident chains at angle-depth 0 until `{`, noting a
    // standalone `for` keyword and stopping chain collection at `where`.
    let mut j = at + 1;
    let mut angle = 0i32;
    let mut before_for: Vec<String> = Vec::new(); // last segment per chain
    let mut after_for: Vec<String> = Vec::new();
    let mut saw_for = false;
    let mut saw_where = false;
    while j < end {
        match &toks[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if toks[j - 1].kind != TokKind::Punct('-') => angle -= 1,
            TokKind::Punct('{') if angle <= 0 => break,
            TokKind::Ident(s) if angle <= 0 && s == "for" => saw_for = true,
            TokKind::Ident(s) if angle <= 0 && s == "where" => saw_where = true,
            TokKind::Ident(s) if angle <= 0 && !saw_where && s != "dyn" => {
                // Walk the whole `a::b::c` chain; keep its last segment.
                let mut last = s.clone();
                while j + 2 < end
                    && toks[j + 1].kind == TokKind::Punct(':')
                    && toks[j + 2].kind == TokKind::Punct(':')
                {
                    j += 2;
                    if let Some(TokKind::Ident(seg)) = toks.get(j).map(|t| &t.kind) {
                        last = seg.clone();
                    }
                }
                if saw_for {
                    after_for.push(last);
                } else {
                    before_for.push(last);
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j >= end || toks[j].kind != TokKind::Punct('{') {
        return at + 1;
    }
    let close = match_brace(toks, j, end).unwrap_or(end);
    let (trait_name, type_name) = if saw_for {
        (before_for.last().cloned(), after_for.first().cloned())
    } else {
        (None, before_for.first().cloned())
    };
    let idx = items.impls.len();
    items.impls.push(ImplItem {
        line: toks[at].line,
        trait_name,
        type_name: type_name.unwrap_or_default(),
        fns: Vec::new(),
    });
    parse_range(toks, j + 1, close.min(end), Some(idx), items);
    close + 1
}

fn parse_struct(toks: &[Token], at: usize, end: usize, items: &mut FileItems) -> usize {
    let Some(TokKind::Ident(name)) = toks.get(at + 1).map(|t| &t.kind) else {
        return at + 1;
    };
    let line = toks[at].line;
    // Skip generics / where clause to the body-or-terminator.
    let mut j = at + 2;
    let mut angle = 0i32;
    while j < end {
        match &toks[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if toks[j - 1].kind != TokKind::Punct('-') => angle -= 1,
            TokKind::Punct('{' | '(' | ';') if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    let mut fields = Vec::new();
    match toks.get(j).map(|t| &t.kind) {
        Some(TokKind::Punct('{')) => {
            let close = match_brace(toks, j, end).unwrap_or(end);
            parse_named_fields(toks, j + 1, close, &mut fields);
            items.structs.push(StructItem {
                name: name.clone(),
                line,
                fields,
            });
            close + 1
        }
        Some(TokKind::Punct('(')) => {
            let close = match_paren(toks, j, end).unwrap_or(end);
            let mut type_idents = Vec::new();
            for t in &toks[j + 1..close.min(end)] {
                if let TokKind::Ident(s) = &t.kind {
                    type_idents.push(s.clone());
                }
            }
            fields.push(FieldItem {
                name: String::new(),
                line,
                type_idents,
            });
            items.structs.push(StructItem {
                name: name.clone(),
                line,
                fields,
            });
            close + 1
        }
        _ => {
            items.structs.push(StructItem {
                name: name.clone(),
                line,
                fields,
            });
            j + 1
        }
    }
}

/// Parse `name: Type, …` fields between braces, splitting on top-level
/// commas (angle- and paren-aware) and skipping `#[…]` attributes and
/// visibility modifiers.
fn parse_named_fields(toks: &[Token], start: usize, end: usize, out: &mut Vec<FieldItem>) {
    let mut k = start;
    while k < end {
        // Skip attributes.
        while k < end && toks[k].kind == TokKind::Punct('#') {
            if toks.get(k + 1).map(|t| &t.kind) == Some(&TokKind::Punct('[')) {
                let mut depth = 0i32;
                let mut m = k + 1;
                while m < end {
                    match &toks[m].kind {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                k = m + 1;
            } else {
                k += 1;
            }
        }
        // Skip `pub` / `pub(crate)` / `pub(super)`.
        if k < end && toks[k].kind.ident() == Some("pub") {
            k += 1;
            if k < end && toks[k].kind == TokKind::Punct('(') {
                k = match_paren(toks, k, end).map_or(end, |c| c + 1);
            }
        }
        let Some(TokKind::Ident(fname)) = toks.get(k).filter(|_| k < end).map(|t| &t.kind) else {
            break;
        };
        let fline = toks[k].line;
        if toks.get(k + 1).map(|t| &t.kind) != Some(&TokKind::Punct(':')) {
            break;
        }
        // Type tokens up to the next top-level comma.
        let mut m = k + 2;
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut type_idents = Vec::new();
        while m < end {
            match &toks[m].kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') if toks[m - 1].kind != TokKind::Punct('-') => angle -= 1,
                TokKind::Punct('(' | '[') => paren += 1,
                TokKind::Punct(')' | ']') => paren -= 1,
                TokKind::Punct(',') if angle <= 0 && paren <= 0 => break,
                TokKind::Ident(s) => type_idents.push(s.clone()),
                _ => {}
            }
            m += 1;
        }
        out.push(FieldItem {
            name: fname.clone(),
            line: fline,
            type_idents,
        });
        k = m + 1;
    }
}

/// Context-free single scan for `static` items and `thread_local!`-style
/// macro uses, anywhere in the file (function bodies included — a local
/// `static` is still process-shared state).
fn collect_flat(toks: &[Token], items: &mut FileItems) {
    let mut k = 0;
    while k < toks.len() {
        if toks[k].kind.ident() == Some("static") {
            let mut j = k + 1;
            let mutable = toks.get(j).and_then(|t| t.kind.ident()) == Some("mut");
            if mutable {
                j += 1;
            }
            if let Some(TokKind::Ident(name)) = toks.get(j).map(|t| &t.kind) {
                if toks.get(j + 1).map(|t| &t.kind) == Some(&TokKind::Punct(':')) {
                    let mut m = j + 2;
                    let mut angle = 0i32;
                    let mut type_idents = Vec::new();
                    while m < toks.len() {
                        match &toks[m].kind {
                            TokKind::Punct('<') => angle += 1,
                            TokKind::Punct('>') if toks[m - 1].kind != TokKind::Punct('-') => {
                                angle -= 1;
                            }
                            TokKind::Punct('=' | ';') if angle <= 0 => break,
                            TokKind::Ident(s) => type_idents.push(s.clone()),
                            _ => {}
                        }
                        m += 1;
                    }
                    items.statics.push(StaticItem {
                        name: name.clone(),
                        line: toks[k].line,
                        mutable,
                        type_idents,
                    });
                    k = m;
                    continue;
                }
            }
        }
        if let Some(name) = toks[k].kind.ident() {
            if name == "thread_local"
                && toks.get(k + 1).map(|t| &t.kind) == Some(&TokKind::Punct('!'))
            {
                items.macros.push(MacroUse {
                    name: name.to_string(),
                    line: toks[k].line,
                });
            }
        }
        k += 1;
    }
}

fn match_brace(toks: &[Token], open: usize, end: usize) -> Option<usize> {
    match_pair(toks, open, end, '{', '}')
}

fn match_paren(toks: &[Token], open: usize, end: usize) -> Option<usize> {
    match_pair(toks, open, end, '(', ')')
}

fn match_pair(
    toks: &[Token],
    open_idx: usize,
    end: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in toks[open_idx..end.min(toks.len())].iter().enumerate() {
        if t.kind == TokKind::Punct(open) {
            depth += 1;
        } else if t.kind == TokKind::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(open_idx + off);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn fns_get_bodies_and_impl_owners() {
        let src = "\
fn free(x: u64) -> u64 { x + 1 }
struct S;
impl S {
    fn method(&self) {}
}
";
        let it = items(src);
        let names: Vec<&str> = it.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["free", "method"]);
        assert!(it.fns[0].owner.is_none());
        assert_eq!(it.fns[1].owner, Some(0));
        assert!(it.fns[0].body.1 > it.fns[0].body.0);
        assert_eq!(it.impls[0].fns, vec!["method"]);
    }

    #[test]
    fn trait_impls_record_trait_and_type() {
        let src = "\
impl super::SchedPolicy for Fcfs {
    fn init(&mut self) {}
    fn pick_next(&mut self) {}
}
impl<T: Clone> Wrapper<T> {
    fn get(&self) {}
}
impl SchedPolicy for Box<dyn SchedPolicy> {}
";
        let it = items(src);
        assert_eq!(it.impls[0].trait_name.as_deref(), Some("SchedPolicy"));
        assert_eq!(it.impls[0].type_name, "Fcfs");
        assert_eq!(it.impls[0].fns, vec!["init", "pick_next"]);
        assert_eq!(it.impls[1].trait_name, None);
        assert_eq!(it.impls[1].type_name, "Wrapper");
        assert_eq!(it.impls[2].trait_name.as_deref(), Some("SchedPolicy"));
        assert_eq!(it.impls[2].type_name, "Box");
    }

    #[test]
    fn struct_fields_carry_type_idents() {
        let src = "\
pub struct Dispatcher {
    pub queue: BTreeMap<u64, Task>,
    shared: Rc<RefCell<u64>>,
}
struct Pair(u64, Rc<u8>);
struct Unit;
";
        let it = items(src);
        assert_eq!(it.structs[0].fields[0].name, "queue");
        assert!(it.structs[0].fields[0]
            .type_idents
            .contains(&"BTreeMap".to_string()));
        assert!(it.structs[0].fields[1]
            .type_idents
            .contains(&"Rc".to_string()));
        assert_eq!(it.structs[1].fields.len(), 1);
        assert!(it.structs[1].fields[0]
            .type_idents
            .contains(&"Rc".to_string()));
        assert!(it.structs[2].fields.is_empty());
    }

    #[test]
    fn statics_and_thread_local_are_found_but_static_lifetimes_are_not() {
        let src = "\
static LIMIT: u64 = 4;
static mut RAW: u64 = 0;
static COUNTER: AtomicU64 = AtomicU64::new(0);
fn f(s: &'static str) -> &'static str { s }
thread_local! { static TLS: Cell<u64> = Cell::new(0); }
";
        let it = items(src);
        // thread_local!'s inner `static TLS` is also collected — that is
        // fine, the macro use itself is the finding anchor.
        let names: Vec<&str> = it.statics.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["LIMIT", "RAW", "COUNTER", "TLS"]);
        assert!(it.statics[1].mutable);
        assert!(it.statics[2].type_idents.contains(&"AtomicU64".to_string()));
        assert_eq!(it.macros.len(), 1);
        assert_eq!(it.macros[0].name, "thread_local");
    }

    #[test]
    fn arrow_in_signature_does_not_break_generics_tracking() {
        let src = "fn pick<F: Fn(u64) -> u64>(f: F) -> u64 { f(1) }\n";
        let it = items(src);
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].name, "pick");
        assert!(it.fns[0].body.1 > it.fns[0].body.0);
    }
}
