//! A dependency-free Rust lexer producing a line-annotated token stream.
//!
//! The legacy pass (see [`crate::legacy`]) scrubs comments and string
//! literals with a line-oriented state machine and then greps the
//! remains. That is fast but lexically blind: it cannot tell an aliased
//! import from a local type, and every rule is limited to what fits on
//! one line. This lexer is the foundation of the v2 token pass: it
//! produces real tokens with 1-based line spans, handling the corners
//! that fool lexical scans —
//!
//! * raw strings `r"…"` / `r#"…"#` with arbitrary hash depth (and raw
//!   *byte* strings `br#"…"#`),
//! * nested block comments `/* /* … */ */`,
//! * char literals vs. lifetimes (`'x'` vs `'a`), including escaped and
//!   quote chars (`'\''`, `'"'`) and byte chars `b'x'`,
//! * raw identifiers `r#type`,
//! * numeric literals with suffixes (`1_000u64`, `1.0e-9f64`, `0xff`),
//!   so a suffix never leaks an identifier token,
//! * doc vs. plain comments (waivers are directives and may only live
//!   in plain comments; doc text is documentation).
//!
//! String/char/number *contents* are dropped — rules only care that a
//! literal occupied the spot — but identifiers keep their text, which is
//! what alias resolution needs.

use std::fmt;

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// What the token is.
    pub kind: TokKind,
}

/// Token kinds, at the granularity the lint rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are unescaped: `r#type` → `type`).
    Ident(String),
    /// A lifetime such as `'a` or `'_` (name without the tick).
    Lifetime(String),
    /// String literal (`"…"`), contents dropped.
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`), contents dropped.
    RawStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`), contents dropped.
    Char,
    /// Numeric literal; true when it carries an `f32`/`f64` suffix.
    Num {
        /// Whether the literal ends in an explicit float suffix.
        float_suffix: bool,
    },
    /// A single punctuation character (`:`, `.`, `#`, `{`, …).
    Punct(char),
}

impl TokKind {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Ident(s) => write!(f, "{s}"),
            TokKind::Lifetime(s) => write!(f, "'{s}"),
            TokKind::Str => write!(f, "\"…\""),
            TokKind::RawStr => write!(f, "r\"…\""),
            TokKind::Char => write!(f, "'…'"),
            TokKind::Num { .. } => write!(f, "<num>"),
            TokKind::Punct(c) => write!(f, "{c}"),
        }
    }
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// Plain (non-doc) comment text concatenated per 0-based line index.
    /// Waiver directives are parsed from this; doc comments are excluded
    /// so documentation can *show* waiver syntax without enacting it.
    pub comments: Vec<String>,
    /// Total number of source lines.
    pub lines: usize,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_cont(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into tokens plus per-line plain-comment text.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let nlines = src.lines().count().max(1);
    let mut out = Lexed {
        tokens: Vec::new(),
        comments: vec![String::new(); nlines + 1],
        lines: nlines,
    };
    let mut i = 0;
    let mut line = 1usize;

    // Skip a shebang line (`#!/usr/bin/env …`) that is not an inner attribute.
    if chars.first() == Some(&'#') && chars.get(1) == Some(&'!') && chars.get(2) != Some(&'[') {
        while i < chars.len() && chars[i] != '\n' {
            i += 1;
        }
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            // Line comment (plain `//` or doc `///` / `//!`).
            '/' if next == Some('/') => {
                let mut j = i + 2;
                let doc = matches!(chars.get(j), Some('/') | Some('!'))
                    // `////…` is a plain comment again, not doc.
                    && !(chars.get(j) == Some(&'/') && chars.get(j + 1) == Some(&'/'));
                let start = j;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                if !doc {
                    let text: String = chars[start..j].iter().collect();
                    push_comment(&mut out.comments, line, &text);
                }
                i = j;
            }
            // Block comment, nested. Doc block comments (`/**`, `/*!`) are
            // excluded from waiver text just like doc line comments.
            '/' if next == Some('*') => {
                let mut j = i + 2;
                let doc =
                    matches!(chars.get(j), Some('*') | Some('!')) && chars.get(j + 1) != Some(&'/'); // `/**/` is empty, not doc
                let mut depth = 1u32;
                let mut text = String::new();
                let mut comment_line = line;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        text.push_str("/*");
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        if depth > 0 {
                            text.push_str("*/");
                        }
                        j += 2;
                    } else {
                        if chars[j] == '\n' {
                            if !doc {
                                push_comment(&mut out.comments, comment_line, &text);
                            }
                            text.clear();
                            line += 1;
                            comment_line = line;
                        } else {
                            text.push(chars[j]);
                        }
                        j += 1;
                    }
                }
                if !doc && !text.is_empty() {
                    push_comment(&mut out.comments, comment_line, &text);
                }
                i = j;
            }
            '"' => {
                i = skip_string(&chars, i + 1, &mut line);
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Str,
                });
            }
            '\'' => {
                // Char literal vs lifetime.
                let n1 = chars.get(i + 1).copied();
                let n2 = chars.get(i + 2).copied();
                if n1 == Some('\\') {
                    // Escaped char literal: skip to closing quote.
                    let mut j = i + 2;
                    while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Char,
                    });
                    i = j + 1;
                } else if n1.is_some_and(is_ident_start) && n2 != Some('\'') {
                    // Lifetime: tick + identifier, not closed by a quote.
                    let mut j = i + 1;
                    let start = j;
                    while j < chars.len() && is_ident_cont(chars[j]) {
                        j += 1;
                    }
                    let name: String = chars[start..j].iter().collect();
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Lifetime(name),
                    });
                    i = j;
                } else if n2 == Some('\'') && n1 != Some('\'') {
                    // Simple char literal 'x' (including '"' and digits).
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Char,
                    });
                    i += 3;
                } else {
                    // Bare tick (e.g. `'_` handled above; anything else:
                    // emit punct and move on).
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Punct('\''),
                    });
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let (j, float_suffix) = skip_number(&chars, i);
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Num { float_suffix },
                });
                i = j;
            }
            c if is_ident_start(c) => {
                // Check literal prefixes: r"…", r#"…"#, b"…", b'…', br"…",
                // and raw identifiers r#ident.
                let word_start = i;
                let mut j = i;
                while j < chars.len() && is_ident_cont(chars[j]) {
                    j += 1;
                }
                let word: String = chars[word_start..j].iter().collect();
                let after = chars.get(j).copied();
                match (word.as_str(), after) {
                    ("r", Some('"')) | ("br", Some('"')) => {
                        i = skip_raw_string(&chars, j + 1, 0, &mut line);
                        out.tokens.push(Token {
                            line,
                            kind: TokKind::RawStr,
                        });
                    }
                    ("r", Some('#')) | ("br", Some('#')) => {
                        let mut k = j;
                        let mut hashes = 0usize;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') {
                            i = skip_raw_string(&chars, k + 1, hashes, &mut line);
                            out.tokens.push(Token {
                                line,
                                kind: TokKind::RawStr,
                            });
                        } else if word == "r"
                            && hashes == 1
                            && chars.get(k).copied().is_some_and(is_ident_start)
                        {
                            // Raw identifier r#type → Ident("type").
                            let start = k;
                            let mut m = k;
                            while m < chars.len() && is_ident_cont(chars[m]) {
                                m += 1;
                            }
                            let name: String = chars[start..m].iter().collect();
                            out.tokens.push(Token {
                                line,
                                kind: TokKind::Ident(name),
                            });
                            i = m;
                        } else {
                            out.tokens.push(Token {
                                line,
                                kind: TokKind::Ident(word),
                            });
                            i = j;
                        }
                    }
                    ("b", Some('"')) => {
                        i = skip_string(&chars, j + 1, &mut line);
                        out.tokens.push(Token {
                            line,
                            kind: TokKind::Str,
                        });
                    }
                    ("b", Some('\'')) => {
                        // Byte char literal b'x' / b'\n'.
                        let mut k = j + 1;
                        if chars.get(k) == Some(&'\\') {
                            k += 1;
                            while k < chars.len() && chars[k] != '\'' && chars[k] != '\n' {
                                k += 1;
                            }
                        } else if k < chars.len() {
                            k += 1;
                        }
                        if chars.get(k) == Some(&'\'') {
                            k += 1;
                        }
                        out.tokens.push(Token {
                            line,
                            kind: TokKind::Char,
                        });
                        i = k;
                    }
                    _ => {
                        out.tokens.push(Token {
                            line,
                            kind: TokKind::Ident(word),
                        });
                        i = j;
                    }
                }
            }
            other => {
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Punct(other),
                });
                i += 1;
            }
        }
    }
    out
}

fn push_comment(comments: &mut [String], line: usize, text: &str) {
    if let Some(slot) = comments.get_mut(line - 1) {
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    }
}

/// Skip a (non-raw) string body starting just after the opening quote;
/// returns the index just past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string body starting just after the opening quote; returns
/// the index just past the closing `"##…`.
fn skip_raw_string(chars: &[char], mut i: usize, hashes: usize, line: &mut usize) -> usize {
    while i < chars.len() {
        if chars[i] == '"' {
            let mut seen = 0;
            let mut j = i + 1;
            while seen < hashes && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            if chars[i] == '\n' {
                *line += 1;
            }
            i += 1;
        }
    }
    i
}

/// Skip a numeric literal starting at `i` (which holds an ASCII digit);
/// returns (index past the literal, has-float-suffix). The suffix is
/// folded into the literal so `1.0f64` never yields an `f64` identifier.
fn skip_number(chars: &[char], mut i: usize) -> (usize, bool) {
    // Radix prefix?
    if chars[i] == '0' && matches!(chars.get(i + 1), Some('x') | Some('o') | Some('b')) {
        i += 2;
        while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        return (i, false);
    }
    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
        i += 1;
    }
    // Fractional part: a dot followed by a digit (so `0..5` and `1.method()`
    // keep their dots).
    if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        i += 1;
        while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
            i += 1;
        }
    } else if chars.get(i) == Some(&'.')
        && !chars
            .get(i + 1)
            .is_some_and(|c| is_ident_start(*c) || *c == '.')
    {
        // Trailing-dot float like `1.` (not a range, not a method call).
        i += 1;
    }
    // Exponent.
    if matches!(chars.get(i), Some('e') | Some('E')) {
        let mut j = i + 1;
        if matches!(chars.get(j), Some('+') | Some('-')) {
            j += 1;
        }
        if chars.get(j).is_some_and(|c| c.is_ascii_digit()) {
            i = j;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
        }
    }
    // Type suffix (u64, f64, usize, …) folded into the literal.
    let suffix_start = i;
    while i < chars.len() && is_ident_cont(chars[i]) {
        i += 1;
    }
    let suffix: String = chars[suffix_start..i].iter().collect();
    (i, suffix == "f32" || suffix == "f64")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn raw_strings_hide_contents_at_any_hash_depth() {
        let src = "let a = r\"x y\"; let b = r#\"p \"q\" r\"#; let c = r##\"s \"# t\"##;\n";
        assert_eq!(idents(src), vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn raw_byte_strings_and_byte_chars() {
        let src = "let a = br#\"HashMap\"#; let b = b\"Instant\"; let c = b'x'; let d = b'\\n';\n";
        assert_eq!(
            idents(src),
            vec!["let", "a", "let", "b", "let", "c", "let", "d"]
        );
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* a /* b */ still comment */ real\n";
        assert_eq!(idents(src), vec!["real"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let s = '_'; }\n");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Lifetime(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        // 'x', '\'' and the char literal '_' (underscore closes with a quote).
        assert_eq!(chars, 3);
    }

    #[test]
    fn raw_identifiers_unescape() {
        assert_eq!(idents("let r#type = 1;\n"), vec!["let", "type"]);
    }

    #[test]
    fn numeric_suffixes_do_not_leak_idents() {
        let src = "let x = 1.0f64 + 2e9 + 0xffu64 + 1_000.5e-3f32 + t.0;\n";
        assert_eq!(idents(src), vec!["let", "x", "t"]);
        let floats = lex(src)
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Num { float_suffix: true }))
            .count();
        assert_eq!(floats, 2);
    }

    #[test]
    fn ranges_are_not_floats() {
        let lexed = lex("for i in 0..5 { v[i] = i; }\n");
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* one\ntwo\nthree */\nmarker\n";
        let lexed = lex(src);
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].line, 4);
    }

    #[test]
    fn plain_comments_collected_doc_comments_excluded() {
        let src = "\
//! doc: simlint: allow(unordered, reason=doc text is not a directive)
/// also doc
// simlint: allow(unordered, reason=real)
/* block directive */ let x = 1; // trailing
";
        let lexed = lex(src);
        assert!(lexed.comments[0].is_empty(), "{:?}", lexed.comments[0]);
        assert!(lexed.comments[1].is_empty());
        assert!(lexed.comments[2].contains("simlint: allow(unordered"));
        assert!(lexed.comments[3].contains("block directive"));
        assert!(lexed.comments[3].contains("trailing"));
    }

    #[test]
    fn strings_never_produce_directive_comments_or_idents() {
        let src = "let s = \"// simlint: allow(unordered, reason=nope) HashMap\";\n";
        let lexed = lex(src);
        assert!(lexed.comments[0].is_empty());
        assert_eq!(idents(src), vec!["let", "s"]);
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let src = "let s = \"a \\\" b\"; let t = 'c';\nHashMap\n";
        let lexed = lex(src);
        let on_line_2: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.line == 2)
            .filter_map(|t| t.kind.ident())
            .collect();
        assert_eq!(on_line_2, vec!["HashMap"]);
    }
}
