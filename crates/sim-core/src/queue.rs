//! The engine's event queue: an indexed (slab-backed) priority queue that
//! is bit-for-bit order-identical to the naive `BinaryHeap<(time, seq,
//! event)>` it replaced, but cheaper on the hot path.
//!
//! # Why not `BinaryHeap<Entry<E>>`?
//!
//! The original engine kept whole entries — timestamp, sequence number and
//! the event payload — inside one `BinaryHeap`. Every sift during a push
//! or pop then moves the *payload* (system event alphabets are multi-word
//! enums) and every comparison goes through an `Ord` impl on the struct.
//! On the hottest loop in the repository that is pure overhead: ordering
//! only ever depends on `(time, seq)`.
//!
//! [`EventQueue`] splits the two concerns:
//!
//! * **Slab-backed payloads.** Events live in a free-list slab
//!   (`Vec<Option<E>>`); they are written once on push and taken once on
//!   pop. Sifts never touch them.
//! * **Key-only heap.** The heap is a plain `Vec` of `Copy` keys
//!   `(at, seq, slot)` with hand-rolled sift-up/sift-down on the compact
//!   `(u64, u64)` ordering — no allocation per push (slab slots and heap
//!   capacity are reused), no comparator indirection.
//! * **Same-instant lane (batched pop).** Discrete-event models burst:
//!   a NIC hop fires, and a run of events lands at the *same* nanosecond
//!   (`schedule_now` chains, simultaneous ring slots). When a pop opens
//!   instant `t`, every other pending key at `t` is drained — in sequence
//!   order — into a FIFO lane, and *new* pushes at `t` append to the lane
//!   in O(1), bypassing the heap entirely. FIFO tie-breaking is preserved
//!   exactly: lane entries carry their sequence numbers and the lane head
//!   competes with the heap minimum on `(time, seq)` at every pop.
//!
//! [`LegacyHeap`] keeps the original `BinaryHeap` implementation alive as
//! the executable specification: the property tests below drive both
//! queues through identical (and adversarial — including past-scheduled)
//! push/pop interleavings and demand identical pop sequences, and the
//! `perf` bench binary reports the measured speedup of new over old.

use core::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// A compact, `Copy` ordering key: everything a sift needs to move.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Key {
    at: u64,
    seq: u64,
    slot: u32,
}

impl Key {
    #[inline]
    fn rank(self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

/// The engine's indexed event queue. Pops strictly in `(time, seq)`
/// order, where `seq` is the queue-assigned insertion number — i.e.
/// time order with FIFO tie-breaking, exactly like the legacy heap.
pub struct EventQueue<E> {
    /// Min-heap of keys, hand-sifted on `(at, seq)`.
    heap: Vec<Key>,
    /// Payload slab; `Key::slot` indexes here.
    slab: Vec<Option<E>>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Same-instant lane: `(seq, slot)` pairs, all at `lane_at`, in
    /// strictly increasing `seq` order.
    lane: VecDeque<(u64, u32)>,
    /// The instant the lane serves. Pushes at exactly this time append to
    /// the lane instead of the heap.
    lane_at: u64,
    /// Next insertion sequence number.
    seq: u64,
    /// Live events (heap + lane).
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            lane: VecDeque::new(),
            // u64::MAX: no real push can match the unopened lane (an event
            // at the far end of the clock still orders correctly through
            // the key comparison in `pop`).
            lane_at: u64::MAX,
            seq: 0,
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The instant of the next event to pop, if any.
    pub fn peek_at(&self) -> Option<SimTime> {
        let lane = self.lane.front().map(|&(seq, _)| (self.lane_at, seq));
        let heap = self.heap.first().map(|k| k.rank());
        match (lane, heap) {
            (None, None) => None,
            (Some((at, _)), None) | (None, Some((at, _))) => Some(SimTime::from_nanos(at)),
            (Some(l), Some(h)) => Some(SimTime::from_nanos(l.min(h).0)),
        }
    }

    /// Insert `event` at instant `at`, after everything already queued for
    /// that instant. Returns the assigned sequence number.
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        let slot = self.alloc(event);
        if at.as_nanos() == self.lane_at {
            // Same instant as the open lane: sequence numbers only grow,
            // so appending keeps the lane sorted. O(1), no heap traffic.
            self.lane.push_back((seq, slot));
        } else {
            self.heap_push(Key {
                at: at.as_nanos(),
                seq,
                slot,
            });
        }
        self.len += 1;
        seq
    }

    /// Remove and return the earliest event as `(time, seq, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let lane_rank = self.lane.front().map(|&(seq, _)| (self.lane_at, seq));
        let heap_rank = self.heap.first().map(|k| k.rank());
        let from_lane = match (lane_rank, heap_rank) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // `<` would do — the two streams never share a (time, seq) —
            // but `<=` keeps the decision total.
            (Some(l), Some(h)) => l <= h,
        };
        self.len -= 1;
        if from_lane {
            let (seq, slot) = self.lane.pop_front().expect("lane checked non-empty");
            let ev = self.take(slot);
            return Some((SimTime::from_nanos(self.lane_at), seq, ev));
        }
        let k = self.heap_pop().expect("heap checked non-empty");
        // Batched pop: opening instant `k.at` drains the run of
        // equal-timestamp keys into the lane (heap pops at equal time come
        // out in seq order, so the lane stays sorted) and re-targets the
        // lane so follow-up pushes at this instant skip the heap. Only a
        // *clean* lane may be re-targeted: a non-empty lane still holds a
        // different instant (reachable only through past-scheduled events,
        // i.e. the invariant checker's test hook) and must keep competing
        // through the key comparison above.
        if self.lane.is_empty() {
            self.lane_at = k.at;
            while self.heap.first().is_some_and(|n| n.at == k.at) {
                let n = self.heap_pop().expect("peeked entry pops");
                self.lane.push_back((n.seq, n.slot));
            }
        }
        Some((SimTime::from_nanos(k.at), k.seq, self.take(k.slot)))
    }

    fn alloc(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slab[slot as usize].is_none());
                self.slab[slot as usize] = Some(event);
                slot
            }
            None => {
                let slot =
                    u32::try_from(self.slab.len()).expect("more than u32::MAX events pending");
                self.slab.push(Some(event));
                slot
            }
        }
    }

    fn take(&mut self, slot: u32) -> E {
        let ev = self.slab[slot as usize].take().expect("slot is live");
        self.free.push(slot);
        ev
    }

    /// Heap arity. A 4-ary layout halves the tree depth of the binary
    /// heap: pushes sift through half as many levels, pops touch half as
    /// many cache lines, and the four children of a node share one cache
    /// line of keys — a well-known discrete-event-queue win that needs no
    /// unsafe holes to beat `BinaryHeap`'s optimized binary sift.
    const D: usize = 4;

    /// Hole-based insertion: the new key rides a "hole" up the tree, so
    /// each level costs one parent move instead of a three-move swap.
    fn heap_push(&mut self, k: Key) {
        self.heap.push(k);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / Self::D;
            if self.heap[parent].rank() <= k.rank() {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = k;
    }

    /// Hole-based removal: the displaced last leaf rides a hole down from
    /// the root along the smallest-child path until it fits.
    fn heap_pop(&mut self) -> Option<Key> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("checked non-empty");
        let n = self.heap.len();
        if n > 0 {
            let last_rank = last.rank();
            let mut i = 0;
            loop {
                let first_child = Self::D * i + 1;
                if first_child >= n {
                    break;
                }
                let mut child = first_child;
                let mut child_rank = self.heap[child].rank();
                let fan_end = (first_child + Self::D).min(n);
                for c in first_child + 1..fan_end {
                    let r = self.heap[c].rank();
                    if r < child_rank {
                        child = c;
                        child_rank = r;
                    }
                }
                if last_rank <= child_rank {
                    break;
                }
                self.heap[i] = self.heap[child];
                i = child;
            }
            self.heap[i] = last;
        }
        Some(top)
    }
}

// ---------------------------------------------------------------------------
// The executable specification: the pre-optimization heap, verbatim.
// ---------------------------------------------------------------------------

struct LegacyEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for LegacyEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for LegacyEntry<E> {}
impl<E> PartialOrd for LegacyEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for LegacyEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the std max-heap must yield the smallest (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The engine's original event queue — `BinaryHeap` over whole entries —
/// kept as the reference implementation. The property tests drive it and
/// [`EventQueue`] through identical interleavings and require identical
/// pop sequences; the `perf` bench binary measures the speedup of the
/// indexed queue over this one. Not used by the engine.
pub struct LegacyHeap<E> {
    heap: BinaryHeap<LegacyEntry<E>>,
    seq: u64,
}

impl<E> Default for LegacyHeap<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> LegacyHeap<E> {
    /// An empty queue.
    pub fn new() -> Self {
        LegacyHeap {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The instant of the next event to pop, if any.
    pub fn peek_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Insert `event` at instant `at`; FIFO among equal instants.
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(LegacyEntry { at, seq, event });
        seq
    }

    /// Remove and return the earliest event as `(time, seq, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a1");
        q.push(SimTime::from_nanos(10), "a2");
        q.push(SimTime::from_nanos(20), "b");
        let mut out = Vec::new();
        while let Some((t, _, e)) = q.pop() {
            out.push((t.as_nanos(), e));
        }
        assert_eq!(out, vec![(10, "a1"), (10, "a2"), (20, "b"), (30, "c")]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_pushes_during_a_run_keep_fifo_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 0u32);
        q.push(SimTime::from_nanos(5), 1);
        let first = q.pop().unwrap();
        assert_eq!((first.0.as_nanos(), first.2), (5, 0));
        // Mid-run push at the open instant: must land after the drained
        // run (higher seq), served from the lane.
        q.push(SimTime::from_nanos(5), 2);
        q.push(SimTime::from_nanos(7), 9);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(1));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(2));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(9));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_at_tracks_the_global_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_at(), None);
        q.push(SimTime::from_nanos(40), ());
        assert_eq!(q.peek_at(), Some(SimTime::from_nanos(40)));
        q.push(SimTime::from_nanos(15), ());
        assert_eq!(q.peek_at(), Some(SimTime::from_nanos(15)));
        q.pop();
        assert_eq!(q.peek_at(), Some(SimTime::from_nanos(40)));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            for i in 0..100 {
                q.push(SimTime::from_nanos(round * 1000 + i), i);
            }
            for _ in 0..100 {
                q.pop().unwrap();
            }
        }
        assert!(q.is_empty());
        assert!(
            q.slab.len() <= 100,
            "slab grew past the high-water mark: {}",
            q.slab.len()
        );
    }

    /// A deterministic xorshift so the equivalence tests below can build
    /// large adversarial interleavings without proptest overhead.
    fn xorshift(x: &mut u64) -> u64 {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        *x
    }

    #[test]
    fn matches_legacy_heap_under_random_interleavings() {
        for seed in 1..=20u64 {
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut fast = EventQueue::new();
            let mut slow = LegacyHeap::new();
            let mut fast_out = Vec::new();
            let mut slow_out = Vec::new();
            for step in 0..2000 {
                let r = xorshift(&mut s);
                if r % 3 != 0 || fast.is_empty() {
                    // Push: mostly clustered times (forcing ties), with a
                    // dash of far-future and deliberately *past* instants —
                    // the unchecked-scheduling corner the invariant checker
                    // exists for must order identically too.
                    let at = SimTime::from_nanos(match r % 16 {
                        0..=9 => (r >> 8) % 64,
                        10..=13 => (r >> 8) % 4096,
                        _ => (r >> 8) % 8,
                    });
                    let label = step as u32;
                    let sa = fast.push(at, label);
                    let sb = slow.push(at, label);
                    assert_eq!(sa, sb, "sequence numbering diverged");
                } else {
                    fast_out.push(fast.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
                    slow_out.push(slow.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
                }
                assert_eq!(fast.len(), slow.len());
                assert_eq!(fast.peek_at(), slow.peek_at());
            }
            while !slow.is_empty() {
                fast_out.push(fast.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
                slow_out.push(slow.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
            }
            assert_eq!(fast.pop(), None);
            assert_eq!(
                fast_out, slow_out,
                "seed {seed}: indexed queue diverged from the legacy heap"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The indexed queue and the legacy heap produce identical
        /// `(time, seq, event)` pop sequences — FIFO tie-breaks included —
        /// under seeded random event streams with interleaved pops.
        #[test]
        fn indexed_queue_is_pop_identical_to_legacy_heap(
            ops in proptest::collection::vec(
                // (is_push, time): small time range to force heavy ties.
                (any::<bool>(), 0u64..48),
                1..400,
            )
        ) {
            let mut fast = EventQueue::new();
            let mut slow = LegacyHeap::new();
            let mut fast_out = Vec::new();
            let mut slow_out = Vec::new();
            for (i, &(is_push, t)) in ops.iter().enumerate() {
                if is_push {
                    fast.push(SimTime::from_nanos(t), i);
                    slow.push(SimTime::from_nanos(t), i);
                } else {
                    fast_out.push(fast.pop());
                    slow_out.push(slow.pop());
                }
                prop_assert_eq!(fast.len(), slow.len());
            }
            loop {
                let (a, b) = (fast.pop(), slow.pop());
                let done = a.is_none() && b.is_none();
                fast_out.push(a);
                slow_out.push(b);
                if done { break; }
            }
            prop_assert_eq!(fast_out, slow_out);
        }
    }
}
