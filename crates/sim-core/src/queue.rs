//! The engine's event queue: a three-lane indexed priority queue that is
//! bit-for-bit order-identical to the naive `BinaryHeap<(time, seq,
//! event)>` it replaced, but cheaper on the hot path — including under
//! the standing far-future timer populations and cancel-heavy timeout
//! traffic real NIC models generate.
//!
//! # Why not `BinaryHeap<Entry<E>>`?
//!
//! The original engine kept whole entries — timestamp, sequence number and
//! the event payload — inside one `BinaryHeap`. Every sift during a push
//! or pop then moves the *payload* (system event alphabets are multi-word
//! enums) and every comparison goes through an `Ord` impl on the struct.
//! On the hottest loop in the repository that is pure overhead: ordering
//! only ever depends on `(time, seq)`.
//!
//! [`EventQueue`] splits event storage from event ordering, and splits
//! ordering itself across three lanes by firing distance:
//!
//! * **Slab arena with validated handles.** Events live in a free-list
//!   slab; they are written once on push and taken once on pop or cancel.
//!   Sifts never touch them. Each slot remembers the insertion sequence
//!   number of its tenant, and a [`TimerHandle`] is `(slot, seq)`: since
//!   `seq` is globally unique for the life of the queue, a handle can be
//!   validated in O(1) forever — cancelling an already-fired timer, or a
//!   handle whose slot has been recycled, is a safe no-op rather than a
//!   use-after-free of someone else's event.
//! * **Same-instant lane (batched pop).** Discrete-event models burst: a
//!   NIC hop fires, and a run of events lands at the *same* nanosecond
//!   (`schedule_now` chains, simultaneous ring slots). When a pop opens
//!   instant `t`, every other pending key at `t` is drained — in sequence
//!   order — into a FIFO lane, and *new* pushes at `t` append to the lane
//!   in O(1), bypassing the heap entirely.
//! * **Near heap.** Events due inside the wheel's open bucket (`at <=
//!   horizon`) sit in a plain `Vec` of `Copy` keys `(at, seq, slot)` with
//!   hand-rolled 4-ary sift-up/sift-down — no allocation per push, no
//!   comparator indirection, and the population stays tiny because
//!   everything farther out lives in the wheel.
//! * **Far wheel.** Events beyond the horizon land in a hierarchical
//!   timer wheel ([`crate::wheel`]): O(1) insert into a time bucket. When
//!   the near lanes drain, the next occupied bucket is promoted as a
//!   *sorted run* — sorted once, served off its tail in O(1) per pop —
//!   so a promoted key never pays heap sifts at all. A standing backlog
//!   of 100k retransmit timers costs the hot path nothing — it is not in
//!   the heap being sifted over.
//!
//! # Cancellation: eager payload free, lazy index removal
//!
//! [`EventQueue::cancel`] takes the payload out of the slab and recycles
//! the slot *immediately* — no lane ever holds a live payload hostage, so
//! slots cannot leak no matter where the index entry sits. The stale key
//! left behind in the heap, lane or wheel is dropped lazily when it
//! surfaces (its `seq` no longer matches the slot's tenant). A global
//! count of outstanding stale keys keeps the no-cancellation fast path at
//! a single predictable branch.
//!
//! # Ordering contract
//!
//! Pops come out strictly in `(time, seq)` order — time order with FIFO
//! tie-breaking by insertion sequence. [`LegacyHeap`] keeps the original
//! `BinaryHeap` implementation alive as the executable specification: the
//! property tests below drive both queues through identical (and
//! adversarial — past-scheduled, far-future, cancel- and
//! reschedule-heavy) interleavings and demand identical pop sequences,
//! and the `perf` bench binary reports the measured speedup of new over
//! old on every shape.

use core::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::time::SimTime;
use crate::wheel::{Wheel, GRANULARITY};

/// A compact, `Copy` ordering key: everything a sift needs to move.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Key {
    pub(crate) at: u64,
    pub(crate) seq: u64,
    pub(crate) slot: u32,
}

impl Key {
    #[inline]
    fn rank(self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

/// A validated reference to a pending event, returned by
/// [`EventQueue::push_handle`]. The handle stays cheap to check forever:
/// `seq` is unique over the queue's lifetime, so a handle whose event has
/// fired, been cancelled, or whose slot now hosts a different event simply
/// fails validation — [`EventQueue::cancel`] on it returns `None` instead
/// of touching the wrong payload. Handles are only meaningful on the
/// queue that issued them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimerHandle {
    slot: u32,
    seq: u64,
}

impl TimerHandle {
    /// The insertion sequence number this handle refers to — the same
    /// value [`EventQueue::push`] returns, useful for logs and tests.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// One arena slot: the payload plus the sequence number of its tenant,
/// which doubles as the handle-validation generation (sequence numbers
/// are never reused, so no wraparound case exists).
struct Slot<E> {
    seq: u64,
    ev: Option<E>,
}

/// The engine's indexed event queue. Pops strictly in `(time, seq)`
/// order, where `seq` is the queue-assigned insertion number — i.e.
/// time order with FIFO tie-breaking, exactly like the legacy heap.
pub struct EventQueue<E> {
    /// Min-heap of near keys, hand-sifted on `(at, seq)`.
    heap: Vec<Key>,
    /// Payload arena; `Key::slot` indexes here.
    slab: Vec<Slot<E>>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Same-instant lane: `(seq, slot)` pairs, all at `lane_at`, in
    /// strictly increasing `seq` order.
    lane: VecDeque<(u64, u32)>,
    /// The instant the lane serves. Pushes at exactly this time append to
    /// the lane instead of the heap.
    lane_at: u64,
    /// Far-future lane: hierarchical timer wheel holding every pending
    /// key with `at > horizon`.
    wheel: Wheel,
    /// Start of the wheel's open level-0 bucket; always a multiple of the
    /// wheel granularity, and never moves backwards.
    floor: u64,
    /// Last instant (inclusive) served by the near lanes: `floor +
    /// granularity - 1`. Pushes at or before it go to the lane or heap;
    /// later pushes go to the wheel.
    horizon: u64,
    /// The promoted wheel bucket currently being served: keys sorted
    /// *descending* by `(at, seq)` so the minimum pops off the tail in
    /// O(1). A bucket is sorted once at promotion — far cheaper than
    /// sifting every key through the heap and back out — and the heap
    /// only ever holds keys pushed *after* that promotion, so every run
    /// key orders before any equal-instant heap key by construction.
    /// Drained before the next refill; its capacity is recycled.
    run: Vec<Key>,
    /// Cancelled index entries still resident in some lane. Kept global
    /// so the no-cancellation fast path pays one branch, not one handle
    /// validation per pop.
    stale: usize,
    /// Next insertion sequence number.
    seq: u64,
    /// Live events (pushed minus popped minus cancelled).
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            lane: VecDeque::new(),
            // u64::MAX exceeds any horizon, so no push can match the
            // unopened lane: routing checks the horizon first.
            lane_at: u64::MAX,
            wheel: Wheel::new(),
            floor: 0,
            horizon: GRANULARITY - 1,
            run: Vec::new(),
            stale: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Payloads currently resident in the arena. Equals [`len`] at all
    /// times — cancel and pop free slots eagerly — and must be zero once
    /// the queue drains; the engine's end-of-run leak audit checks this
    /// directly against the slab rather than trusting the counter.
    ///
    /// [`len`]: EventQueue::len
    pub fn live_payloads(&self) -> usize {
        self.slab.iter().filter(|s| s.ev.is_some()).count()
    }

    /// The instant of the next event to pop, if any. Takes `&mut self`:
    /// answering may require dropping cancelled entries and promoting the
    /// next wheel bucket into the near heap (state motion, never
    /// order-visible).
    pub fn peek_at(&mut self) -> Option<SimTime> {
        if !self.settle() {
            return None;
        }
        let lane = self.lane.front().map(|&(seq, _)| (self.lane_at, seq));
        let near = match (
            self.run.last().map(|k| k.rank()),
            self.heap.first().map(|k| k.rank()),
        ) {
            (Some(r), Some(h)) => Some(r.min(h)),
            (r, h) => r.or(h),
        };
        match (lane, near) {
            (None, None) => None,
            (Some((at, _)), None) | (None, Some((at, _))) => Some(SimTime::from_nanos(at)),
            (Some(l), Some(h)) => Some(SimTime::from_nanos(l.min(h).0)),
        }
    }

    /// Insert `event` at instant `at`, after everything already queued for
    /// that instant. Returns the assigned sequence number.
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        self.push_handle(at, event).seq
    }

    /// [`push`], but returning a [`TimerHandle`] that can later cancel or
    /// reschedule the event in O(1).
    ///
    /// [`push`]: EventQueue::push
    pub fn push_handle(&mut self, at: SimTime, event: E) -> TimerHandle {
        let seq = self.seq;
        self.seq += 1;
        let slot = self.alloc(seq, event);
        let at = at.as_nanos();
        if at <= self.horizon {
            if at == self.lane_at {
                // Same instant as the open lane: sequence numbers only
                // grow, so appending keeps the lane sorted. O(1).
                self.lane.push_back((seq, slot));
            } else {
                self.heap_push(Key { at, seq, slot });
            }
        } else {
            self.wheel.schedule_far(self.floor, Key { at, seq, slot });
        }
        self.len += 1;
        TimerHandle { slot, seq }
    }

    /// Cancel a pending event, returning its payload, or `None` if the
    /// handle is no longer live (already fired, cancelled, or
    /// rescheduled). The arena slot is recycled immediately — cancellation
    /// never leaks storage — while the index entry left in the heap, lane
    /// or wheel is dropped lazily when it surfaces.
    pub fn cancel(&mut self, handle: TimerHandle) -> Option<E> {
        let slot = self.slab.get_mut(handle.slot as usize)?;
        if slot.seq != handle.seq {
            return None;
        }
        let ev = slot.ev.take()?;
        self.free.push(handle.slot);
        self.len -= 1;
        self.stale += 1;
        Some(ev)
    }

    /// Move a pending event to a new instant (decrease- or increase-key),
    /// keeping its payload. Returns the new handle, or `None` if the old
    /// handle is no longer live. The rescheduled event is ordered as a
    /// fresh insertion at `at` — exactly the cancel-then-push the legacy
    /// heap specification performs, consuming one sequence number.
    pub fn reschedule(&mut self, handle: TimerHandle, at: SimTime) -> Option<TimerHandle> {
        let ev = self.cancel(handle)?;
        Some(self.push_handle(at, ev))
    }

    /// Remove and return the earliest event as `(time, seq, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if !self.settle() {
            return None;
        }
        let lane_rank = self.lane.front().map(|&(seq, _)| (self.lane_at, seq));
        let run_rank = self.run.last().map(|k| k.rank());
        let heap_rank = self.heap.first().map(|k| k.rank());
        // The three streams never share a `(time, seq)` — `<=` merely
        // keeps the decisions total.
        let run_first = match (run_rank, heap_rank) {
            (Some(r), Some(h)) => r <= h,
            (Some(_), None) => true,
            _ => false,
        };
        let key_rank = if run_first { run_rank } else { heap_rank };
        let from_lane = match (lane_rank, key_rank) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(l), Some(k)) => l <= k,
        };
        self.len -= 1;
        if from_lane {
            let (seq, slot) = self.lane.pop_front().expect("lane checked non-empty");
            let ev = self.take(slot);
            return Some((SimTime::from_nanos(self.lane_at), seq, ev));
        }
        let k = if run_first {
            self.run.pop().expect("run checked non-empty")
        } else {
            self.heap_pop().expect("heap checked non-empty")
        };
        // Batched pop: opening instant `k.at` drains the equal-timestamp
        // keys into the lane in seq order — run keys first (each run key
        // predates every heap key, so its seq is smaller), then heap pops,
        // which come out seq-ordered at equal time — and re-targets the
        // lane so follow-up pushes at this instant skip the heap. Drained
        // keys are *not* validated here — a cancelled one is dropped by
        // `settle` when it reaches the lane head. Only a *clean* lane may
        // be re-targeted: a non-empty lane still holds a different instant
        // (reachable only through past-scheduled events, i.e. the
        // invariant checker's test hook) and must keep competing through
        // the key comparison above.
        if self.lane.is_empty() {
            self.lane_at = k.at;
            while self.run.last().is_some_and(|n| n.at == k.at) {
                let n = self.run.pop().expect("peeked entry pops");
                self.lane.push_back((n.seq, n.slot));
            }
            while self.heap.first().is_some_and(|n| n.at == k.at) {
                let n = self.heap_pop().expect("peeked entry pops");
                self.lane.push_back((n.seq, n.slot));
            }
        }
        Some((SimTime::from_nanos(k.at), k.seq, self.take(k.slot)))
    }

    /// Establish "the near minimum is live": drop cancelled entries from
    /// whichever near lane currently holds the minimum, and promote wheel
    /// buckets whenever the near lanes run dry while events remain.
    /// Returns false when no live event is pending. On the cancel-free
    /// fast path this is one counter branch plus one emptiness check.
    #[inline]
    fn settle(&mut self) -> bool {
        // Index-entry conservation: every pending or cancelled-but-unswept
        // event sits in exactly one lane.
        debug_assert_eq!(
            self.lane.len() + self.heap.len() + self.run.len() + self.wheel.count(),
            self.len + self.stale,
            "index entries out of conservation"
        );
        if self.len == 0 {
            return false;
        }
        loop {
            if self.stale == 0 {
                // Every resident entry is live; just make sure the near
                // lanes are fed.
                if self.lane.is_empty() && self.heap.is_empty() && self.run.is_empty() {
                    self.refill();
                }
                debug_assert!(
                    !self.lane.is_empty() || !self.heap.is_empty() || !self.run.is_empty()
                );
                return true;
            }
            let lane_rank = self.lane.front().map(|&(seq, _)| (self.lane_at, seq));
            let run_rank = self.run.last().map(|k| k.rank());
            let heap_rank = self.heap.first().map(|k| k.rank());
            let run_first = match (run_rank, heap_rank) {
                (Some(r), Some(h)) => r <= h,
                (Some(_), None) => true,
                _ => false,
            };
            let key_rank = if run_first { run_rank } else { heap_rank };
            let from_lane = match (lane_rank, key_rank) {
                (None, None) => {
                    self.refill();
                    continue;
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(l), Some(k)) => l <= k,
            };
            // Validate the minimum — the entry the next pop would take.
            // Anything stale deeper in a lane is harmless until it
            // becomes the minimum itself.
            if from_lane {
                let &(seq, slot) = self.lane.front().expect("checked non-empty");
                if self.is_live(slot, seq) {
                    return true;
                }
                self.lane.pop_front();
            } else if run_first {
                let k = *self.run.last().expect("checked non-empty");
                if self.is_live(k.slot, k.seq) {
                    return true;
                }
                self.run.pop();
            } else {
                let k = *self.heap.first().expect("checked non-empty");
                if self.is_live(k.slot, k.seq) {
                    return true;
                }
                self.heap_pop();
            }
            self.stale -= 1;
        }
    }

    /// Promote the next occupied wheel bucket into the sorted run,
    /// advancing the floor/horizon and dropping cancelled entries on the
    /// way. One `sort_unstable` over the bucket replaces a heap push *and*
    /// a full-depth heap pop per key. Leaves the run non-empty unless the
    /// wheel holds no live entries.
    fn refill(&mut self) {
        debug_assert!(self.run.is_empty(), "refill with an unserved run");
        loop {
            let Some(new_floor) = self.wheel.open_next(self.floor, &mut self.run) else {
                return;
            };
            debug_assert!(new_floor > self.floor || self.floor == 0);
            self.floor = new_floor;
            self.horizon = new_floor + (GRANULARITY - 1);
            let before = self.run.len();
            let slab = &self.slab;
            self.run.retain(|k| {
                slab[k.slot as usize].seq == k.seq && slab[k.slot as usize].ev.is_some()
            });
            self.stale -= before - self.run.len();
            if !self.run.is_empty() {
                self.run
                    .sort_unstable_by_key(|k| core::cmp::Reverse(k.rank()));
                return;
            }
            // The whole bucket was cancelled entries; keep advancing.
        }
    }

    #[inline]
    fn is_live(&self, slot: u32, seq: u64) -> bool {
        let s = &self.slab[slot as usize];
        s.seq == seq && s.ev.is_some()
    }

    fn alloc(&mut self, seq: u64, event: E) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slab[slot as usize];
                debug_assert!(s.ev.is_none());
                s.seq = seq;
                s.ev = Some(event);
                slot
            }
            None => {
                let slot =
                    u32::try_from(self.slab.len()).expect("more than u32::MAX events pending");
                self.slab.push(Slot {
                    seq,
                    ev: Some(event),
                });
                slot
            }
        }
    }

    fn take(&mut self, slot: u32) -> E {
        let ev = self.slab[slot as usize].ev.take().expect("slot is live");
        self.free.push(slot);
        ev
    }

    /// Heap arity. A 4-ary layout halves the tree depth of the binary
    /// heap: pushes sift through half as many levels, pops touch half as
    /// many cache lines, and the four children of a node share one cache
    /// line of keys — a well-known discrete-event-queue win that needs no
    /// unsafe holes to beat `BinaryHeap`'s optimized binary sift.
    const D: usize = 4;

    /// Hole-based insertion: the new key rides a "hole" up the tree, so
    /// each level costs one parent move instead of a three-move swap.
    fn heap_push(&mut self, k: Key) {
        self.heap.push(k);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / Self::D;
            if self.heap[parent].rank() <= k.rank() {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = k;
    }

    /// Hole-based removal: the displaced last leaf rides a hole down from
    /// the root along the smallest-child path until it fits.
    fn heap_pop(&mut self) -> Option<Key> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("checked non-empty");
        let n = self.heap.len();
        if n > 0 {
            let last_rank = last.rank();
            let mut i = 0;
            loop {
                let first_child = Self::D * i + 1;
                if first_child >= n {
                    break;
                }
                let mut child = first_child;
                let mut child_rank = self.heap[child].rank();
                let fan_end = (first_child + Self::D).min(n);
                for c in first_child + 1..fan_end {
                    let r = self.heap[c].rank();
                    if r < child_rank {
                        child = c;
                        child_rank = r;
                    }
                }
                if last_rank <= child_rank {
                    break;
                }
                self.heap[i] = self.heap[child];
                i = child;
            }
            self.heap[i] = last;
        }
        Some(top)
    }
}

// ---------------------------------------------------------------------------
// The executable specification: the pre-optimization heap, verbatim, plus
// the obviously-correct form of cancellation (tombstones).
// ---------------------------------------------------------------------------

struct LegacyEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for LegacyEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for LegacyEntry<E> {}
impl<E> PartialOrd for LegacyEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for LegacyEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the std max-heap must yield the smallest (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The engine's original event queue — `BinaryHeap` over whole entries —
/// kept as the reference implementation. The property tests drive it and
/// [`EventQueue`] through identical interleavings and require identical
/// pop sequences; the `perf` bench binary measures the speedup of the
/// indexed queue over this one. Not used by the engine.
///
/// Cancellation here is the textbook tombstone scheme: a cancelled
/// sequence number is remembered and skipped when it surfaces, with the
/// heap top scrubbed eagerly so `peek_at` and `len` stay truthful. Slow,
/// but self-evidently order-preserving — which is the point of a spec.
pub struct LegacyHeap<E> {
    heap: BinaryHeap<LegacyEntry<E>>,
    seq: u64,
    tombstones: BTreeSet<u64>,
}

impl<E> Default for LegacyHeap<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> LegacyHeap<E> {
    /// An empty queue.
    pub fn new() -> Self {
        LegacyHeap {
            heap: BinaryHeap::new(),
            seq: 0,
            tombstones: BTreeSet::new(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.tombstones.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The instant of the next event to pop, if any. (The top is never a
    /// tombstone: cancel and pop scrub eagerly.)
    pub fn peek_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Insert `event` at instant `at`; FIFO among equal instants.
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(LegacyEntry { at, seq, event });
        seq
    }

    /// Cancel the pending event with sequence number `seq`. Returns
    /// whether it was pending. Spec-grade: the pending check is an O(n)
    /// scan, so tests get precise answers for arbitrary (dead, duplicate,
    /// never-issued) sequence numbers.
    pub fn cancel(&mut self, seq: u64) -> bool {
        let pending = !self.tombstones.contains(&seq) && self.heap.iter().any(|e| e.seq == seq);
        if pending {
            self.tombstones.insert(seq);
            self.scrub_top();
        }
        pending
    }

    /// [`cancel`] without the O(n) pending scan, for benchmarking the
    /// tombstone mechanism itself: the caller guarantees `seq` is
    /// pending.
    ///
    /// [`cancel`]: LegacyHeap::cancel
    pub fn cancel_unchecked(&mut self, seq: u64) {
        debug_assert!(!self.tombstones.contains(&seq), "double cancel");
        self.tombstones.insert(seq);
        self.scrub_top();
    }

    /// Remove and return the earliest event as `(time, seq, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let e = self.heap.pop()?;
        debug_assert!(!self.tombstones.contains(&e.seq), "top was a tombstone");
        if !self.tombstones.is_empty() {
            self.scrub_top();
        }
        Some((e.at, e.seq, e.event))
    }

    /// Restore the invariant that the heap top is live.
    fn scrub_top(&mut self) {
        loop {
            let Some(seq) = self.heap.peek().map(|e| e.seq) else {
                return;
            };
            if !self.tombstones.remove(&seq) {
                return;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a1");
        q.push(SimTime::from_nanos(10), "a2");
        q.push(SimTime::from_nanos(20), "b");
        let mut out = Vec::new();
        while let Some((t, _, e)) = q.pop() {
            out.push((t.as_nanos(), e));
        }
        assert_eq!(out, vec![(10, "a1"), (10, "a2"), (20, "b"), (30, "c")]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_pushes_during_a_run_keep_fifo_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 0u32);
        q.push(SimTime::from_nanos(5), 1);
        let first = q.pop().unwrap();
        assert_eq!((first.0.as_nanos(), first.2), (5, 0));
        // Mid-run push at the open instant: must land after the drained
        // run (higher seq), served from the lane.
        q.push(SimTime::from_nanos(5), 2);
        q.push(SimTime::from_nanos(7), 9);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(1));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(2));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(9));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_at_tracks_the_global_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_at(), None);
        q.push(SimTime::from_nanos(40), ());
        assert_eq!(q.peek_at(), Some(SimTime::from_nanos(40)));
        q.push(SimTime::from_nanos(15), ());
        assert_eq!(q.peek_at(), Some(SimTime::from_nanos(15)));
        q.pop();
        assert_eq!(q.peek_at(), Some(SimTime::from_nanos(40)));
    }

    #[test]
    fn far_future_events_pop_in_order_across_wheel_levels() {
        let mut q = EventQueue::new();
        // One event per wheel level, pushed out of order, plus a near one.
        let times = [
            1u64 << 40,
            5,
            1 << 8,
            1 << 14,
            1 << 20,
            1 << 26,
            1 << 32,
            u64::MAX,
        ];
        for &t in &times {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        for want in sorted {
            let (t, _, e) = q.pop().unwrap();
            assert_eq!(t.as_nanos(), want);
            assert_eq!(e, want);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            for i in 0..100 {
                q.push(SimTime::from_nanos(round * 1000 + i), i);
            }
            for _ in 0..100 {
                q.pop().unwrap();
            }
        }
        assert!(q.is_empty());
        assert!(
            q.slab.len() <= 100,
            "slab grew past the high-water mark: {}",
            q.slab.len()
        );
    }

    #[test]
    fn cancel_frees_the_slot_eagerly_and_skips_the_event() {
        let mut q = EventQueue::new();
        let a = q.push_handle(SimTime::from_nanos(10), "a");
        let b = q.push_handle(SimTime::from_nanos(20), "b");
        let c = q.push_handle(SimTime::from_nanos(1 << 30), "far");
        assert_eq!(q.len(), 3);
        assert_eq!(q.cancel(b), Some("b"));
        assert_eq!(q.len(), 2);
        // The slot is free *now*: a new push reuses it while b's stale key
        // still sits in the index, and the stale key must not resurrect it.
        let reused = q.push_handle(SimTime::from_nanos(30), "b2");
        assert_eq!(q.slab.iter().filter(|s| s.ev.is_some()).count(), 3);
        assert_eq!(q.cancel(b), None, "dead handle stays dead after reuse");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!["a", "b2", "far"]);
        assert_eq!(q.cancel(a), None, "fired handle is dead");
        assert_eq!(q.cancel(c), None);
        assert_eq!(q.cancel(reused), None);
        assert_eq!(q.live_payloads(), 0);
    }

    #[test]
    fn cancel_works_in_every_lane() {
        let mut q = EventQueue::new();
        // Lane: open instant 5 by popping the first of two events there.
        q.push(SimTime::from_nanos(5), 0u32);
        let laned = q.push_handle(SimTime::from_nanos(5), 1);
        // Heap (near, same open bucket): instant 6.
        let heaped = q.push_handle(SimTime::from_nanos(6), 2);
        // Wheel: far future.
        let wheeled = q.push_handle(SimTime::from_nanos(1 << 20), 3);
        let survivor = q.push_handle(SimTime::from_nanos(1 << 21), 4);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(0));
        assert_eq!(q.cancel(laned), Some(1));
        assert_eq!(q.cancel(heaped), Some(2));
        assert_eq!(q.cancel(wheeled), Some(3));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_at(), Some(SimTime::from_nanos(1 << 21)));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(4));
        assert_eq!(q.pop(), None);
        assert_eq!(q.live_payloads(), 0);
        let _ = survivor;
    }

    #[test]
    fn reschedule_moves_events_across_the_horizon_boundary() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), 0u32);
        // Far timer pulled near (decrease-key across the boundary).
        let far = q.push_handle(SimTime::from_nanos(1 << 30), 1);
        let near = q.reschedule(far, SimTime::from_nanos(50)).unwrap();
        assert_eq!(q.cancel(far), None, "old handle died on reschedule");
        // Near timer pushed far (increase-key across the boundary).
        let again = q.reschedule(near, SimTime::from_nanos(1 << 16)).unwrap();
        let order: Vec<_> =
            std::iter::from_fn(|| q.pop().map(|(t, _, e)| (t.as_nanos(), e))).collect();
        assert_eq!(order, vec![(100, 0), (1 << 16, 1)]);
        assert_eq!(q.cancel(again), None);
        assert_eq!(q.live_payloads(), 0);
    }

    /// A deterministic xorshift so the equivalence tests below can build
    /// large adversarial interleavings without proptest overhead.
    fn xorshift(x: &mut u64) -> u64 {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        *x
    }

    #[test]
    fn matches_legacy_heap_under_random_interleavings() {
        for seed in 1..=20u64 {
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut fast = EventQueue::new();
            let mut slow = LegacyHeap::new();
            let mut fast_out = Vec::new();
            let mut slow_out = Vec::new();
            for step in 0..2000 {
                let r = xorshift(&mut s);
                if r % 3 != 0 || fast.is_empty() {
                    // Push: mostly clustered times (forcing ties), with a
                    // dash of far-future (wheel territory) and deliberately
                    // *past* instants — the unchecked-scheduling corner the
                    // invariant checker exists for must order identically
                    // too.
                    let at = SimTime::from_nanos(match r % 16 {
                        0..=7 => (r >> 8) % 64,
                        8..=11 => (r >> 8) % 4096,
                        12..=13 => (r >> 8) % (1 << 30),
                        _ => (r >> 8) % 8,
                    });
                    let label = step as u32;
                    let sa = fast.push(at, label);
                    let sb = slow.push(at, label);
                    assert_eq!(sa, sb, "sequence numbering diverged");
                } else {
                    fast_out.push(fast.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
                    slow_out.push(slow.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
                }
                assert_eq!(fast.len(), slow.len());
                assert_eq!(fast.peek_at(), slow.peek_at());
            }
            while !slow.is_empty() {
                fast_out.push(fast.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
                slow_out.push(slow.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
            }
            assert_eq!(fast.pop(), None);
            assert_eq!(
                fast_out, slow_out,
                "seed {seed}: indexed queue diverged from the legacy heap"
            );
        }
    }

    #[test]
    fn matches_legacy_heap_under_cancel_and_reschedule_interleavings() {
        for seed in 1..=20u64 {
            let mut s = seed.wrapping_mul(0xA076_1D64_78BD_642F);
            let mut fast = EventQueue::new();
            let mut slow = LegacyHeap::new();
            let mut fast_out = Vec::new();
            let mut slow_out = Vec::new();
            // Every handle ever issued, live or dead: (handle, label).
            // Cancels and reschedules pick arbitrary entries, so dead
            // handles are exercised constantly.
            let mut issued: Vec<(TimerHandle, u32)> = Vec::new();
            let time = |r: u64| {
                SimTime::from_nanos(match r % 8 {
                    0..=2 => (r >> 9) % 64,
                    3..=4 => (r >> 9) % 4096,
                    5..=6 => (r >> 9) % (1 << 34),
                    _ => (r >> 9) % 8,
                })
            };
            for step in 0..3000u32 {
                let r = xorshift(&mut s);
                match r % 8 {
                    // Cancel an arbitrary previously-issued handle.
                    0 if !issued.is_empty() => {
                        let (h, _) = issued[(r >> 16) as usize % issued.len()];
                        let a = fast.cancel(h).is_some();
                        let b = slow.cancel(h.seq());
                        assert_eq!(a, b, "cancel liveness diverged");
                    }
                    // Reschedule an arbitrary handle to a fresh instant.
                    1 if !issued.is_empty() => {
                        let i = (r >> 16) as usize % issued.len();
                        let (h, label) = issued[i];
                        let at = time(xorshift(&mut s));
                        let a = fast.reschedule(h, at);
                        if slow.cancel(h.seq()) {
                            let sb = slow.push(at, label);
                            let na = a.expect("fast queue disagreed on liveness");
                            assert_eq!(na.seq(), sb, "reschedule seq diverged");
                            issued.push((na, label));
                        } else {
                            assert!(a.is_none(), "fast queue disagreed on liveness");
                        }
                    }
                    // Pop.
                    2 | 3 => {
                        fast_out.push(fast.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
                        slow_out.push(slow.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
                    }
                    // Push.
                    _ => {
                        let at = time(r);
                        let h = fast.push_handle(at, step);
                        let sb = slow.push(at, step);
                        assert_eq!(h.seq(), sb, "sequence numbering diverged");
                        issued.push((h, step));
                    }
                }
                assert_eq!(fast.len(), slow.len());
                assert_eq!(fast.peek_at(), slow.peek_at());
            }
            while !slow.is_empty() || !fast.is_empty() {
                fast_out.push(fast.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
                slow_out.push(slow.pop().map(|(t, q2, e)| (t.as_nanos(), q2, e)));
            }
            assert_eq!(
                fast_out, slow_out,
                "seed {seed}: indexed queue diverged from the legacy heap"
            );
            assert_eq!(fast.live_payloads(), 0, "seed {seed}: slab leaked");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One step of the differential drive. Cancels and reschedules refer
    /// to previously-issued handles by index (modulo the issued count),
    /// so both live and dead handles get exercised.
    #[derive(Debug, Clone)]
    enum Op {
        Push(u64),
        Pop,
        Cancel(usize),
        Reschedule(usize, u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Times span the horizon boundary: same-instant ties, near-heap
        // range, and multi-level wheel territory.
        (0u64..10, 0u64..3, 0u64..(1 << 34), 0u64..(1 << 16)).prop_map(|(sel, band, t, idx)| {
            let at = match band {
                0 => t % 48,
                1 => t % 4096,
                _ => t,
            };
            match sel {
                0..=3 => Op::Push(at),
                4..=6 => Op::Pop,
                7 | 8 => Op::Cancel(idx as usize),
                _ => Op::Reschedule(idx as usize, at),
            }
        })
    }

    proptest! {
        /// The indexed queue and the legacy heap produce identical
        /// `(time, seq, event)` pop sequences — FIFO tie-breaks included —
        /// under seeded random event streams with interleaved pops.
        #[test]
        fn indexed_queue_is_pop_identical_to_legacy_heap(
            ops in proptest::collection::vec(
                // (is_push, time): small time range to force heavy ties.
                (any::<bool>(), 0u64..48),
                1..400,
            )
        ) {
            let mut fast = EventQueue::new();
            let mut slow = LegacyHeap::new();
            let mut fast_out = Vec::new();
            let mut slow_out = Vec::new();
            for (i, &(is_push, t)) in ops.iter().enumerate() {
                if is_push {
                    fast.push(SimTime::from_nanos(t), i);
                    slow.push(SimTime::from_nanos(t), i);
                } else {
                    fast_out.push(fast.pop());
                    slow_out.push(slow.pop());
                }
                prop_assert_eq!(fast.len(), slow.len());
            }
            loop {
                let (a, b) = (fast.pop(), slow.pop());
                let done = a.is_none() && b.is_none();
                fast_out.push(a);
                slow_out.push(b);
                if done { break; }
            }
            prop_assert_eq!(fast_out, slow_out);
        }

        /// Full three-lane differential: arbitrary interleavings of
        /// near/far/past pushes, pops, cancels and reschedules across the
        /// horizon boundary stay pop-identical to the tombstone spec —
        /// FIFO ties included — and never leak arena slots.
        #[test]
        fn wheel_lane_with_cancels_is_pop_identical_to_legacy_heap(
            ops in proptest::collection::vec(op_strategy(), 1..400)
        ) {
            let mut fast = EventQueue::new();
            let mut slow = LegacyHeap::new();
            let mut fast_out = Vec::new();
            let mut slow_out = Vec::new();
            let mut issued: Vec<(TimerHandle, usize)> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match *op {
                    Op::Push(t) => {
                        let h = fast.push_handle(SimTime::from_nanos(t), i);
                        let sb = slow.push(SimTime::from_nanos(t), i);
                        prop_assert_eq!(h.seq(), sb);
                        issued.push((h, i));
                    }
                    Op::Pop => {
                        fast_out.push(fast.pop());
                        slow_out.push(slow.pop());
                    }
                    Op::Cancel(raw) => {
                        if !issued.is_empty() {
                            let (h, _) = issued[raw % issued.len()];
                            prop_assert_eq!(
                                fast.cancel(h).is_some(),
                                slow.cancel(h.seq()),
                                "cancel liveness diverged"
                            );
                        }
                    }
                    Op::Reschedule(raw, t) => {
                        if !issued.is_empty() {
                            let (h, label) = issued[raw % issued.len()];
                            let at = SimTime::from_nanos(t);
                            let a = fast.reschedule(h, at);
                            if slow.cancel(h.seq()) {
                                let sb = slow.push(at, label);
                                let na = a.expect("liveness diverged");
                                prop_assert_eq!(na.seq(), sb);
                                issued.push((na, label));
                            } else {
                                prop_assert!(a.is_none(), "liveness diverged");
                            }
                        }
                    }
                }
                prop_assert_eq!(fast.len(), slow.len());
                prop_assert_eq!(fast.peek_at(), slow.peek_at());
            }
            loop {
                let (a, b) = (fast.pop(), slow.pop());
                let done = a.is_none() && b.is_none();
                fast_out.push(a);
                slow_out.push(b);
                if done { break; }
            }
            prop_assert_eq!(fast_out, slow_out);
            prop_assert_eq!(fast.live_payloads(), 0, "slab leaked");
        }
    }
}
