//! Simulated time.
//!
//! The simulator uses a nanosecond-resolution virtual clock. Two newtypes
//! keep instants and durations from being confused:
//!
//! * [`SimTime`] — an absolute instant, nanoseconds since simulation start.
//! * [`SimDuration`] — a span between two instants.
//!
//! Both wrap `u64`, so the clock can run for ~584 simulated years before
//! overflow; arithmetic is checked in debug builds via the standard operators.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock (nanoseconds since start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// `self + rhs`, clamping to [`SimTime::MAX`] instead of overflowing.
    ///
    /// Timeout guards are often armed "far in the future" relative to
    /// now; near the end of the representable clock a plain `+` would
    /// wrap and schedule the guard in the past. Clamping to the `MAX`
    /// sentinel keeps the guard strictly after every reachable instant.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier > self` (an event observed before it was caused —
    /// always a simulation bug worth failing loudly on).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// `duration_since` that clamps to zero instead of panicking.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional nanoseconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_nanos_f64(ns: f64) -> Self {
        SimDuration(ns.max(0.0).round() as u64)
    }

    /// Construct from fractional nanoseconds, truncating toward zero.
    /// Negative inputs clamp to zero. Exists alongside
    /// [`SimDuration::from_nanos_f64`] because some historical call sites
    /// truncate, and changing their rounding would change bit-identical
    /// outputs.
    pub fn from_nanos_f64_trunc(ns: f64) -> Self {
        SimDuration(ns.max(0.0).trunc() as u64)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us.max(0.0) * 1_000.0).round() as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1_000_000_000.0).round() as u64)
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this span, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds in this span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The ratio of two spans, as a float (`self / rhs`). The lossless
    /// replacement for ad-hoc `as f64` division at call sites.
    pub fn div_duration_f64(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest nanosecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "mul_f64 by negative factor");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

/// Human-oriented rendering of a nanosecond count with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_millis(7).as_nanos(), 7_000_000);
        assert_eq!(SimDuration::from_secs(7).as_nanos(), 7_000_000_000);
    }

    #[test]
    fn float_round_trips() {
        let d = SimDuration::from_micros_f64(2.56);
        assert_eq!(d.as_nanos(), 2560);
        assert!((d.as_micros_f64() - 2.56).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    fn instant_duration_arithmetic() {
        let t0 = SimTime::from_micros(10);
        let t1 = t0 + SimDuration::from_micros(5);
        assert_eq!(t1.as_nanos(), 15_000);
        assert_eq!(t1 - t0, SimDuration::from_micros(5));
        assert_eq!(t1.duration_since(t0).as_micros_f64(), 5.0);
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
        assert_eq!(t0.saturating_add(SimDuration::MAX), SimTime::MAX);
        assert_eq!(t0.saturating_add(SimDuration::from_micros(5)), t1);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_reversal() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 4, SimDuration::from_nanos(2_500));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(5));
        assert_eq!(
            d.saturating_sub(SimDuration::from_micros(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_units_adapt() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_nanos(2_560)), "2.560us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
