//! Deterministic random number generation.
//!
//! Every stochastic component of the simulator draws from a [`Rng`] that is
//! seeded explicitly, so a simulation run is a pure function of its
//! configuration. The generator is SplitMix64 — tiny, fast, passes BigCrush
//! for our purposes, and trivially *splittable*: [`Rng::fork`] derives an
//! independent stream, which lets each client / core / distribution own its
//! own stream without cross-contamination when components are added or
//! reordered.

/// A 64-bit SplitMix64 generator.
///
/// Not cryptographically secure; used only for workload synthesis.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Two generators with the same seed
    /// produce identical streams.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point of a raw 0 seed producing a weak
        // early sequence by pre-advancing once.
        let mut rng = Rng { state: seed };
        let _ = rng.next_u64();
        rng
    }

    /// Derive an independent child stream. The parent advances, so repeated
    /// forks yield distinct children.
    pub fn fork(&mut self) -> Rng {
        // The golden-gamma constant keeps child streams decorrelated.
        Rng::new(self.next_u64() ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]` — safe as input to `ln()`.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Lemire's multiply-shift with rejection for exact uniformity.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Sample an exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean >= 0.0);
        -mean * self.next_f64_open().ln()
    }

    /// Sample a standard normal via Box–Muller (one value per call; the
    /// second root is discarded to keep the generator stateless beyond
    /// `state`).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_and_reproducible() {
        let mut parent1 = Rng::new(7);
        let mut parent2 = Rng::new(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // A second fork from the same parent is a different stream.
        let mut c3 = parent1.fork();
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = Rng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = Rng::new(11);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!(
            (est - mean).abs() < 0.05 * mean,
            "estimated mean {est} too far from {mean}"
        );
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = Rng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn chance_rate() {
        let mut rng = Rng::new(17);
        let hits = (0..100_000).filter(|_| rng.chance(0.005)).count();
        // 500 expected; allow generous slack.
        assert!((300..=700).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(21);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }
}
