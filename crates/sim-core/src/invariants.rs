//! Runtime invariant checking: the engine-resident half of the
//! correctness tooling (the static half is the `simlint` crate).
//!
//! Every claim this reproduction makes rests on runs being bit-for-bit
//! deterministic and physically sensible: the virtual clock never goes
//! backwards, simultaneous events fire in FIFO insertion order, rings
//! never exceed their descriptor count, and the request ledger conserves
//! every launched attempt. The type system cannot prove those properties,
//! and the double-run CI diff only detects *nondeterminism*, not a
//! deterministic-but-wrong model. The [`InvariantChecker`] closes that
//! gap: when enabled it observes every event the engine pops, lets the
//! model audit its own state after each event
//! ([`Model::check_invariants`](crate::Model::check_invariants)), and
//! accumulates [`Violation`]s instead of panicking mid-run, so a failing
//! run still produces a full report of everything that went wrong.
//!
//! # Design rules
//!
//! * **Observation only.** The checker never mutates model state, never
//!   draws randomness, and never schedules events, so an invcheck-enabled
//!   run is bit-identical to a plain run (the resilience smoke job in CI
//!   diffs the two JSON outputs to prove it).
//! * **Collect, then fail.** Violations accumulate in a `Vec`;
//!   [`InvariantChecker::assert_clean`] panics with the whole report at
//!   the end of the run. Tests can instead inspect
//!   [`InvariantChecker::violations`] directly.
//! * **Disabled is free-ish.** A disabled checker short-circuits on one
//!   boolean; assemblies install one only when
//!   `ResilienceConfig::invariants` asks for it.

use std::fmt;

use crate::time::SimTime;

/// How much runtime invariant checking a run should pay for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InvariantConfig {
    /// Master switch. When `false` no checks run and no state is kept.
    pub enabled: bool,
}

impl InvariantConfig {
    /// No invariant checking — the default for metric sweeps.
    pub const fn disabled() -> InvariantConfig {
        InvariantConfig { enabled: false }
    }

    /// Full invariant checking: engine causality/FIFO checks, per-event
    /// model self-audits, and end-of-run conservation checks.
    pub const fn enabled() -> InvariantConfig {
        InvariantConfig { enabled: true }
    }
}

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Virtual time at which the violation was observed.
    pub at: SimTime,
    /// Stable rule name (e.g. `"causality"`, `"fifo-order"`,
    /// `"ring-bound"`, `"ledger-conservation"`).
    pub rule: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.rule, self.detail)
    }
}

/// The engine-resident invariant checker.
///
/// Lives inside the [`Engine`](crate::Engine) next to the probe and the
/// fault plan; install one with
/// [`Engine::set_invariants`](crate::Engine::set_invariants).
#[derive(Debug, Default)]
pub struct InvariantChecker {
    cfg: InvariantConfig,
    violations: Vec<Violation>,
    /// Total individual checks evaluated (so tests can assert the checker
    /// actually ran, not just stayed silent).
    checks: u64,
    /// (time, seq) of the most recently popped event, for the clock
    /// monotonicity and FIFO tie-break checks.
    last_popped: Option<(SimTime, u64)>,
}

impl InvariantChecker {
    /// A checker with the given configuration.
    pub fn new(cfg: InvariantConfig) -> InvariantChecker {
        InvariantChecker {
            cfg,
            ..InvariantChecker::default()
        }
    }

    /// Whether any checking happens at all.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Violations observed so far, in observation order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total individual checks evaluated so far.
    pub fn checks_performed(&self) -> u64 {
        self.checks
    }

    /// Record a violation of `rule` observed at `at`. Public so layers
    /// above sim-core (NIC ring audits, ledger conservation in the system
    /// assemblies) can report through the same channel.
    pub fn record(&mut self, at: SimTime, rule: &'static str, detail: String) {
        if self.cfg.enabled {
            self.violations.push(Violation { at, rule, detail });
        }
    }

    /// Check that `value <= bound` (ring occupancy against capacity,
    /// outstanding work against a window, ...).
    pub fn check_bound(&mut self, at: SimTime, what: &'static str, value: u64, bound: u64) {
        if !self.cfg.enabled {
            return;
        }
        self.checks += 1;
        if value > bound {
            self.record(
                at,
                "ring-bound",
                format!("{what}: occupancy {value} exceeds bound {bound}"),
            );
        }
    }

    /// Check an exact conservation identity (`lhs == rhs`), e.g. "frames
    /// enqueued = frames popped + frames resident".
    pub fn check_conservation(&mut self, at: SimTime, what: &'static str, lhs: u64, rhs: u64) {
        if !self.cfg.enabled {
            return;
        }
        self.checks += 1;
        if lhs != rhs {
            self.record(
                at,
                "conservation",
                format!(
                    "{what}: {lhs} != {rhs} (difference {})",
                    lhs as i64 - rhs as i64
                ),
            );
        }
    }

    /// Engine-side: observe one event pop. Checks causality (the popped
    /// event must not be in the past) and stable FIFO tie-breaking
    /// (among events at the same instant, sequence numbers must come out
    /// in insertion order).
    pub(crate) fn observe_pop(&mut self, now: SimTime, at: SimTime, seq: u64) {
        if !self.cfg.enabled {
            return;
        }
        self.checks += 2;
        if at < now {
            self.record(
                at,
                "causality",
                format!("event seq {seq} fires at {at}, before the clock ({now})"),
            );
        }
        if let Some((last_at, last_seq)) = self.last_popped {
            if at == last_at && seq < last_seq {
                self.record(
                    at,
                    "fifo-order",
                    format!("tie at {at} broke FIFO: seq {seq} popped after seq {last_seq}"),
                );
            }
        }
        self.last_popped = Some((at.max(now), seq));
    }

    /// Engine-side: audit the event arena after a run drains. Pop, cancel
    /// and reschedule all free payload slots eagerly, so a drained queue
    /// with payloads still resident means the queue leaked storage.
    pub(crate) fn observe_drained(&mut self, now: SimTime, leaked: usize) {
        if !self.cfg.enabled {
            return;
        }
        self.checks += 1;
        if leaked > 0 {
            self.record(
                now,
                "slab-leak",
                format!("{leaked} event payload(s) still resident after the queue drained"),
            );
        }
    }

    /// Render every violation, one per line.
    pub fn report(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{v}");
        }
        out
    }

    /// Panic with a full report if any violation was observed. The normal
    /// end-of-run call for invcheck-enabled assemblies: a clean return
    /// certifies the run.
    ///
    /// # Panics
    /// Panics when at least one violation has been recorded.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "invariant check failed ({} violation(s) over {} checks):\n{}",
            self.violations.len(),
            self.checks,
            self.report()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_checker_records_nothing() {
        let mut c = InvariantChecker::new(InvariantConfig::disabled());
        c.record(SimTime::ZERO, "causality", "ignored".into());
        c.check_bound(SimTime::ZERO, "ring", 10, 1);
        c.observe_pop(SimTime::from_nanos(5), SimTime::ZERO, 0);
        assert!(c.violations().is_empty());
        assert_eq!(c.checks_performed(), 0);
        c.assert_clean();
    }

    #[test]
    fn bound_and_conservation_checks_fire() {
        let mut c = InvariantChecker::new(InvariantConfig::enabled());
        c.check_bound(SimTime::from_nanos(3), "ring[0]", 4, 8);
        c.check_bound(SimTime::from_nanos(4), "ring[0]", 9, 8);
        c.check_conservation(SimTime::from_nanos(5), "frames", 7, 7);
        c.check_conservation(SimTime::from_nanos(6), "frames", 7, 5);
        assert_eq!(c.violations().len(), 2);
        assert_eq!(c.violations()[0].rule, "ring-bound");
        assert_eq!(c.violations()[1].rule, "conservation");
        assert_eq!(c.checks_performed(), 4);
    }

    #[test]
    #[should_panic(expected = "invariant check failed")]
    fn assert_clean_panics_with_report() {
        let mut c = InvariantChecker::new(InvariantConfig::enabled());
        c.record(SimTime::ZERO, "causality", "event in the past".into());
        c.assert_clean();
    }

    #[test]
    fn fifo_tie_break_violation_detected() {
        let mut c = InvariantChecker::new(InvariantConfig::enabled());
        let t = SimTime::from_nanos(10);
        c.observe_pop(t, t, 4);
        c.observe_pop(t, t, 2); // same instant, earlier seq popped later
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].rule, "fifo-order");
    }

    #[test]
    fn drained_queue_leak_is_reported() {
        let mut c = InvariantChecker::new(InvariantConfig::enabled());
        c.observe_drained(SimTime::from_nanos(9), 0);
        assert!(c.violations().is_empty());
        c.observe_drained(SimTime::from_nanos(9), 3);
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].rule, "slab-leak");
        assert_eq!(c.checks_performed(), 2);
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation {
            at: SimTime::from_nanos(7),
            rule: "causality",
            detail: "x".into(),
        };
        assert_eq!(v.to_string(), "[7ns] causality: x");
    }
}
