//! The far-future lane of the event queue: a hierarchical timer wheel.
//!
//! The indexed heap in [`crate::queue`] is the right structure for events
//! that fire *soon* — the population is small, the keys are cache-resident
//! and every operation is a couple of sifts. It is the wrong structure for
//! the standing population every real run carries: retransmit timeouts,
//! connection expiries, lease deadlines and periodic telemetry scheduled
//! microseconds-to-seconds out. Those events inflate the heap, deepen every
//! sift on the hot path, and then mostly get cancelled before they fire.
//!
//! The wheel takes that population out of the heap. Time is bucketed in
//! powers of two: level 0 holds 64 buckets of [`GRANULARITY`] (64 ns) each,
//! level 1 holds 64 buckets of 4.096 µs, and so on — ten levels cover every
//! representable instant, so there is no overflow path. An event lands in
//! the bucket whose span contains it *relative to the wheel's floor* (the
//! start of the currently open level-0 bucket): the level is the highest
//! bit in which the event time differs from the floor, found with one XOR
//! and a leading-zeros count, exactly the scheme of the Linux kernel and
//! tokio timer wheels. Insertion is O(1): a `Vec` push plus one bit in the
//! level's occupancy bitmap.
//!
//! Advancing is driven by the queue, not by ticks: when the near lanes
//! drain, [`Wheel::open_next`] jumps the floor directly to the next
//! occupied bucket (a `trailing_zeros` on the occupancy bitmaps — empty
//! spans cost nothing, which is what makes sparse far-future populations
//! cheap). Opening a level-0 bucket hands its entries back for promotion
//! into the near heap; opening a higher-level bucket *cascades* — its
//! entries redistribute into lower levels relative to the new floor, each
//! entry strictly descending, so an event is touched at most once per
//! level over its whole life.
//!
//! Ordering correctness does not depend on bucket internals: buckets are
//! unordered, and the queue re-establishes the total `(time, seq)` order
//! when it promotes a bucket into the heap. The wheel only has to
//! guarantee the *partition* invariant — every resident entry fires at or
//! after the end of the open bucket — which holds because entries land
//! strictly above the floor's index at their level and the floor only
//! moves forward.

use crate::queue::Key;

/// Log2 of the level-0 bucket width: 64 ns. Gaps shorter than this stay
/// in the near heap; the paper's service times (1–100 µs) and wire hops
/// (≈ 80 ns – 2.56 µs) land in levels 0–3.
pub(crate) const GRANULARITY_SHIFT: u32 = 6;
/// Width of a level-0 bucket in nanoseconds.
pub(crate) const GRANULARITY: u64 = 1 << GRANULARITY_SHIFT;
/// Log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels 0..10 cover bits 6..66 of the nanosecond clock — the whole
/// `u64` range, so there is no overflow list to cascade.
const LEVELS: usize = 10;

/// The hierarchical wheel. Owned by the event queue; all entries are
/// `Key`s whose payloads live in the queue's slab arena.
pub(crate) struct Wheel {
    /// `LEVELS * SLOTS` buckets, flat, row-major by level. Allocated on
    /// first use so queues that never schedule far stay allocation-free.
    buckets: Vec<Vec<Key>>,
    /// One occupancy bit per slot per level.
    occupied: [u64; LEVELS],
    /// Entries resident in buckets (live and cancelled alike).
    count: usize,
    /// Cascade scratch, recycled so redistribution never allocates in
    /// steady state.
    cascade: Vec<Key>,
}

impl Wheel {
    pub(crate) fn new() -> Wheel {
        Wheel {
            buckets: Vec::new(),
            occupied: [0; LEVELS],
            count: 0,
            cascade: Vec::new(),
        }
    }

    /// Entries resident in buckets, counting cancelled ones that have not
    /// been swept yet.
    pub(crate) fn count(&self) -> usize {
        self.count
    }

    /// Level and slot for `at` relative to `floor`. `at` must be beyond
    /// the open bucket (`at ^ floor` has a bit at or above
    /// [`GRANULARITY_SHIFT`]).
    #[inline]
    fn locate(floor: u64, at: u64) -> (usize, usize) {
        let x = (at ^ floor) >> GRANULARITY_SHIFT;
        debug_assert!(x != 0, "near event routed to the wheel");
        let level = ((63 - x.leading_zeros()) / SLOT_BITS) as usize;
        let slot =
            ((at >> (GRANULARITY_SHIFT + SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// The wheel-lane scheduling entry point: file `key` under the bucket
    /// containing `key.at`, given the current floor. O(1).
    #[inline]
    pub(crate) fn schedule_far(&mut self, floor: u64, key: Key) {
        if self.buckets.is_empty() {
            self.buckets = vec![Vec::new(); LEVELS * SLOTS];
        }
        let (level, slot) = Self::locate(floor, key.at);
        self.occupied[level] |= 1 << slot;
        self.buckets[level * SLOTS + slot].push(key);
        self.count += 1;
    }

    /// Jump the floor to the next occupied level-0 bucket, cascading
    /// higher-level buckets down as they are reached, and drain that
    /// bucket's entries (unordered) into `due`. Returns the new floor, or
    /// `None` if the wheel is empty. `due` must be empty on entry.
    pub(crate) fn open_next(&mut self, mut floor: u64, due: &mut Vec<Key>) -> Option<u64> {
        debug_assert!(due.is_empty());
        if self.count == 0 {
            return None;
        }
        loop {
            // Lowest level with an occupied bucket strictly ahead of the
            // floor's index holds the earliest resident entry: lower
            // levels cover nearer spans, and each level's at-or-behind
            // buckets are empty (cascaded when the floor entered them).
            let mut found = None;
            for level in 0..LEVELS {
                let shift = GRANULARITY_SHIFT + SLOT_BITS * level as u32;
                let idx = ((floor >> shift) & (SLOTS as u64 - 1)) as u32;
                // Bits strictly above idx; the double shift sidesteps the
                // undefined `<< 64` at idx == 63.
                let ahead = (self.occupied[level] >> idx) >> 1 << idx << 1;
                if ahead != 0 {
                    found = Some((level, ahead.trailing_zeros() as usize, shift));
                    break;
                }
            }
            let Some((level, slot, shift)) = found else {
                // Only cancelled entries remained and a prior sweep
                // already dropped them.
                debug_assert_eq!(self.count, 0, "wheel count drifted");
                return None;
            };
            // The floor jumps to the opened bucket's start: higher fields
            // keep the floor's digits, this level's field becomes `slot`,
            // lower fields clear.
            let hi = if shift + SLOT_BITS >= 64 {
                0
            } else {
                (floor >> (shift + SLOT_BITS)) << (shift + SLOT_BITS)
            };
            floor = hi | ((slot as u64) << shift);
            self.occupied[level] &= !(1 << slot);
            let bucket = &mut self.buckets[level * SLOTS + slot];
            if level == 0 {
                self.count -= bucket.len();
                due.append(bucket);
                return Some(floor);
            }
            // Cascade: redistribute relative to the new floor. Entries
            // inside the now-open level-0 bucket are due immediately; the
            // rest descend at least one level.
            debug_assert!(self.cascade.is_empty());
            std::mem::swap(bucket, &mut self.cascade);
            while let Some(key) = self.cascade.pop() {
                if (key.at ^ floor) >> GRANULARITY_SHIFT == 0 {
                    self.count -= 1;
                    due.push(key);
                } else {
                    let (l, s) = Self::locate(floor, key.at);
                    debug_assert!(l < level, "cascade must descend");
                    self.occupied[l] |= 1 << s;
                    self.buckets[l * SLOTS + s].push(key);
                }
            }
            if !due.is_empty() {
                return Some(floor);
            }
            // Everything went to lower-level buckets ahead; rescan from
            // the new floor.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at: u64, seq: u64) -> Key {
        Key { at, seq, slot: 0 }
    }

    /// Drain the wheel completely via open_next, returning (floor, at)
    /// pairs in pop order (bucket interiors sorted for determinism).
    fn drain(w: &mut Wheel, mut floor: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut due = Vec::new();
        while let Some(f) = w.open_next(floor, &mut due) {
            floor = f;
            due.sort_by_key(|k| (k.at, k.seq));
            for k in &due {
                assert!(k.at >= f, "entry {} surfaced before its bucket {f}", k.at);
                assert!(k.at - f < GRANULARITY, "entry {} outside bucket {f}", k.at);
                out.push(k.at);
            }
            due.clear();
        }
        assert_eq!(w.count(), 0);
        out
    }

    #[test]
    fn events_surface_in_nondecreasing_bucket_order() {
        let mut w = Wheel::new();
        let times = [
            GRANULARITY + 6,
            GRANULARITY * 62 + 8,
            GRANULARITY + 1,
            GRANULARITY << 14,
            (GRANULARITY << 14) + 1,
            GRANULARITY << 24,
            GRANULARITY << 38,
            u64::MAX,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.schedule_far(0, key(t, i as u64));
        }
        let drained = drain(&mut w, 0);
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        assert_eq!(drained, sorted);
    }

    #[test]
    fn same_bucket_entries_surface_together() {
        let mut w = Wheel::new();
        w.schedule_far(0, key(GRANULARITY + 36, 0));
        w.schedule_far(0, key(GRANULARITY + 37, 1));
        w.schedule_far(0, key(2 * GRANULARITY - 1, 2));
        let mut due = Vec::new();
        let floor = w.open_next(0, &mut due).unwrap();
        assert_eq!(floor, GRANULARITY);
        assert_eq!(due.len(), 3);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn sparse_far_future_jumps_directly() {
        let mut w = Wheel::new();
        w.schedule_far(0, key(1 << 40, 0));
        let mut due = Vec::new();
        let floor = w.open_next(0, &mut due).unwrap();
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].at, 1 << 40);
        assert!(floor <= 1 << 40 && (1 << 40) - floor < GRANULARITY);
    }

    #[test]
    fn empty_wheel_reports_none() {
        let mut w = Wheel::new();
        let mut due = Vec::new();
        assert!(w.open_next(0, &mut due).is_none());
        assert_eq!(w.count(), 0);
    }
}
