//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded oracle for timed fault events — link-loss
//! windows with Gilbert–Elliott bursts, worker stalls, slowdowns and
//! crashes, and feedback-channel blackouts — that any model can consult
//! through [`Ctx::faults`](crate::Ctx::faults), exactly the way the
//! observability [`Probe`](crate::probe::Probe) is reached through
//! `ctx.probe()`. The plan is built from a declarative [`FaultConfig`] and
//! a seed, so every fault decision (including the stochastic burst chain)
//! is a pure function of the run configuration: two runs with the same
//! seed see byte-identical fault sequences.
//!
//! The plan is *passive*: it never schedules events itself. Models ask it
//! questions at the moments that matter ("is this frame lost?", "is worker
//! 3 alive right now?") and react in their own event alphabet, which keeps
//! fault handling visible in each assembly instead of hidden in the
//! engine.

use crate::rng::Rng;
use crate::time::SimTime;

/// A window of bursty link loss driven by a two-state Gilbert–Elliott
/// chain: frames inside `[start, end)` walk a calm/burst Markov chain and
/// are dropped with `loss_in_burst` probability while the chain is in the
/// burst state. Outside the window the chain is reset to calm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossBurst {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Per-frame probability of entering the burst state from calm.
    pub p_enter: f64,
    /// Per-frame probability of leaving the burst state back to calm.
    pub p_exit: f64,
    /// Per-frame loss probability while the chain is bursting.
    pub loss_in_burst: f64,
}

/// A permanent worker failure: from `at` onward the worker neither polls,
/// completes, nor reports feedback. Work already queued on it is stranded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerCrash {
    /// Index of the crashing worker.
    pub worker: usize,
    /// Instant of the crash.
    pub at: SimTime,
}

/// A transient worker outage: within `[start, end)` the worker makes no
/// progress and sends no feedback, then resumes where it left off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallWindow {
    /// Index of the stalling worker.
    pub worker: usize,
    /// Stall start (inclusive).
    pub start: SimTime,
    /// Stall end (exclusive); the worker resumes at this instant.
    pub end: SimTime,
}

/// A window during which one worker runs `factor`× slower (e.g. thermal
/// throttling): service wall-clock time is multiplied, progress is not.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlowdownWindow {
    /// Index of the slowed worker.
    pub worker: usize,
    /// Slowdown start (inclusive).
    pub start: SimTime,
    /// Slowdown end (exclusive).
    pub end: SimTime,
    /// Wall-clock multiplier, `>= 1.0`.
    pub factor: f64,
}

/// A window during which the worker→dispatcher feedback path is dark:
/// feedback messages are suppressed, so the dispatcher steers on
/// increasingly stale state until its staleness fallback kicks in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blackout {
    /// Blackout start (inclusive).
    pub start: SimTime,
    /// Blackout end (exclusive).
    pub end: SimTime,
}

/// Maximum number of crash entries and of stall entries per
/// [`FaultConfig`]. Fixed capacity keeps the config `Copy`, which the
/// parallel sweep runners and the experiment grids rely on (configs are
/// passed by value into `par_map` closures).
pub const MAX_FAULT_EVENTS: usize = 16;

/// Declarative fault specification for one run. `Default` is fault-free;
/// every field composes independently, so a plan can combine e.g. 1% wire
/// loss with a mid-run crash and a feedback blackout. Crashes and stalls
/// are *lists* (up to [`MAX_FAULT_EVENTS`] each): call
/// [`with_crash`](FaultConfig::with_crash) /
/// [`with_stall`](FaultConfig::with_stall) repeatedly to build a fault
/// schedule such as a rolling stall storm.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Independent per-frame loss probability applied to every wire
    /// transmit (both directions), on top of any burst window.
    pub wire_loss: f64,
    /// Optional Gilbert–Elliott burst-loss window.
    pub burst: Option<LossBurst>,
    /// Permanent worker crashes, in insertion order.
    crashes: [Option<WorkerCrash>; MAX_FAULT_EVENTS],
    /// Transient worker stalls, in insertion order.
    stalls: [Option<StallWindow>; MAX_FAULT_EVENTS],
    /// Optional worker slowdown window.
    pub slowdown: Option<SlowdownWindow>,
    /// Optional feedback blackout window.
    pub blackout: Option<Blackout>,
}

impl FaultConfig {
    /// Whether this configuration injects any fault at all.
    pub fn is_none(&self) -> bool {
        self.wire_loss == 0.0
            && self.burst.is_none()
            && self.crashes.iter().all(Option::is_none)
            && self.stalls.iter().all(Option::is_none)
            && self.slowdown.is_none()
            && self.blackout.is_none()
    }

    /// The configured crashes, in insertion order.
    pub fn crashes(&self) -> impl Iterator<Item = WorkerCrash> + '_ {
        self.crashes.iter().copied().flatten()
    }

    /// The configured stalls, in insertion order.
    pub fn stalls(&self) -> impl Iterator<Item = StallWindow> + '_ {
        self.stalls.iter().copied().flatten()
    }

    /// Add independent per-frame wire loss.
    pub fn with_wire_loss(mut self, p: f64) -> FaultConfig {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.wire_loss = p;
        self
    }

    /// Add a permanent worker crash at `at`. May be called up to
    /// [`MAX_FAULT_EVENTS`] times to crash several workers on a schedule.
    pub fn with_crash(mut self, worker: usize, at: SimTime) -> FaultConfig {
        let slot = self
            .crashes
            .iter()
            .position(Option::is_none)
            .expect("crash schedule full");
        self.crashes[slot] = Some(WorkerCrash { worker, at });
        self
    }

    /// Add a transient worker stall over `[start, end)`. May be called up
    /// to [`MAX_FAULT_EVENTS`] times to build a stall storm.
    pub fn with_stall(mut self, worker: usize, start: SimTime, end: SimTime) -> FaultConfig {
        assert!(end > start, "empty stall window");
        let slot = self
            .stalls
            .iter()
            .position(Option::is_none)
            .expect("stall schedule full");
        self.stalls[slot] = Some(StallWindow { worker, start, end });
        self
    }

    /// Add a worker slowdown window.
    pub fn with_slowdown(
        mut self,
        worker: usize,
        start: SimTime,
        end: SimTime,
        factor: f64,
    ) -> FaultConfig {
        assert!(factor >= 1.0, "slowdown factor below 1 would speed up");
        self.slowdown = Some(SlowdownWindow {
            worker,
            start,
            end,
            factor,
        });
        self
    }

    /// Add a Gilbert–Elliott burst-loss window.
    pub fn with_burst(mut self, burst: LossBurst) -> FaultConfig {
        self.burst = Some(burst);
        self
    }

    /// Add a feedback blackout window.
    pub fn with_blackout(mut self, start: SimTime, end: SimTime) -> FaultConfig {
        assert!(end > start, "empty blackout window");
        self.blackout = Some(Blackout { start, end });
        self
    }
}

/// Counters the plan accumulates as it is consulted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames dropped by the burst chain.
    pub burst_lost: u64,
    /// Calm→burst transitions taken.
    pub burst_entries: u64,
}

/// The runtime fault oracle: a [`FaultConfig`] plus the seeded state of
/// its stochastic pieces. Lives inside the engine; models reach it through
/// [`Ctx::faults`](crate::Ctx::faults).
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: Rng,
    in_burst: bool,
    /// Counters accumulated while the plan is consulted.
    pub stats: FaultStats,
}

impl Default for FaultPlan {
    /// A fault-free plan (what every engine starts with).
    fn default() -> FaultPlan {
        FaultPlan::new(FaultConfig::default(), 0)
    }
}

impl FaultPlan {
    /// Build the runtime plan for `cfg`. All stochastic decisions draw
    /// from a stream derived from `seed` only, so the fault sequence is
    /// independent of the workload's own random streams.
    pub fn new(cfg: FaultConfig, seed: u64) -> FaultPlan {
        FaultPlan {
            cfg,
            rng: Rng::new(seed ^ 0xFA_17_5E_ED),
            in_burst: false,
            stats: FaultStats::default(),
        }
    }

    /// The configuration this plan executes.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether any fault is configured (lets hot paths skip the oracle).
    pub fn is_active(&self) -> bool {
        !self.cfg.is_none()
    }

    /// Per-frame burst-loss decision at `now`. Advances the
    /// Gilbert–Elliott chain one step when inside the window; resets it to
    /// calm outside. Independent `wire_loss` is *not* applied here — that
    /// rides on the link model's own `transmit_lossy` at the link layer.
    pub fn burst_frame_lost(&mut self, now: SimTime) -> bool {
        let Some(b) = self.cfg.burst else {
            return false;
        };
        if now < b.start || now >= b.end {
            self.in_burst = false;
            return false;
        }
        if self.in_burst {
            if self.rng.chance(b.p_exit) {
                self.in_burst = false;
            }
        } else if self.rng.chance(b.p_enter) {
            self.in_burst = true;
            self.stats.burst_entries += 1;
        }
        if self.in_burst && self.rng.chance(b.loss_in_burst) {
            self.stats.burst_lost += 1;
            return true;
        }
        false
    }

    /// Whether `worker` has crashed by `now`.
    pub fn worker_crashed(&self, worker: usize, now: SimTime) -> bool {
        self.cfg
            .crashes()
            .any(|c| c.worker == worker && now >= c.at)
    }

    /// The earliest configured crash, if any (legacy single-crash view).
    pub fn crash(&self) -> Option<WorkerCrash> {
        self.cfg.crashes().min_by_key(|c| c.at)
    }

    /// If `worker` is stalled at `now`, the latest instant any covering
    /// stall window ends (overlapping windows extend each other).
    pub fn worker_stalled_until(&self, worker: usize, now: SimTime) -> Option<SimTime> {
        self.cfg
            .stalls()
            .filter(|s| s.worker == worker && now >= s.start && now < s.end)
            .map(|s| s.end)
            .max()
    }

    /// Whether `worker` is unable to make progress at `now` (crashed or
    /// mid-stall).
    pub fn worker_down(&self, worker: usize, now: SimTime) -> bool {
        self.worker_crashed(worker, now) || self.worker_stalled_until(worker, now).is_some()
    }

    /// Wall-clock multiplier for work started by `worker` at `now`
    /// (`1.0` = full speed).
    pub fn worker_slowdown(&self, worker: usize, now: SimTime) -> f64 {
        match self.cfg.slowdown {
            Some(s) if s.worker == worker && now >= s.start && now < s.end => s.factor,
            _ => 1.0,
        }
    }

    /// Whether the feedback path is dark at `now`.
    pub fn feedback_blackout(&self, now: SimTime) -> bool {
        matches!(self.cfg.blackout, Some(b) if now >= b.start && now < b.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn default_plan_is_inert() {
        let mut p = FaultPlan::default();
        assert!(!p.is_active());
        assert!(!p.burst_frame_lost(us(5)));
        assert!(!p.worker_crashed(0, us(5)));
        assert!(!p.worker_down(3, us(5)));
        assert_eq!(p.worker_slowdown(0, us(5)), 1.0);
        assert!(!p.feedback_blackout(us(5)));
        assert_eq!(p.stats, FaultStats::default());
    }

    #[test]
    fn crash_is_permanent_and_per_worker() {
        let cfg = FaultConfig::default().with_crash(2, us(50));
        let p = FaultPlan::new(cfg, 1);
        assert!(!p.worker_crashed(2, us(49)));
        assert!(p.worker_crashed(2, us(50)));
        assert!(p.worker_crashed(2, us(5_000)));
        assert!(!p.worker_crashed(1, us(5_000)));
        assert!(p.worker_down(2, us(60)));
    }

    #[test]
    fn stall_window_recovers() {
        let cfg = FaultConfig::default().with_stall(1, us(10), us(20));
        let p = FaultPlan::new(cfg, 1);
        assert_eq!(p.worker_stalled_until(1, us(9)), None);
        assert_eq!(p.worker_stalled_until(1, us(10)), Some(us(20)));
        assert_eq!(p.worker_stalled_until(1, us(19)), Some(us(20)));
        assert_eq!(p.worker_stalled_until(1, us(20)), None);
        assert_eq!(p.worker_stalled_until(0, us(15)), None);
    }

    #[test]
    fn crash_and_stall_schedules_compose() {
        // Satellite: `FaultConfig` holds *lists* of crashes and stalls —
        // the builders stay source-compatible but may be chained.
        let cfg = FaultConfig::default()
            .with_crash(2, us(50))
            .with_crash(0, us(80))
            .with_stall(1, us(10), us(20))
            .with_stall(1, us(30), us(40))
            .with_stall(3, us(15), us(25));
        let p = FaultPlan::new(cfg, 1);
        assert!(p.worker_crashed(2, us(50)));
        assert!(!p.worker_crashed(0, us(79)));
        assert!(p.worker_crashed(0, us(80)));
        assert_eq!(p.crash().unwrap().worker, 2, "earliest crash wins");
        assert_eq!(p.worker_stalled_until(1, us(15)), Some(us(20)));
        assert_eq!(p.worker_stalled_until(1, us(25)), None);
        assert_eq!(p.worker_stalled_until(1, us(35)), Some(us(40)));
        assert_eq!(p.worker_stalled_until(3, us(20)), Some(us(25)));
        assert_eq!(cfg.crashes().count(), 2);
        assert_eq!(cfg.stalls().count(), 3);
        assert!(!cfg.is_none());
    }

    #[test]
    fn overlapping_stalls_extend_each_other() {
        let cfg = FaultConfig::default()
            .with_stall(0, us(10), us(20))
            .with_stall(0, us(15), us(30));
        let p = FaultPlan::new(cfg, 1);
        assert_eq!(p.worker_stalled_until(0, us(16)), Some(us(30)));
        assert_eq!(p.worker_stalled_until(0, us(12)), Some(us(20)));
    }

    #[test]
    fn slowdown_multiplier_applies_in_window() {
        let cfg = FaultConfig::default().with_slowdown(0, us(10), us(20), 3.0);
        let p = FaultPlan::new(cfg, 1);
        assert_eq!(p.worker_slowdown(0, us(15)), 3.0);
        assert_eq!(p.worker_slowdown(0, us(25)), 1.0);
        assert_eq!(p.worker_slowdown(1, us(15)), 1.0);
    }

    #[test]
    fn blackout_bounds() {
        let cfg = FaultConfig::default().with_blackout(us(5), us(8));
        let p = FaultPlan::new(cfg, 1);
        assert!(!p.feedback_blackout(us(4)));
        assert!(p.feedback_blackout(us(5)));
        assert!(p.feedback_blackout(us(7)));
        assert!(!p.feedback_blackout(us(8)));
    }

    #[test]
    fn burst_chain_only_loses_inside_window() {
        let burst = LossBurst {
            start: us(100),
            end: us(200),
            p_enter: 0.5,
            p_exit: 0.1,
            loss_in_burst: 1.0,
        };
        let cfg = FaultConfig::default().with_burst(burst);
        let mut p = FaultPlan::new(cfg, 7);
        for i in 0..100 {
            assert!(!p.burst_frame_lost(us(i)), "loss before window");
        }
        let in_window: u32 = (100..200).map(|i| p.burst_frame_lost(us(i)) as u32).sum();
        assert!(in_window > 0, "a hot chain must lose frames in-window");
        for i in 200..300 {
            assert!(!p.burst_frame_lost(us(i)), "loss after window");
        }
        assert_eq!(p.stats.burst_lost as u32, in_window);
        assert!(p.stats.burst_entries > 0);
    }

    #[test]
    fn burst_losses_cluster() {
        // With a sticky burst state, losses arrive in runs: the number of
        // distinct loss runs is far below the number of lost frames.
        let burst = LossBurst {
            start: SimTime::ZERO,
            end: us(100_000),
            p_enter: 0.01,
            p_exit: 0.05,
            loss_in_burst: 0.9,
        };
        let mut p = FaultPlan::new(FaultConfig::default().with_burst(burst), 11);
        let outcomes: Vec<bool> = (0..50_000)
            .map(|i| p.burst_frame_lost(SimTime::ZERO + SimDuration::from_nanos(i)))
            .collect();
        let lost = outcomes.iter().filter(|&&l| l).count();
        let runs = outcomes.windows(2).filter(|w| !w[0] && w[1]).count().max(1);
        assert!(lost > 1_000, "expected substantial loss, got {lost}");
        let mean_run = lost as f64 / runs as f64;
        assert!(mean_run > 2.0, "losses should cluster, mean run {mean_run}");
    }

    #[test]
    fn identical_seeds_give_identical_fault_streams() {
        let burst = LossBurst {
            start: SimTime::ZERO,
            end: us(1_000),
            p_enter: 0.2,
            p_exit: 0.2,
            loss_in_burst: 0.5,
        };
        let cfg = FaultConfig::default().with_burst(burst);
        let stream = |seed| {
            let mut p = FaultPlan::new(cfg, seed);
            (0..500)
                .map(|i| p.burst_frame_lost(us(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(stream(3), stream(3));
        assert_ne!(stream(3), stream(4), "different seeds should differ");
    }

    #[test]
    fn composed_config_reports_active() {
        let cfg = FaultConfig::default()
            .with_wire_loss(0.01)
            .with_crash(0, us(1));
        assert!(!cfg.is_none());
        assert!(FaultPlan::new(cfg, 1).is_active());
        assert!(FaultConfig::default().is_none());
    }
}
