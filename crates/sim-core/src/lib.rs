//! # sim-core — deterministic discrete-event simulation engine
//!
//! The foundation of the `mindgap` reproduction of *"Mind the Gap: A Case
//! for Informed Request Scheduling at the NIC"* (HotNets '19). Everything
//! above this crate — NIC models, CPU models, schedulers, full systems — is
//! expressed as a [`Model`]: a single state machine handling a typed event
//! alphabet on a nanosecond virtual clock.
//!
//! Design rules (borrowed from the event-driven network-stack idiom):
//!
//! * **No threads, no async.** One engine, one model, one heap. Determinism
//!   is a feature: every figure in the paper regenerates bit-for-bit.
//! * **Total order.** Simultaneous events fire in insertion order.
//! * **Explicit randomness.** All stochastic behaviour draws from seeded,
//!   forkable [`Rng`] streams.
//! * **Measure state over time.** Utilization and queue depth use
//!   time-weighted integrals, latency uses log-linear histograms with a
//!   bounded relative error.
//!
//! # Example
//!
//! A one-server queue in a dozen lines:
//!
//! ```
//! use sim_core::{Ctx, Engine, Model, SimDuration, SimTime};
//!
//! struct Server { completed: u32 }
//! enum Ev { Arrive, Finish }
//!
//! impl Model for Server {
//!     type Event = Ev;
//!     fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
//!         match ev {
//!             Ev::Arrive => ctx.schedule_in(SimDuration::from_micros(5), Ev::Finish),
//!             Ev::Finish => self.completed += 1,
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Server { completed: 0 });
//! engine.schedule_at(SimTime::ZERO, Ev::Arrive);
//! engine.run();
//! assert_eq!(engine.model().completed, 1);
//! assert_eq!(engine.now(), SimTime::from_micros(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod faults;
pub mod invariants;
pub mod probe;
pub mod queue;
mod rng;
pub mod stats;
mod time;
mod wheel;

pub use engine::{Ctx, Engine, Model, RunOutcome};
pub use faults::{FaultConfig, FaultPlan, FaultStats, MAX_FAULT_EVENTS};
pub use invariants::{InvariantChecker, InvariantConfig, Violation};
pub use probe::{Probe, ProbeConfig, ProbeHandle, StageReport, TraceEvent};
pub use queue::{EventQueue, LegacyHeap, TimerHandle};
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
