//! Stage-level observability: counters, queue-depth gauges, per-hop
//! latency histograms, and an optional bounded per-request event trace.
//!
//! The paper's argument is about *where time goes* between a request
//! arriving at the NIC and a worker core running it — the feedback gap.
//! Aggregate latency percentiles cannot show that; this module makes every
//! pipeline stage individually measurable so the gap appears as a
//! quantified idle interval instead of folklore.
//!
//! # Design
//!
//! * A [`Probe`] lives inside the [`Engine`](crate::Engine) and is swapped
//!   into the [`Ctx`](crate::Ctx) for the duration of each event, so any
//!   [`Model`](crate::Model) can call `ctx.probe().count("qm.enqueue")`
//!   without a change to its `handle` signature.
//! * Every recording method is a no-op returning immediately when the
//!   probe is disabled — a disabled run is behaviourally and numerically
//!   identical to a run compiled without any instrumentation.
//! * All keys are `&'static str` (optionally paired with an instance
//!   index such as a worker id), so the hot path never allocates and
//!   report ordering is deterministic (`BTreeMap` iteration).
//!
//! # The mark chain
//!
//! Per-request latency is decomposed by *marking* a request each time it
//! crosses a stage boundary: [`ProbeHandle::mark`] records, under the
//! given hop name, the time elapsed since the request's previous mark.
//! Hop names in this chain use the [`CHAIN_PREFIX`] (`"path."`) so the
//! report can telescope them: summed over the chain, the per-hop means
//! reconcile with the client-observed sojourn time.

use std::collections::BTreeMap;
use std::fmt;

use crate::stats::{BusyTracker, Histogram, TimeWeighted};
use crate::{SimDuration, SimTime};

/// Hop-name prefix marking members of the per-request latency chain.
///
/// Hops recorded by [`ProbeHandle::mark`] / [`ProbeHandle::finish`] should
/// use names starting with this prefix; [`StageReport::chain_mean`] sums
/// exactly those hops.
pub const CHAIN_PREFIX: &str = "path.";

/// How much observability a run should pay for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Master switch. When `false` every probe call is a no-op and the
    /// run is bit-identical to an uninstrumented one.
    pub enabled: bool,
    /// Maximum number of [`TraceEvent`]s to retain (0 disables tracing).
    /// Events past the cap are counted but dropped, bounding memory.
    pub trace_capacity: usize,
}

impl ProbeConfig {
    /// No observability at all — the default for metric sweeps.
    pub const fn disabled() -> ProbeConfig {
        ProbeConfig {
            enabled: false,
            trace_capacity: 0,
        }
    }

    /// Counters, gauges and hop histograms, but no per-request trace.
    pub const fn enabled() -> ProbeConfig {
        ProbeConfig {
            enabled: true,
            trace_capacity: 0,
        }
    }

    /// Enable the per-request event trace, keeping at most `capacity`
    /// events (implies `enabled`).
    pub const fn with_trace(capacity: usize) -> ProbeConfig {
        ProbeConfig {
            enabled: true,
            trace_capacity: capacity,
        }
    }
}

impl Default for ProbeConfig {
    fn default() -> ProbeConfig {
        ProbeConfig::disabled()
    }
}

/// One row of the per-request event trace: request `req` reached `stage`
/// at virtual time `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the stage crossing.
    pub at: SimTime,
    /// Request id.
    pub req: u64,
    /// Stage (hop) name, e.g. `"path.nic_parse"`.
    pub stage: &'static str,
}

/// Gauge key: a static name plus an optional instance index (worker id,
/// group id, RX queue id, ...).
type Key = (&'static str, Option<u32>);

fn key_label(key: &Key) -> String {
    match key.1 {
        Some(i) => format!("{}[{}]", key.0, i),
        None => key.0.to_string(),
    }
}

/// A queue-depth gauge: time-weighted mean plus a duration-weighted
/// histogram (each depth value is weighted by how long it was held, so
/// `p99` answers "what depth did this queue sit at for the worst 1% of
/// time").
#[derive(Debug)]
struct DepthTrack {
    tw: TimeWeighted,
    hist: Histogram,
    last: u64,
    since: SimTime,
}

impl DepthTrack {
    fn new() -> DepthTrack {
        DepthTrack {
            tw: TimeWeighted::new(SimTime::ZERO, 0.0),
            hist: Histogram::new(3),
            last: 0,
            since: SimTime::ZERO,
        }
    }

    fn set(&mut self, now: SimTime, depth: u64) {
        let held = now.saturating_duration_since(self.since).as_nanos();
        if held > 0 {
            self.hist.record_n(self.last, held);
        }
        self.tw.set(now, depth as f64);
        self.last = depth;
        self.since = now;
    }

    /// Account the final plateau up to `now` without changing the value.
    /// Clamped: a report horizon earlier than the last recorded event
    /// (e.g. an engine drained past its nominal horizon) is a no-op.
    fn flush(&mut self, now: SimTime) {
        let last = self.last;
        self.set(now.max(self.since), last);
    }
}

/// The recording half of the observability layer. Owned by the engine;
/// models reach it through [`Ctx::probe`](crate::Ctx::probe).
#[derive(Debug, Default)]
pub struct Probe {
    cfg: ProbeConfig,
    counters: BTreeMap<&'static str, u64>,
    depths: BTreeMap<Key, DepthTrack>,
    busy: BTreeMap<Key, BusyTracker>,
    hops: BTreeMap<&'static str, Histogram>,
    /// Per-request time of the most recent mark.
    // Ordered map so a report that ever walks the in-flight set (e.g. to
    // list stuck requests) does so in request-id order, not hasher order.
    inflight: BTreeMap<u64, SimTime>,
    trace: Vec<TraceEvent>,
    trace_dropped: u64,
}

impl Probe {
    /// A probe with the given configuration.
    pub fn new(cfg: ProbeConfig) -> Probe {
        Probe {
            cfg,
            ..Probe::default()
        }
    }

    /// Whether any recording happens at all.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configuration this probe was built with.
    pub fn config(&self) -> ProbeConfig {
        self.cfg
    }

    fn count_n(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    fn hop(&mut self, name: &'static str, dt: SimDuration) {
        self.hops
            .entry(name)
            .or_insert_with(Histogram::latency)
            .record(dt.as_nanos());
    }

    fn depth(&mut self, key: Key, now: SimTime, depth: u64) {
        self.depths
            .entry(key)
            .or_insert_with(DepthTrack::new)
            .set(now, depth);
    }

    fn busy(&mut self, key: Key, now: SimTime, busy: bool) {
        let tracker = self
            .busy
            .entry(key)
            .or_insert_with(|| BusyTracker::new(SimTime::ZERO));
        if busy {
            tracker.set_busy(now);
        } else {
            tracker.set_idle(now);
        }
    }

    fn trace_event(&mut self, now: SimTime, req: u64, stage: &'static str) {
        if self.cfg.trace_capacity == 0 {
            return;
        }
        if self.trace.len() < self.cfg.trace_capacity {
            self.trace.push(TraceEvent {
                at: now,
                req,
                stage,
            });
        } else {
            self.trace_dropped += 1;
        }
    }

    fn mark(&mut self, now: SimTime, req: u64, stage: &'static str) {
        self.trace_event(now, req, stage);
        if let Some(prev) = self.inflight.insert(req, now) {
            self.hop(stage, now.saturating_duration_since(prev));
        }
    }

    fn finish(&mut self, now: SimTime, req: u64, stage: &'static str) {
        self.trace_event(now, req, stage);
        if let Some(prev) = self.inflight.remove(&req) {
            self.hop(stage, now.saturating_duration_since(prev));
        }
    }

    /// Condense everything recorded so far into a [`StageReport`].
    ///
    /// `now` closes all open gauge/busy intervals (normally the run
    /// horizon). The trace buffer is drained into the report.
    pub fn report(&mut self, now: SimTime) -> StageReport {
        let window = now.saturating_duration_since(SimTime::ZERO);
        let mut names: Vec<Key> = self
            .busy
            .keys()
            .chain(self.depths.keys())
            .copied()
            .collect();
        names.sort_unstable();
        names.dedup();
        let stages = names
            .into_iter()
            .map(|key| {
                let (utilization, transitions) = self
                    .busy
                    .get(&key)
                    .map(|b| (b.utilization(now), b.transitions()))
                    .unwrap_or((0.0, 0));
                let (mean_depth, p99_depth, peak_depth) = self
                    .depths
                    .get_mut(&key)
                    .map(|d| {
                        d.flush(now);
                        (d.tw.mean_until(now), d.hist.p99().unwrap_or(0), d.tw.peak())
                    })
                    .unwrap_or((0.0, 0, 0.0));
                StageStat {
                    name: key_label(&key),
                    utilization,
                    busy_transitions: transitions,
                    mean_depth,
                    p99_depth,
                    peak_depth,
                }
            })
            .collect();
        let hops = self
            .hops
            .iter()
            .map(|(name, h)| HopStat {
                name: (*name).to_string(),
                count: h.count(),
                mean: SimDuration::from_nanos_f64(h.mean()),
                p50: SimDuration::from_nanos(h.p50().unwrap_or(0)),
                p99: SimDuration::from_nanos(h.p99().unwrap_or(0)),
                max: SimDuration::from_nanos(h.max().unwrap_or(0)),
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect();
        let mut trace = std::mem::take(&mut self.trace);
        trace.sort_by_key(|e| (e.at, e.req));
        StageReport {
            window,
            stages,
            hops,
            counters,
            trace,
            trace_dropped: self.trace_dropped,
            in_flight: self.inflight.len() as u64,
        }
    }
}

/// The per-event recording surface handed to models by
/// [`Ctx::probe`](crate::Ctx::probe). Every method is a no-op when the
/// probe is disabled.
pub struct ProbeHandle<'a> {
    now: SimTime,
    probe: Option<&'a mut Probe>,
}

impl<'a> ProbeHandle<'a> {
    /// A handle at virtual time `now`. `None` means recording is off.
    pub fn new(now: SimTime, probe: Option<&'a mut Probe>) -> ProbeHandle<'a> {
        ProbeHandle { now, probe }
    }

    /// Whether recording is live (lets callers skip expensive derivation
    /// of values that would only feed the probe).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.probe.is_some()
    }

    /// Increment counter `name` by one.
    #[inline]
    pub fn count(&mut self, name: &'static str) {
        self.count_n(name, 1);
    }

    /// Increment counter `name` by `n`.
    #[inline]
    pub fn count_n(&mut self, name: &'static str, n: u64) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.count_n(name, n);
        }
    }

    /// Record one latency sample for hop `name`.
    #[inline]
    pub fn hop(&mut self, name: &'static str, dt: SimDuration) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.hop(name, dt);
        }
    }

    /// Record the instantaneous depth of queue `name`.
    #[inline]
    pub fn depth(&mut self, name: &'static str, depth: usize) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.depth((name, None), self.now, depth as u64);
        }
    }

    /// Record the depth of instance `index` of queue `name`
    /// (e.g. worker 3's VF ring: `depth_i("worker.ring", 3, n)`).
    #[inline]
    pub fn depth_i(&mut self, name: &'static str, index: usize, depth: usize) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.depth((name, Some(index as u32)), self.now, depth as u64);
        }
    }

    /// Record stage `name` entering (`true`) or leaving (`false`) its
    /// busy state. Transitions are idempotent.
    #[inline]
    pub fn busy(&mut self, name: &'static str, busy: bool) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.busy((name, None), self.now, busy);
        }
    }

    /// Per-instance variant of [`busy`](Self::busy).
    #[inline]
    pub fn busy_i(&mut self, name: &'static str, index: usize, busy: bool) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.busy((name, Some(index as u32)), self.now, busy);
        }
    }

    /// Mark request `req` crossing into `stage`, recording the time since
    /// its previous mark as one sample of hop `stage`. The first mark of
    /// a request starts its chain without recording a hop.
    #[inline]
    pub fn mark(&mut self, req: u64, stage: &'static str) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.mark(self.now, req, stage);
        }
    }

    /// Final mark of a request's chain; records the last hop and forgets
    /// the request.
    #[inline]
    pub fn finish(&mut self, req: u64, stage: &'static str) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.finish(self.now, req, stage);
        }
    }
}

/// Per-stage occupancy statistics over a run.
#[derive(Clone, Debug, PartialEq)]
pub struct StageStat {
    /// Stage name (instance index rendered as `name[i]`).
    pub name: String,
    /// Fraction of the run the stage was busy.
    pub utilization: f64,
    /// Number of busy/idle transitions (a proxy for wake-up frequency).
    pub busy_transitions: u64,
    /// Time-weighted mean queue depth.
    pub mean_depth: f64,
    /// Depth the queue sat at (or above) during the worst 1% of time.
    pub p99_depth: u64,
    /// Peak instantaneous depth.
    pub peak_depth: f64,
}

/// Latency distribution of one hop (one inter-mark interval or one
/// explicitly-recorded duration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopStat {
    /// Hop name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Mean latency.
    pub mean: SimDuration,
    /// Median latency.
    pub p50: SimDuration,
    /// 99th-percentile latency.
    pub p99: SimDuration,
    /// Worst observed latency.
    pub max: SimDuration,
}

/// Everything the probe layer learned about one run, attached to
/// `RunMetrics` when probing is enabled.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct StageReport {
    /// Length of the observation window (run horizon).
    pub window: SimDuration,
    /// Per-stage occupancy, sorted by name.
    pub stages: Vec<StageStat>,
    /// Per-hop latency, sorted by name.
    pub hops: Vec<HopStat>,
    /// Named event counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-request event trace (empty unless `trace_capacity > 0`).
    pub trace: Vec<TraceEvent>,
    /// Trace events dropped after the capacity was reached.
    pub trace_dropped: u64,
    /// Requests whose mark chain was still open at the horizon.
    pub in_flight: u64,
}

impl StageReport {
    /// Look up a counter by name (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Look up a hop by name.
    pub fn hop(&self, name: &str) -> Option<&HopStat> {
        self.hops.iter().find(|h| h.name == name)
    }

    /// Look up a stage by rendered name (`"qm"`, `"worker.ring[3]"`).
    pub fn stage(&self, name: &str) -> Option<&StageStat> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// The hops forming the per-request latency chain, in name order
    /// (chain hops are conventionally numbered: `path.0_...`).
    pub fn chain_hops(&self) -> impl Iterator<Item = &HopStat> {
        self.hops
            .iter()
            .filter(|h| h.name.starts_with(CHAIN_PREFIX))
    }

    /// Sum of mean latencies over the chain hops. When every request
    /// traverses the same chain this telescopes to the mean end-to-end
    /// sojourn time, reconciling the stage breakdown against the
    /// client-observed latency.
    pub fn chain_mean(&self) -> SimDuration {
        SimDuration::from_nanos(self.chain_hops().map(|h| h.mean.as_nanos()).sum())
    }
}

impl fmt::Display for StageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stage report over {} window", self.window)?;
        if !self.stages.is_empty() {
            writeln!(
                f,
                "  {:<24} {:>6} {:>7} {:>10} {:>9} {:>9}",
                "stage", "util", "wakeups", "mean_depth", "p99_depth", "peak"
            )?;
            for s in &self.stages {
                writeln!(
                    f,
                    "  {:<24} {:>5.1}% {:>7} {:>10.3} {:>9} {:>9.0}",
                    s.name,
                    s.utilization * 100.0,
                    s.busy_transitions,
                    s.mean_depth,
                    s.p99_depth,
                    s.peak_depth
                )?;
            }
        }
        if !self.hops.is_empty() {
            writeln!(
                f,
                "  {:<24} {:>9} {:>10} {:>10} {:>10} {:>10}",
                "hop", "count", "mean", "p50", "p99", "max"
            )?;
            for h in &self.hops {
                writeln!(
                    f,
                    "  {:<24} {:>9} {:>10} {:>10} {:>10} {:>10}",
                    h.name,
                    h.count,
                    h.mean.to_string(),
                    h.p50.to_string(),
                    h.p99.to_string(),
                    h.max.to_string()
                )?;
            }
            writeln!(f, "  chain sum (mean): {}", self.chain_mean())?;
        }
        for (name, v) in &self.counters {
            writeln!(f, "  counter {name} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn disabled_probe_records_nothing() {
        let mut p = Probe::new(ProbeConfig::disabled());
        {
            let mut h = ProbeHandle::new(us(1), None);
            assert!(!h.enabled());
            h.count("x");
            h.mark(1, "path.a");
            h.depth("q", 5);
        }
        let r = p.report(us(10));
        assert!(r.stages.is_empty());
        assert!(r.hops.is_empty());
        assert!(r.counters.is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let mut p = Probe::new(ProbeConfig::enabled());
        {
            let mut h = ProbeHandle::new(us(0), Some(&mut p));
            h.count("a");
            h.count_n("a", 2);
            h.count("b");
        }
        let r = p.report(us(1));
        assert_eq!(r.counter("a"), 3);
        assert_eq!(r.counter("b"), 1);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn mark_chain_telescopes_to_sojourn() {
        let mut p = Probe::new(ProbeConfig::enabled());
        // Request 7: send at 10us, parse at 12us, run at 15us, done at 20us.
        ProbeHandle::new(us(10), Some(&mut p)).mark(7, "path.0_send");
        ProbeHandle::new(us(12), Some(&mut p)).mark(7, "path.1_parse");
        ProbeHandle::new(us(15), Some(&mut p)).mark(7, "path.2_run");
        ProbeHandle::new(us(20), Some(&mut p)).finish(7, "path.3_done");
        let r = p.report(us(20));
        // First mark records no hop; the three following hops sum to the
        // 10us sojourn.
        assert_eq!(r.hop("path.0_send"), None);
        assert_eq!(
            r.hop("path.1_parse").unwrap().mean,
            SimDuration::from_micros(2)
        );
        assert_eq!(r.chain_mean(), SimDuration::from_micros(10));
        assert_eq!(r.in_flight, 0);
    }

    #[test]
    fn depth_gauge_time_weights() {
        let mut p = Probe::new(ProbeConfig::enabled());
        ProbeHandle::new(us(0), Some(&mut p)).depth("q", 0);
        ProbeHandle::new(us(2), Some(&mut p)).depth("q", 4);
        ProbeHandle::new(us(8), Some(&mut p)).depth("q", 1);
        let r = p.report(us(10));
        let s = r.stage("q").unwrap();
        // (0*2 + 4*6 + 1*2) / 10 = 2.6
        assert!((s.mean_depth - 2.6).abs() < 1e-9, "mean {}", s.mean_depth);
        assert_eq!(s.peak_depth, 4.0);
        // Depth 4 held for 6 of 10 us: p99 over time is 4.
        assert_eq!(s.p99_depth, 4);
    }

    #[test]
    fn busy_tracker_reports_utilization() {
        let mut p = Probe::new(ProbeConfig::enabled());
        ProbeHandle::new(us(2), Some(&mut p)).busy("net", true);
        ProbeHandle::new(us(7), Some(&mut p)).busy("net", false);
        let r = p.report(us(10));
        let s = r.stage("net").unwrap();
        assert!((s.utilization - 0.5).abs() < 1e-9);
        assert_eq!(s.busy_transitions, 2, "one rise and one fall");
    }

    #[test]
    fn instances_render_with_index() {
        let mut p = Probe::new(ProbeConfig::enabled());
        ProbeHandle::new(us(1), Some(&mut p)).depth_i("worker.ring", 3, 2);
        ProbeHandle::new(us(1), Some(&mut p)).busy_i("worker", 0, true);
        let r = p.report(us(2));
        assert!(r.stage("worker.ring[3]").is_some());
        assert!(r.stage("worker[0]").is_some());
    }

    #[test]
    fn trace_is_bounded_and_ordered() {
        let mut p = Probe::new(ProbeConfig::with_trace(3));
        ProbeHandle::new(us(3), Some(&mut p)).mark(2, "path.b");
        ProbeHandle::new(us(1), Some(&mut p)).mark(1, "path.a");
        ProbeHandle::new(us(4), Some(&mut p)).mark(3, "path.c");
        ProbeHandle::new(us(5), Some(&mut p)).mark(4, "path.d");
        let r = p.report(us(10));
        assert_eq!(r.trace.len(), 3);
        assert_eq!(r.trace_dropped, 1);
        assert_eq!(r.trace[0].req, 1, "sorted by time");
        assert!(r.trace.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn report_renders_as_table() {
        let mut p = Probe::new(ProbeConfig::enabled());
        ProbeHandle::new(us(1), Some(&mut p)).count("net.frames");
        ProbeHandle::new(us(1), Some(&mut p)).mark(1, "path.0_send");
        ProbeHandle::new(us(2), Some(&mut p)).finish(1, "path.1_done");
        let text = p.report(us(2)).to_string();
        assert!(text.contains("net.frames"));
        assert!(text.contains("path.1_done"));
        assert!(text.contains("chain sum"));
    }
}
