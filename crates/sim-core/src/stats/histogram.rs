//! HDR-style log-linear histogram for latency percentiles.
//!
//! Latency distributions in this repository span five orders of magnitude
//! (tens of nanoseconds to milliseconds), and the figures report the 99th
//! percentile, so we need a histogram that is compact, O(1) to update, and
//! has bounded *relative* error. The classic answer is a log-linear layout
//! (as in HdrHistogram): values are bucketed by magnitude, and each
//! magnitude is split into `2^precision` linear sub-buckets, giving a
//! worst-case relative quantile error of `2^-precision`.

/// Log-linear histogram over `u64` values (we use nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// log2 of sub-buckets per magnitude; relative error is 2^-precision.
    precision: u32,
    /// Counts, indexed by [`Histogram::index_of`].
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Histogram {
    /// Create a histogram with the given precision (sub-bucket bits).
    ///
    /// `precision = 7` gives ≤0.8% relative error in ~1.2 KiB per magnitude,
    /// plenty for p99 plots.
    pub fn new(precision: u32) -> Self {
        assert!((1..=14).contains(&precision), "precision out of range");
        // 64 magnitudes cover the whole u64 range.
        let buckets = (64 - precision as usize + 1) * (1 << precision);
        Histogram {
            precision,
            counts: vec![0; buckets],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Default latency histogram: 0.8% relative error.
    pub fn latency() -> Self {
        Histogram::new(7)
    }

    /// Index of the bucket holding `value`.
    fn index_of(&self, value: u64) -> usize {
        let p = self.precision;
        if value < (1 << p) {
            // The first 2^p values are exact.
            value as usize
        } else {
            let magnitude = 63 - value.leading_zeros(); // >= p
            let sub = (value >> (magnitude - p)) - (1 << p); // in [0, 2^p)
            ((magnitude - p + 1) as usize) * (1 << p) + sub as usize
        }
    }

    /// Representative (highest) value of bucket `index` — the upper edge, so
    /// percentile queries never under-report.
    fn value_of(&self, index: usize) -> u64 {
        let p = self.precision;
        let per = 1usize << p;
        let group = index / per;
        let sub = (index % per) as u64;
        if group == 0 {
            sub
        } else {
            let magnitude = group as u32 + p - 1;
            let base = (1u64 << p) + sub;
            let shift = magnitude - p;
            // Upper edge: everything below the next sub-bucket boundary.
            (base << shift) + ((1u64 << shift) - 1)
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.index_of(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Record `count` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let idx = self.index_of(value);
        self.counts[idx] += count;
        self.total += count;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128 * count as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum recorded value; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact maximum recorded value; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Exact mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q in [0, 1]`, with relative error ≤ 2^-precision.
    /// Returns `None` when empty.
    ///
    /// `value_at_quantile(0.99)` is the p99 the paper's figures plot.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample (1-based), nearest-rank definition.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to the true extremes, which we track exactly.
                return Some(self.value_of(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Convenience wrappers for the common reporting points.
    pub fn p50(&self) -> Option<u64> {
        self.value_at_quantile(0.50)
    }
    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.value_at_quantile(0.90)
    }
    /// 99th percentile — the paper's "tail latency".
    pub fn p99(&self) -> Option<u64> {
        self.value_at_quantile(0.99)
    }
    /// 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.value_at_quantile(0.999)
    }

    /// Merge another histogram recorded with the same precision.
    ///
    /// # Panics
    /// Panics if precisions differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.precision, other.precision,
            "histogram precision mismatch"
        );
        if other.total == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Reset to empty, keeping the allocation.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::latency();
        assert!(h.is_empty());
        assert_eq!(h.p99(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new(7);
        for v in 0..128 {
            h.record(v);
        }
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(127));
        assert_eq!(h.value_at_quantile(0.0), Some(0));
        // With 128 uniform values, the median by nearest rank is value 63.
        assert_eq!(h.p50(), Some(63));
        assert_eq!(h.value_at_quantile(1.0), Some(127));
    }

    #[test]
    fn relative_error_bound_holds() {
        let mut h = Histogram::new(7);
        // Values across many magnitudes.
        let mut x: u64 = 3;
        let mut values = Vec::new();
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x % 10_000_000; // up to 10 ms in ns
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank] as f64;
            let est = h.value_at_quantile(q).unwrap() as f64;
            // Upper-edge convention: estimate >= exact, within 2^-7 + slack.
            assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            if exact > 0.0 {
                assert!(
                    (est - exact) / exact <= 1.0 / 128.0 + 1e-9,
                    "q={q}: est {est} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::latency();
        for v in [1_000u64, 2_000, 3_000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.mean(), 4_000.0);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new(5);
        let mut b = Histogram::new(5);
        for _ in 0..37 {
            a.record(123_456);
        }
        b.record_n(123_456, 37);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.p50(), b.p50());
        assert_eq!(a.mean(), b.mean());
        b.record_n(99, 0);
        assert_eq!(b.count(), 37, "recording zero occurrences is a no-op");
    }

    #[test]
    fn merge_matches_combined_stream() {
        let mut whole = Histogram::new(7);
        let mut a = Histogram::new(7);
        let mut b = Histogram::new(7);
        for i in 0..5_000u64 {
            let v = (i * 7919) % 1_000_000;
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.p99(), whole.p99());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_rejects_mixed_precision() {
        let mut a = Histogram::new(7);
        let b = Histogram::new(8);
        a.merge(&b);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::latency();
        h.record(5);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.p99(), None);
        h.record(9);
        assert_eq!(h.p99(), Some(9));
    }

    #[test]
    fn quantile_clamps_to_true_extremes() {
        let mut h = Histogram::new(3); // coarse on purpose
        h.record(1_000_003);
        assert_eq!(h.value_at_quantile(0.5), Some(1_000_003));
        assert_eq!(h.value_at_quantile(1.0), Some(1_000_003));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every quantile estimate is >= the exact order statistic and
        /// within the advertised relative error.
        #[test]
        fn quantile_error_bound(mut values in proptest::collection::vec(0u64..u64::MAX / 2, 1..400),
                                qs in proptest::collection::vec(0.0f64..=1.0, 1..8)) {
            let mut h = Histogram::new(7);
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            for q in qs {
                let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
                let exact = values[rank];
                let est = h.value_at_quantile(q).unwrap();
                prop_assert!(est >= exact);
                if exact > 0 {
                    let rel = (est - exact) as f64 / exact as f64;
                    prop_assert!(rel <= 1.0 / 128.0 + 1e-9, "rel error {rel}");
                }
            }
        }

        /// Count/min/max/mean bookkeeping is exact regardless of input.
        #[test]
        fn exact_bookkeeping(values in proptest::collection::vec(0u64..1_000_000_000, 1..400)) {
            let mut h = Histogram::latency();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.min(), values.iter().copied().min());
            prop_assert_eq!(h.max(), values.iter().copied().max());
            let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
            prop_assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
        }

        /// Merging two histograms equals recording the concatenated stream.
        #[test]
        fn merge_is_concat(xs in proptest::collection::vec(0u64..1_000_000, 0..200),
                           ys in proptest::collection::vec(0u64..1_000_000, 0..200)) {
            let mut a = Histogram::new(6);
            let mut b = Histogram::new(6);
            let mut whole = Histogram::new(6);
            for &x in &xs { a.record(x); whole.record(x); }
            for &y in &ys { b.record(y); whole.record(y); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert_eq!(a.p50(), whole.p50());
            prop_assert_eq!(a.p99(), whole.p99());
            prop_assert_eq!(a.min(), whole.min());
            prop_assert_eq!(a.max(), whole.max());
        }
    }
}
