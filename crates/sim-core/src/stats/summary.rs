//! Streaming moment estimates (Welford's algorithm).

use core::fmt;

/// Streaming count / mean / variance / min / max over `f64` samples.
///
/// Uses Welford's online algorithm, which is numerically stable for the
/// long, skewed streams latency measurement produces.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merge another summary into this one (parallel sub-streams).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::new();
        s.record(3.0);
        let before = format!("{s}");
        s.merge(&Summary::new());
        assert_eq!(format!("{s}"), before);

        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 3.0);
    }
}
