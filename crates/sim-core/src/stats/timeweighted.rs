//! Time-weighted averages over the simulation clock.
//!
//! Utilization and queue-depth metrics are *state* observed over time, not
//! point samples: a core that is busy for 9 µs out of 10 µs is 90% utilized
//! no matter how many events fired. [`TimeWeighted`] integrates a piecewise-
//! constant signal against simulated time.

use crate::time::{SimDuration, SimTime};

/// Integrates a piecewise-constant `f64` signal over simulated time.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    since: SimTime,
    start: SimTime,
    integral: f64, // value * seconds
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking with `initial` at instant `at`.
    pub fn new(at: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            since: at,
            start: at,
            integral: 0.0,
            peak: initial,
        }
    }

    /// Change the signal to `value` at instant `at`.
    ///
    /// # Panics
    /// Panics (debug) if `at` precedes the previous update.
    pub fn set(&mut self, at: SimTime, value: f64) {
        debug_assert!(at >= self.since, "TimeWeighted::set going backwards");
        self.integral += self.value * at.saturating_duration_since(self.since).as_secs_f64();
        self.since = at;
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Add `delta` to the signal at instant `at`.
    pub fn add(&mut self, at: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(at, v);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value the signal has taken.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean of the signal from start until `now`.
    /// Returns 0 for a zero-length window.
    pub fn mean_until(&self, now: SimTime) -> f64 {
        let window = now.saturating_duration_since(self.start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        let tail = self.value * now.saturating_duration_since(self.since).as_secs_f64();
        (self.integral + tail) / window
    }
}

/// Busy/idle tracker for a simulated execution resource.
///
/// A thin wrapper over [`TimeWeighted`] with a boolean signal plus a busy
/// time integral, used for core utilization accounting.
#[derive(Debug, Clone)]
pub struct BusyTracker {
    busy: bool,
    since: SimTime,
    start: SimTime,
    busy_time: SimDuration,
    transitions: u64,
}

impl BusyTracker {
    /// Start idle at instant `at`.
    pub fn new(at: SimTime) -> Self {
        BusyTracker {
            busy: false,
            since: at,
            start: at,
            busy_time: SimDuration::ZERO,
            transitions: 0,
        }
    }

    /// Whether the resource is currently busy.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Mark busy at `at`. Idempotent.
    pub fn set_busy(&mut self, at: SimTime) {
        if !self.busy {
            self.busy = true;
            self.since = at;
            self.transitions += 1;
        }
    }

    /// Mark idle at `at`. Idempotent.
    pub fn set_idle(&mut self, at: SimTime) {
        if self.busy {
            self.busy_time += at.saturating_duration_since(self.since);
            self.busy = false;
            self.since = at;
            self.transitions += 1;
        }
    }

    /// Total busy time up to `now`.
    pub fn busy_until(&self, now: SimTime) -> SimDuration {
        if self.busy {
            self.busy_time + now.saturating_duration_since(self.since)
        } else {
            self.busy_time
        }
    }

    /// Utilization in `[0, 1]` over the window from start to `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let window = now.saturating_duration_since(self.start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        self.busy_until(now).as_secs_f64() / window
    }

    /// Number of busy/idle transitions.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn constant_signal_mean() {
        let tw = TimeWeighted::new(us(0), 4.0);
        assert_eq!(tw.mean_until(us(10)), 4.0);
        assert_eq!(tw.current(), 4.0);
        assert_eq!(tw.peak(), 4.0);
    }

    #[test]
    fn step_signal_mean() {
        let mut tw = TimeWeighted::new(us(0), 0.0);
        tw.set(us(5), 10.0); // 0 for 5us, then 10 for 5us
        let mean = tw.mean_until(us(10));
        assert!((mean - 5.0).abs() < 1e-9, "mean {mean}");
        assert_eq!(tw.peak(), 10.0);
    }

    #[test]
    fn add_tracks_queue_depth() {
        let mut tw = TimeWeighted::new(us(0), 0.0);
        tw.add(us(1), 1.0);
        tw.add(us(2), 1.0);
        tw.add(us(3), -1.0);
        tw.add(us(4), -1.0);
        // depth: 0 on [0,1), 1 on [1,2), 2 on [2,3), 1 on [3,4), 0 after
        let mean = tw.mean_until(us(4));
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
        assert_eq!(tw.peak(), 2.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn zero_window_mean_is_zero() {
        let tw = TimeWeighted::new(us(3), 7.0);
        assert_eq!(tw.mean_until(us(3)), 0.0);
    }

    #[test]
    fn busy_tracker_utilization() {
        let mut b = BusyTracker::new(us(0));
        assert!(!b.is_busy());
        b.set_busy(us(2));
        b.set_idle(us(7));
        b.set_busy(us(9));
        // busy [2,7) and [9,10) = 6us of 10us
        assert!((b.utilization(us(10)) - 0.6).abs() < 1e-9);
        assert_eq!(b.busy_until(us(10)), SimDuration::from_micros(6));
        assert_eq!(b.transitions(), 3);
    }

    #[test]
    fn busy_tracker_idempotent() {
        let mut b = BusyTracker::new(us(0));
        b.set_busy(us(1));
        b.set_busy(us(2)); // no-op
        b.set_idle(us(3));
        b.set_idle(us(4)); // no-op
        assert_eq!(b.busy_until(us(5)), SimDuration::from_micros(2));
        assert_eq!(b.transitions(), 2);
    }
}
