//! Measurement primitives: streaming moments, latency histograms, and
//! time-weighted state tracking.

mod histogram;
mod summary;
mod timeweighted;

pub use histogram::Histogram;
pub use summary::Summary;
pub use timeweighted::{BusyTracker, TimeWeighted};
