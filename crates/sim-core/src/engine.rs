//! The discrete-event engine.
//!
//! Following the event-driven style of poll-based network stacks, the engine
//! owns a single *model* (the whole simulated system as one state machine)
//! and a time-ordered event queue (the three-lane indexed [`EventQueue`] —
//! see [`crate::queue`] for the lane layout and why it is faster than the
//! naive heap it replaced). There are no threads, no async runtime and
//! no shared-state cells: a handler receives `&mut self` on the model plus a
//! [`Ctx`] through which it posts future events — the `Ctx` borrows the
//! engine's queue directly, so scheduling is one queue insert with no
//! intermediate outbox. Two events at the same instant fire in insertion
//! order, so runs are totally ordered and bit-for-bit reproducible.
//!
//! # Cancellation
//!
//! Components that need cancellable timers (e.g. a retransmit timeout that
//! becomes moot when the reply arrives) take a [`TimerHandle`] from
//! [`Ctx::schedule_timer_in`] / [`Ctx::schedule_timer_at`] and cancel or
//! reschedule through it in O(1). Handles are validated against the
//! queue's payload arena — cancelling an already-fired, already-cancelled
//! or rescheduled timer is a safe no-op — and cancellation frees the
//! payload slot immediately, so timers never leak storage: the engine
//! audits the arena when a run drains (debug assert always; a `slab-leak`
//! invariant violation when a checker is installed). The older pattern of
//! carrying a generation counter in the payload and ignoring stale
//! firings still works, but the handle API is cheaper — a cancelled event
//! is dropped inside the queue and never reaches the model.

use crate::faults::FaultPlan;
use crate::invariants::InvariantChecker;
use crate::probe::{Probe, ProbeHandle};
use crate::queue::{EventQueue, TimerHandle};
use crate::time::{SimDuration, SimTime};

/// A simulated system: one state machine handling its own event alphabet.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at the current simulated instant. Post follow-up
    /// events through `ctx`.
    fn handle(&mut self, event: Self::Event, ctx: &mut Ctx<'_, Self::Event>);

    /// Audit internal state against the model's own invariants, reporting
    /// violations through `inv`. Called by the engine after every event
    /// when an enabled [`InvariantChecker`] is installed (see
    /// [`Engine::set_invariants`]); never called otherwise. Must not
    /// mutate observable state — invcheck-enabled runs are required to be
    /// bit-identical to plain runs.
    fn check_invariants(&self, now: SimTime, inv: &mut InvariantChecker) {
        let _ = (now, inv);
    }
}

/// Handler-side view of the engine: the clock plus direct access to the
/// event queue, probe and fault plan for the duration of one event.
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop: bool,
    probe: &'a mut Probe,
    faults: &'a mut FaultPlan,
}

impl<E> Ctx<'_, E> {
    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The observability surface at the current instant. Recording calls
    /// are no-ops when the engine's probe is disabled, so models can
    /// instrument unconditionally.
    pub fn probe(&mut self) -> ProbeHandle<'_> {
        let enabled = self.probe.is_enabled();
        ProbeHandle::new(self.now, enabled.then_some(&mut *self.probe))
    }

    /// The fault-injection oracle at the current instant. Every engine
    /// carries a (default fault-free) [`FaultPlan`], so models can consult
    /// it unconditionally; install a real plan with
    /// [`Engine::set_faults`].
    pub fn faults(&mut self) -> &mut FaultPlan {
        self.faults
    }

    /// Schedule `event` to fire `delay` after now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedule `event` at an absolute instant.
    ///
    /// # Panics
    /// Panics if `at` is in the past — causality violations are always
    /// simulation bugs.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "schedule_at({at}) is before now ({})",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedule `event` to fire at the current instant, after all events
    /// already queued for this instant.
    pub fn schedule_now(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// Schedule a cancellable event `delay` after now, returning a handle
    /// for [`cancel_timer`](Ctx::cancel_timer) /
    /// [`reschedule_timer`](Ctx::reschedule_timer).
    pub fn schedule_timer_in(&mut self, delay: SimDuration, event: E) -> TimerHandle {
        // Saturate so an "effectively never" guard near the end of the
        // clock clamps to the MAX sentinel rather than wrapping into
        // the past and firing immediately.
        self.queue
            .push_handle(self.now.saturating_add(delay), event)
    }

    /// Schedule a cancellable event at an absolute instant.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_timer_at(&mut self, at: SimTime, event: E) -> TimerHandle {
        assert!(
            at >= self.now,
            "schedule_timer_at({at}) is before now ({})",
            self.now
        );
        self.queue.push_handle(at, event)
    }

    /// Cancel a pending timer, returning its payload, or `None` if the
    /// handle is no longer live (fired, cancelled, or rescheduled). The
    /// payload slot is freed immediately.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> Option<E> {
        self.queue.cancel(handle)
    }

    /// Move a pending timer to a new instant, keeping its payload.
    /// Returns the new handle (the old one is dead), or `None` if the
    /// timer was no longer live. Ordered as a fresh insertion at `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn reschedule_timer(&mut self, handle: TimerHandle, at: SimTime) -> Option<TimerHandle> {
        assert!(
            at >= self.now,
            "reschedule_timer({at}) is before now ({})",
            self.now
        );
        self.queue.reschedule(handle, at)
    }

    /// Request that the engine stop after the current handler returns.
    /// Events already scheduled remain in the queue (inspectable, not run).
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// Why [`Engine::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// A handler called [`Ctx::stop`].
    Stopped,
    /// The time horizon was reached with events still pending.
    Horizon,
}

/// The discrete-event simulation engine.
pub struct Engine<M: Model> {
    queue: EventQueue<M::Event>,
    model: M,
    now: SimTime,
    processed: u64,
    stopped: bool,
    // Boxed so the engine stays cheap to move; handlers borrow it through
    // their `Ctx`, no moves per event.
    probe: Box<Probe>,
    // Same lifecycle as `probe`: a fault-free plan unless one is installed.
    faults: Box<FaultPlan>,
    // A disabled checker unless one is installed; stays engine-resident
    // (models see it only through `Model::check_invariants`).
    invariants: Box<InvariantChecker>,
}

impl<M: Model> Engine<M> {
    /// Create an engine at `t = 0` around `model` with an empty queue and a
    /// disabled probe.
    pub fn new(model: M) -> Self {
        Engine {
            queue: EventQueue::new(),
            model,
            now: SimTime::ZERO,
            processed: 0,
            stopped: false,
            probe: Box::default(),
            faults: Box::default(),
            invariants: Box::default(),
        }
    }

    /// Install an invariant checker (usually
    /// `InvariantChecker::new(InvariantConfig::enabled())`). With an
    /// enabled checker the engine verifies causality and FIFO
    /// tie-breaking on every pop and calls
    /// [`Model::check_invariants`] after every event; violations
    /// accumulate in the checker instead of panicking.
    pub fn set_invariants(&mut self, inv: InvariantChecker) {
        *self.invariants = inv;
    }

    /// Shared access to the invariant checker.
    pub fn invariants(&self) -> &InvariantChecker {
        &self.invariants
    }

    /// Remove the invariant checker (e.g. to assert cleanliness at the
    /// end of a run), leaving a disabled one in its place.
    pub fn take_invariants(&mut self) -> InvariantChecker {
        *std::mem::take(&mut self.invariants)
    }

    /// Install a probe (usually `Probe::new(ProbeConfig::enabled())`).
    pub fn set_probe(&mut self, probe: Probe) {
        *self.probe = probe;
    }

    /// Shared access to the probe.
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Exclusive access to the probe (e.g. to build its final report).
    pub fn probe_mut(&mut self) -> &mut Probe {
        &mut self.probe
    }

    /// Remove the probe, leaving a disabled one in its place.
    pub fn take_probe(&mut self) -> Probe {
        std::mem::take(&mut self.probe)
    }

    /// Install a fault plan (usually `FaultPlan::new(cfg, seed)`).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        *self.faults = faults;
    }

    /// Shared access to the fault plan (e.g. to read its loss counters).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Current simulated instant (the time of the last event processed).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (e.g. to harvest statistics).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Seed an event at an absolute instant before (or during) the run.
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) {
        assert!(
            at >= self.now,
            "schedule_at({at}) is before now ({})",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Seed an event `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: M::Event) {
        self.queue.push(self.now + delay, event);
    }

    /// Seed a cancellable event at an absolute instant, returning its
    /// handle (see [`Ctx::schedule_timer_at`]).
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_timer_at(&mut self, at: SimTime, event: M::Event) -> TimerHandle {
        assert!(
            at >= self.now,
            "schedule_timer_at({at}) is before now ({})",
            self.now
        );
        self.queue.push_handle(at, event)
    }

    /// Cancel a pending timer from outside a handler (between steps or
    /// before the run), returning its payload if it was still live.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> Option<M::Event> {
        self.queue.cancel(handle)
    }

    /// Process a single event. Returns `false` if the queue was empty or
    /// the engine had been stopped.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let Some((at, seq, event)) = self.queue.pop() else {
            return false;
        };
        if self.invariants.is_enabled() {
            self.invariants.observe_pop(self.now, at, seq);
            // Even on a causality violation (possible only through the
            // test-only unchecked scheduling hook) the clock must not run
            // backwards; on valid runs this is exactly `at`.
            self.now = self.now.max(at);
        } else {
            debug_assert!(at >= self.now, "event queue yielded a past event");
            self.now = at;
        }
        self.processed += 1;
        let mut ctx = Ctx {
            now: self.now,
            queue: &mut self.queue,
            stop: false,
            probe: &mut self.probe,
            faults: &mut self.faults,
        };
        self.model.handle(event, &mut ctx);
        if ctx.stop {
            self.stopped = true;
        }
        if self.invariants.is_enabled() {
            self.model.check_invariants(self.now, &mut self.invariants);
        }
        true
    }

    /// Seed an event with no causality check — deliberately able to put
    /// an event in the past so tests can prove the invariant checker
    /// catches exactly that.
    #[cfg(test)]
    pub(crate) fn schedule_at_unchecked(&mut self, at: SimTime, event: M::Event) {
        self.queue.push(at, event);
    }

    /// Run until the queue drains or a handler stops the engine.
    pub fn run(&mut self) -> RunOutcome {
        while self.step() {}
        if self.stopped {
            RunOutcome::Stopped
        } else {
            self.audit_drained();
            RunOutcome::Drained
        }
    }

    /// Run until `horizon` (inclusive): every event with `time <= horizon`
    /// is processed. On [`RunOutcome::Horizon`] the clock is advanced to the
    /// horizon itself.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.stopped {
                return RunOutcome::Stopped;
            }
            match self.queue.peek_at() {
                None => {
                    self.audit_drained();
                    return RunOutcome::Drained;
                }
                Some(at) if at > horizon => {
                    self.now = horizon.max(self.now);
                    return RunOutcome::Horizon;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// End-of-run arena leak audit: pop, cancel and reschedule all free
    /// payload slots eagerly, so a drained queue must hold zero payloads.
    fn audit_drained(&mut self) {
        debug_assert_eq!(
            self.queue.live_payloads(),
            0,
            "event arena leaked payloads after drain"
        );
        if self.invariants.is_enabled() {
            let leaked = self.queue.live_payloads();
            self.invariants.observe_drained(self.now, leaked);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    /// A model that records the order and times at which its events fire.
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    enum Ev {
        Mark(u32),
        Chain {
            label: u32,
            remaining: u32,
            gap: SimDuration,
        },
        StopNow,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Mark(label) => self.seen.push((ctx.now().as_nanos(), label)),
                Ev::Chain {
                    label,
                    remaining,
                    gap,
                } => {
                    self.seen.push((ctx.now().as_nanos(), label));
                    if remaining > 0 {
                        ctx.schedule_in(
                            gap,
                            Ev::Chain {
                                label,
                                remaining: remaining - 1,
                                gap,
                            },
                        );
                    }
                }
                Ev::StopNow => ctx.stop(),
            }
        }
    }

    fn engine() -> Engine<Recorder> {
        Engine::new(Recorder { seen: Vec::new() })
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = engine();
        e.schedule_at(SimTime::from_nanos(30), Ev::Mark(3));
        e.schedule_at(SimTime::from_nanos(10), Ev::Mark(1));
        e.schedule_at(SimTime::from_nanos(20), Ev::Mark(2));
        assert_eq!(e.run(), RunOutcome::Drained);
        assert_eq!(e.model().seen, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(e.events_processed(), 3);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut e = engine();
        for label in 0..50 {
            e.schedule_at(SimTime::from_nanos(5), Ev::Mark(label));
        }
        e.run();
        let labels: Vec<u32> = e.model().seen.iter().map(|&(_, l)| l).collect();
        assert_eq!(labels, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        struct M {
            order: Vec<u32>,
        }
        enum E2 {
            First,
            Second,
            Injected,
        }
        impl Model for M {
            type Event = E2;
            fn handle(&mut self, ev: E2, ctx: &mut Ctx<'_, E2>) {
                match ev {
                    E2::First => {
                        self.order.push(1);
                        ctx.schedule_now(E2::Injected);
                    }
                    E2::Second => self.order.push(2),
                    E2::Injected => self.order.push(3),
                }
            }
        }
        let mut e = Engine::new(M { order: vec![] });
        e.schedule_at(SimTime::from_nanos(1), E2::First);
        e.schedule_at(SimTime::from_nanos(1), E2::Second);
        e.run();
        assert_eq!(e.model().order, vec![1, 2, 3]);
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut e = engine();
        e.schedule_at(
            SimTime::ZERO,
            Ev::Chain {
                label: 9,
                remaining: 4,
                gap: SimDuration::from_micros(1),
            },
        );
        e.run();
        let times: Vec<u64> = e.model().seen.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![0, 1_000, 2_000, 3_000, 4_000]);
        assert_eq!(e.now(), SimTime::from_micros(4));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut e = engine();
        for i in 1..=10 {
            e.schedule_at(SimTime::from_micros(i), Ev::Mark(i as u32));
        }
        assert_eq!(e.run_until(SimTime::from_micros(4)), RunOutcome::Horizon);
        assert_eq!(e.model().seen.len(), 4);
        assert_eq!(e.now(), SimTime::from_micros(4));
        assert_eq!(e.events_pending(), 6);
        // Continue to the end.
        assert_eq!(e.run_until(SimTime::from_secs(1)), RunOutcome::Drained);
        assert_eq!(e.model().seen.len(), 10);
    }

    #[test]
    fn stop_halts_immediately() {
        let mut e = engine();
        e.schedule_at(SimTime::from_nanos(1), Ev::Mark(1));
        e.schedule_at(SimTime::from_nanos(2), Ev::StopNow);
        e.schedule_at(SimTime::from_nanos(3), Ev::Mark(3));
        assert_eq!(e.run(), RunOutcome::Stopped);
        assert_eq!(e.model().seen, vec![(1, 1)]);
        assert_eq!(e.events_pending(), 1, "post-stop events remain pending");
        assert!(!e.step(), "a stopped engine does not step");
    }

    /// A model exercising the handle-based timer API: each `Arm` event
    /// schedules a far-future `Timeout` and a nearer `Reply`; the reply
    /// cancels the timeout, so no timeout may ever fire — and the arena
    /// must still drain clean.
    struct TimeoutModel {
        pending: Vec<TimerHandle>,
        timeouts_fired: u32,
        replies: u32,
    }

    enum TEv {
        Arm,
        Reply(usize),
        Timeout,
    }

    impl Model for TimeoutModel {
        type Event = TEv;
        fn handle(&mut self, ev: TEv, ctx: &mut Ctx<'_, TEv>) {
            match ev {
                TEv::Arm => {
                    // Timeout far in the future (wheel territory), reply
                    // well before it.
                    let h = ctx.schedule_timer_in(SimDuration::from_millis(10), TEv::Timeout);
                    let idx = self.pending.len();
                    self.pending.push(h);
                    ctx.schedule_in(SimDuration::from_micros(3), TEv::Reply(idx));
                }
                TEv::Reply(idx) => {
                    self.replies += 1;
                    let h = self.pending[idx];
                    assert!(ctx.cancel_timer(h).is_some(), "timeout already dead");
                    assert!(ctx.cancel_timer(h).is_none(), "double cancel must no-op");
                }
                TEv::Timeout => self.timeouts_fired += 1,
            }
        }
    }

    #[test]
    fn cancelled_timers_never_fire_and_never_leak() {
        let mut e = Engine::new(TimeoutModel {
            pending: Vec::new(),
            timeouts_fired: 0,
            replies: 0,
        });
        for i in 0..50u64 {
            e.schedule_at(SimTime::from_micros(i * 7), TEv::Arm);
        }
        assert_eq!(e.run(), RunOutcome::Drained);
        assert_eq!(e.model().replies, 50);
        assert_eq!(e.model().timeouts_fired, 0, "a cancelled timeout fired");
        // 50 arms + 50 replies; no timeouts.
        assert_eq!(e.events_processed(), 100);
    }

    /// Reschedule: a heartbeat timer pushed later every time traffic
    /// arrives, firing only after a quiet period.
    struct HeartbeatModel {
        deadline: Option<TimerHandle>,
        fired_at: Option<u64>,
    }

    enum HEv {
        Traffic,
        Quiet,
    }

    impl Model for HeartbeatModel {
        type Event = HEv;
        fn handle(&mut self, ev: HEv, ctx: &mut Ctx<'_, HEv>) {
            match ev {
                HEv::Traffic => {
                    let at = ctx.now() + SimDuration::from_micros(100);
                    self.deadline = Some(match self.deadline.take() {
                        None => ctx.schedule_timer_at(at, HEv::Quiet),
                        Some(h) => ctx
                            .reschedule_timer(h, at)
                            .expect("deadline timer is pending"),
                    });
                }
                HEv::Quiet => self.fired_at = Some(ctx.now().as_nanos()),
            }
        }
    }

    #[test]
    fn rescheduled_timer_fires_once_at_the_final_deadline() {
        let mut e = Engine::new(HeartbeatModel {
            deadline: None,
            fired_at: None,
        });
        for i in 0..10u64 {
            e.schedule_at(SimTime::from_micros(i * 10), HEv::Traffic);
        }
        assert_eq!(e.run(), RunOutcome::Drained);
        // Last traffic at 90 µs; quiet deadline 100 µs later.
        assert_eq!(e.model().fired_at, Some(190_000));
        assert_eq!(e.events_processed(), 11, "one deadline despite 10 arms");
    }

    #[test]
    fn engine_seeded_timer_can_be_cancelled_before_the_run() {
        let mut e = engine();
        let h = e.schedule_timer_at(SimTime::from_micros(1), Ev::Mark(1));
        e.schedule_at(SimTime::from_micros(2), Ev::Mark(2));
        assert!(e.cancel_timer(h).is_some());
        assert!(e.cancel_timer(h).is_none());
        assert_eq!(e.run(), RunOutcome::Drained);
        assert_eq!(e.model().seen, vec![(2_000, 2)]);
    }

    #[test]
    fn slab_leak_audit_runs_under_invariants() {
        use crate::invariants::{InvariantChecker, InvariantConfig};
        let mut e = engine();
        e.set_invariants(InvariantChecker::new(InvariantConfig::enabled()));
        e.schedule_at(SimTime::from_micros(1), Ev::Mark(1));
        assert_eq!(e.run(), RunOutcome::Drained);
        let inv = e.take_invariants();
        inv.assert_clean();
        assert!(inv.checks_performed() > 0);
    }

    #[test]
    fn invariant_checker_reports_an_event_scheduled_in_the_past() {
        use crate::invariants::{InvariantChecker, InvariantConfig};
        let mut e = engine();
        e.set_invariants(InvariantChecker::new(InvariantConfig::enabled()));
        e.schedule_at(SimTime::from_micros(5), Ev::Mark(0));
        e.run();
        assert_eq!(e.now(), SimTime::from_micros(5));
        // The test-only hook bypasses the schedule_at causality assert —
        // exactly the class of bug the checker exists to catch.
        e.schedule_at_unchecked(SimTime::from_micros(1), Ev::Mark(1));
        assert!(e.step(), "the past event is still processed");
        let inv = e.take_invariants();
        assert_eq!(inv.violations().len(), 1, "{}", inv.report());
        let v = &inv.violations()[0];
        assert_eq!(v.rule, "causality");
        assert!(
            v.detail.contains("before the clock"),
            "unexpected detail: {v}"
        );
        assert_eq!(e.now(), SimTime::from_micros(5), "clock never reverses");
    }

    #[test]
    fn enabled_invariants_leave_a_valid_run_untouched_and_clean() {
        use crate::invariants::{InvariantChecker, InvariantConfig};
        let run = |checked: bool| {
            let mut e = engine();
            if checked {
                e.set_invariants(InvariantChecker::new(InvariantConfig::enabled()));
            }
            e.schedule_at(
                SimTime::ZERO,
                Ev::Chain {
                    label: 3,
                    remaining: 50,
                    gap: SimDuration::from_nanos(13),
                },
            );
            for label in 0..10 {
                e.schedule_at(SimTime::from_nanos(65), Ev::Mark(label));
            }
            e.run();
            let inv = e.take_invariants();
            if checked {
                assert!(inv.checks_performed() > 0, "checker never ran");
                inv.assert_clean();
            }
            e.into_model().seen
        };
        assert_eq!(run(false), run(true), "invcheck must not perturb the run");
    }

    #[test]
    #[should_panic(expected = "schedule_at")]
    fn scheduling_in_the_past_panics() {
        let mut e = engine();
        e.schedule_at(SimTime::from_micros(5), Ev::Mark(0));
        e.run();
        e.schedule_at(SimTime::from_micros(1), Ev::Mark(1));
    }

    #[test]
    fn identical_runs_are_identical() {
        let run = || {
            let mut e = engine();
            e.schedule_at(
                SimTime::ZERO,
                Ev::Chain {
                    label: 1,
                    remaining: 100,
                    gap: SimDuration::from_nanos(7),
                },
            );
            e.schedule_at(
                SimTime::ZERO,
                Ev::Chain {
                    label: 2,
                    remaining: 100,
                    gap: SimDuration::from_nanos(11),
                },
            );
            e.run();
            e.into_model().seen
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::time::{SimDuration, SimTime};
    use proptest::prelude::*;

    /// Model that records firing times and spawns children per event.
    struct Recorder {
        fired: Vec<(u64, u32)>,
    }

    struct REv {
        label: u32,
        children: Vec<u64>, // delays in ns
    }

    impl Model for Recorder {
        type Event = REv;
        fn handle(&mut self, ev: REv, ctx: &mut Ctx<'_, REv>) {
            self.fired.push((ctx.now().as_nanos(), ev.label));
            for (i, d) in ev.children.iter().enumerate() {
                ctx.schedule_in(
                    SimDuration::from_nanos(*d),
                    REv {
                        label: ev.label * 31 + i as u32 + 1,
                        children: vec![],
                    },
                );
            }
        }
    }

    proptest! {
        /// The clock never goes backwards, every seeded event fires, and
        /// two identical runs are identical.
        #[test]
        fn firing_order_is_monotone_and_deterministic(
            seeds in proptest::collection::vec((0u64..1_000_000, proptest::collection::vec(0u64..10_000, 0..4)), 1..50)
        ) {
            let run = || {
                let mut e = Engine::new(Recorder { fired: Vec::new() });
                for (i, (at, children)) in seeds.iter().enumerate() {
                    e.schedule_at(
                        SimTime::from_nanos(*at),
                        REv { label: i as u32, children: children.clone() },
                    );
                }
                prop_assert_eq!(e.run(), RunOutcome::Drained);
                Ok(e.into_model().fired)
            };
            let a = run()?;
            let b = run()?;
            prop_assert_eq!(&a, &b, "identical runs must be identical");
            let spawned: usize = seeds.iter().map(|(_, c)| c.len()).sum();
            prop_assert_eq!(a.len(), seeds.len() + spawned, "every event fires exactly once");
            for pair in a.windows(2) {
                prop_assert!(pair[0].0 <= pair[1].0, "clock went backwards");
            }
        }

        /// run_until splits a run without changing what fires by the end.
        #[test]
        fn run_until_is_equivalent_to_run(
            seeds in proptest::collection::vec(0u64..1_000_000, 1..60),
            cut in 0u64..1_000_000,
        ) {
            let whole = {
                let mut e = Engine::new(Recorder { fired: Vec::new() });
                for (i, at) in seeds.iter().enumerate() {
                    e.schedule_at(SimTime::from_nanos(*at), REv { label: i as u32, children: vec![] });
                }
                e.run();
                e.into_model().fired
            };
            let split = {
                let mut e = Engine::new(Recorder { fired: Vec::new() });
                for (i, at) in seeds.iter().enumerate() {
                    e.schedule_at(SimTime::from_nanos(*at), REv { label: i as u32, children: vec![] });
                }
                e.run_until(SimTime::from_nanos(cut));
                e.run();
                e.into_model().fired
            };
            prop_assert_eq!(whole, split);
        }
    }
}
